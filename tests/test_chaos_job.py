"""Chaos JOB sweep (repro.bench.chaos).

The robustness contract, end to end over real JOB queries: every chaos
scenario must return exactly the fault-free host baseline's rows within
a bounded slowdown, same-seed runs must be byte-for-byte reproducible,
and the command storm must degrade through the mid-query host fallback.

The smoke grid (two queries x all scenarios) runs in tier 1; the
representative differential set runs under ``--runslow``.
"""

import json

import pytest

from repro.bench.chaos import (ROBUSTNESS_SCENARIOS, SCENARIOS,
                               STRAGGLER_LIMIT, chaos_matrix,
                               default_split, generated_queries, run_chaos,
                               scenario_plan)
from repro.errors import ReproError

SMOKE_QUERIES = ["1a", "8c"]
REPRESENTATIVE = ["1a", "2d", "3b", "6b", "8c", "11a", "14a", "17b",
                  "22a", "26a", "29a", "32a", "33a"]


class TestScenarioCatalogue:
    def test_every_scenario_has_a_plan(self):
        for name in SCENARIOS:
            assert scenario_plan(name).enabled, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError):
            scenario_plan("meteor-strike")

    def test_plans_are_seeded(self):
        assert scenario_plan("flash-ecc", seed=3).seed == 3


@pytest.mark.parametrize("query_name", SMOKE_QUERIES)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_chaos_smoke(job_env, query_name, scenario):
    summary = run_chaos(job_env, query_name, scenario, seed=0)
    assert summary["rows_match"], (
        f"{query_name}/{scenario} returned wrong rows under faults")
    assert summary["bounded"], (
        f"{query_name}/{scenario} blew the slowdown bound: "
        f"{summary['faulted_time']:.4f}s vs host "
        f"{summary['baseline_time']:.4f}s")
    assert summary["faults_injected"], (
        f"{query_name}/{scenario} injected nothing — scenario is inert")


def test_command_storm_degrades_via_host_fallback(job_env):
    summary = run_chaos(job_env, "8c", "command-storm", seed=0)
    assert summary["strategy"] == "host-only(fallback)"
    assert summary["fallback_from"] == f"H{summary['split_index']}"
    assert summary["retries"] == 4
    assert summary["wasted_device_time"] > 0.0
    assert summary["rows_match"]


def test_transient_commands_recover_without_fallback(job_env):
    summary = run_chaos(job_env, "8c", "transient-commands", seed=0)
    assert summary["fallback_from"] is None
    assert summary["strategy"] == f"H{summary['split_index']}"
    assert summary["retries"] == 2
    assert summary["rows_match"]


def test_same_seed_matrix_is_byte_identical(job_env):
    kwargs = dict(scenarios=["transient-commands", "perfect-storm"], seed=5)
    first = chaos_matrix(job_env, ["1a"], **kwargs)
    second = chaos_matrix(job_env, ["1a"], **kwargs)
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)


def test_matrix_writes_fault_annotated_traces(job_env, tmp_path):
    trace_dir = tmp_path / "traces"
    chaos_matrix(job_env, ["1a"], scenarios=["command-storm"],
                 trace_dir=str(trace_dir))
    trace = json.loads((trace_dir / "1a-command-storm.json").read_text())
    names = {event.get("name") for event in trace["traceEvents"]}
    assert "retries-exhausted" in names
    assert "fallback" in names


def test_default_split_is_offloadable(job_env):
    from repro.workloads.job_queries import query
    plan = job_env.runner.plan(query("8c"))
    split = default_split(job_env.runner, plan)
    assert 0 <= split < plan.table_count
    assert job_env.runner.ndp_engine.can_offload(plan.prefix(split))


@pytest.mark.slow
@pytest.mark.parametrize("query_name", REPRESENTATIVE)
def test_chaos_representative(job_env, query_name):
    for scenario in sorted(SCENARIOS):
        summary = run_chaos(job_env, query_name, scenario, seed=0)
        assert summary["ok"], (
            f"{query_name}/{scenario}: rows_match={summary['rows_match']} "
            f"bounded={summary['bounded']}")


class TestRobustnessScenarios:
    """Cluster-level chaos: stragglers, cascading failures, deadlines."""

    def test_catalogue_names(self):
        assert set(ROBUSTNESS_SCENARIOS) == {
            "straggler_device", "double_device_failure",
            "deadline_shedding"}
        assert not set(ROBUSTNESS_SCENARIOS) & set(SCENARIOS)

    def test_straggler_speculation_rescues_makespan(self, job_env):
        summary = run_chaos(job_env, "1a", "straggler_device", seed=0)
        assert summary["ok"], summary
        assert summary["rows_match"]
        assert summary["speculation"]["clones"] >= 1
        assert summary["faulted_time"] \
            <= STRAGGLER_LIMIT * summary["reference_time"]

    def test_double_failure_degrades_to_host(self, job_env):
        summary = run_chaos(job_env, "1a", "double_device_failure",
                            seed=0)
        assert summary["ok"], summary
        assert summary["failed_devices"] == [0, 1]
        assert set(summary["placements"]) <= {"host-fallback", "empty"}

    def test_deadline_shedding_keeps_exact_accounting(self, job_env):
        summary = run_chaos(job_env, "1a", "deadline_shedding", seed=0)
        assert summary["ok"], summary
        assert summary["completed_jobs"] >= 1
        assert summary["shed_jobs"] >= 1
        assert summary["completed_jobs"] + summary["shed_jobs"] == 6
        assert summary["leaked_reserved_bytes"] == 0

    def test_robustness_summaries_are_byte_identical(self, job_env):
        def run_once():
            return json.dumps(
                run_chaos(job_env, "1a", "double_device_failure", seed=0),
                sort_keys=True)

        assert run_once() == run_once()


class TestGeneratedWorkloads:
    def test_generated_queries_deterministic(self):
        first = generated_queries(3, seed=11)
        again = generated_queries(3, seed=11)
        other = generated_queries(3, seed=12)
        assert list(first) == ["gen0", "gen1", "gen2"]
        assert first == again
        assert first != other
        assert all(sql.lstrip().upper().startswith("SELECT")
                   for sql in first.values())

    def test_generated_query_runs_through_chaos(self, job_env):
        queries = generated_queries(2, seed=0)
        summary = run_chaos(job_env, "gen0", "transient-commands",
                            seed=0, queries=queries)
        assert summary["query"] == "gen0"
        assert summary["ok"], summary

    def test_matrix_accepts_generated_mapping(self, job_env):
        queries = generated_queries(1, seed=0)
        matrix = chaos_matrix(job_env, ["gen0"],
                              scenarios=["transient-commands"],
                              queries=queries)
        assert matrix["gen0"]["transient-commands"]["ok"]
