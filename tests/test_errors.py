"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("StorageError", "LSMError", "SchemaError",
                     "CatalogError", "ParseError", "PlanError",
                     "ExecutionError", "DeviceOverloadError",
                     "OffloadError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_device_overload_is_execution_error(self):
        assert issubclass(errors.DeviceOverloadError,
                          errors.ExecutionError)

    def test_parse_error_position(self):
        error = errors.ParseError("bad token", position=17)
        assert "17" in str(error)
        assert error.position == 17

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert str(error) == "bad token"
        assert error.position is None

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.LSMError("boom")
