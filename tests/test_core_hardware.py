"""Tests for the hardware model (Table 2) and its profiler pipeline."""

import pytest

from repro.core.hardware import HardwareModel
from repro.errors import ReproError
from repro.storage.machines import HOST_I5
from repro.storage.profiler import HardwareProfiler


@pytest.fixture
def hardware(device):
    return HardwareModel.profile(device, HOST_I5)


class TestConstruction:
    def test_from_profile_copies_measurements(self, device):
        report = HardwareProfiler(device, HOST_I5).run()
        model = HardwareModel.from_profile(report)
        assert model.ndp_hw_fcf == report.device_flash_page_rate
        assert model.host_hw_fcf == report.host_flash_page_rate
        assert model.hw_msh == HOST_I5.memory_bytes
        assert model.hw_mss == device.spec.selection_buffer_bytes
        assert model.hw_msj == device.spec.join_buffer_bytes
        assert model.hw_ipv == 2 and model.hw_ipl == 8

    def test_invalid_rates_rejected(self):
        with pytest.raises(ReproError):
            HardwareModel(ndp_hw_fcf=0, host_hw_fcf=1)
        with pytest.raises(ReproError):
            HardwareModel(ndp_hw_fcf=1, host_hw_fcf=1, eval_ndp=0)


class TestDerivedFactors:
    def test_compute_gap(self, hardware):
        assert hardware.compute_gap == pytest.approx(92343 / 2964, rel=0.01)

    def test_page_cost_cheaper_on_device(self, hardware):
        assert hardware.page_cost(on_device=True) < hardware.page_cost(
            on_device=False)
        assert hardware.page_cost(on_device=False) == 1.0

    def test_fsw_scales_device_page_cost(self, device):
        report = HardwareProfiler(device, HOST_I5).run()
        light = HardwareModel.from_profile(report, hw_fsw=1.0)
        heavy = HardwareModel.from_profile(report, hw_fsw=2.0)
        assert heavy.page_cost(True) == pytest.approx(
            light.page_cost(True) / 2.0)

    def test_compute_factor(self, hardware):
        assert hardware.compute_factor(on_device=False) == 1.0
        assert hardware.compute_factor(on_device=True) == pytest.approx(
            hardware.compute_gap)

    def test_memcpy_factor(self, hardware):
        assert hardware.memcpy_factor(on_device=False) == 1.0
        assert hardware.memcpy_factor(on_device=True) > 1.0

    def test_cf_pcie_for_gen2_x8(self, hardware):
        # Slower than the PCIe 3.0 x16 reference -> factor > 1.
        assert hardware.cf_pcie() > 1.0
