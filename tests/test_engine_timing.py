"""Tests for work counters and the timing model."""

import pytest

from repro.engine.counters import WorkCounters
from repro.engine.timing import (ExecutionLocation, HostIOPath,
                                 TimingBreakdown, TimingModel)
from repro.errors import ExecutionError
from repro.lsm.store import ReadStats
from repro.storage.machines import HOST_I5


@pytest.fixture
def timing(device):
    return TimingModel(device, HOST_I5)


@pytest.fixture
def blk_timing(device):
    return TimingModel(device, HOST_I5, io_path=HostIOPath.BLOCK)


def counters(**kwargs):
    result = WorkCounters()
    for name, value in kwargs.items():
        setattr(result, name, value)
    return result


class TestWorkCounters:
    def test_merge(self):
        a = counters(records_evaluated=5, flash_bytes_read=100)
        b = counters(records_evaluated=3, hash_probes=7)
        a.merge(b)
        assert a.records_evaluated == 8
        assert a.hash_probes == 7
        assert a.flash_bytes_read == 100

    def test_copy_is_independent(self):
        a = counters(records_evaluated=5)
        b = a.copy()
        b.records_evaluated += 1
        assert a.records_evaluated == 5

    def test_absorb_read_stats(self):
        stats = ReadStats(bytes_read=1000, index_blocks_read=2,
                          data_blocks_read=3, key_comparisons=10,
                          cache_hits=4)
        work = WorkCounters()
        work.absorb_read_stats(stats)
        assert work.flash_bytes_read == 1000
        assert work.index_block_reads == 2
        assert work.data_block_reads == 3
        assert work.key_comparisons == 10
        assert work.block_cache_hits == 4

    def test_as_dict(self):
        assert counters(output_rows=2).as_dict()["output_rows"] == 2


class TestBreakdown:
    def test_total_sums_categories(self):
        breakdown = TimingBreakdown(memcmp=1.0, flash_load=2.0, other=0.5)
        assert breakdown.total == 3.5

    def test_percentages_sum_to_100(self):
        breakdown = TimingBreakdown(memcmp=1.0, flash_load=3.0)
        shares = breakdown.percentages()
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["flash_load"] == pytest.approx(75.0)

    def test_merge(self):
        a = TimingBreakdown(memcmp=1.0)
        a.merge(TimingBreakdown(memcmp=2.0, other=1.0))
        assert a.memcmp == 3.0 and a.other == 1.0


class TestCharging:
    def test_empty_counters_cost_nothing(self, timing):
        seconds, _ = timing.charge(WorkCounters(), ExecutionLocation.HOST)
        assert seconds == 0.0

    def test_bad_location_rejected(self, timing):
        with pytest.raises(ExecutionError):
            timing.charge(WorkCounters(), "host")

    def test_streaming_work_near_parity_across_locations(self, timing):
        work = counters(records_evaluated=1_000_000)
        host, _ = timing.charge(work, ExecutionLocation.HOST)
        dev, _ = timing.charge(work, ExecutionLocation.DEVICE)
        # FPGA streaming filter: within ~4x of the host, NOT 31x slower.
        assert dev < 4 * host

    def test_random_work_pays_device_penalty(self, timing):
        work = counters(key_comparisons=1_000_000)
        host, _ = timing.charge(work, ExecutionLocation.HOST)
        dev, _ = timing.charge(work, ExecutionLocation.DEVICE)
        assert dev > 1.5 * host

    def test_flash_cheaper_on_device(self, timing):
        work = counters(flash_bytes_read=64 * 1024 * 1024)
        host, hb = timing.charge(work, ExecutionLocation.HOST)
        dev, db = timing.charge(work, ExecutionLocation.DEVICE)
        assert db.flash_load < hb.flash_load
        assert dev < host

    def test_blk_path_slower_than_native(self, timing, blk_timing):
        work = counters(flash_bytes_read=64 * 1024 * 1024)
        native, _ = timing.charge(work, ExecutionLocation.HOST)
        blk, _ = blk_timing.charge(work, ExecutionLocation.HOST)
        assert blk > native

    def test_blk_factor_only_affects_host(self, timing, blk_timing):
        work = counters(flash_bytes_read=64 * 1024 * 1024)
        native_dev, _ = timing.charge(work, ExecutionLocation.DEVICE)
        blk_dev, _ = blk_timing.charge(work, ExecutionLocation.DEVICE)
        assert native_dev == pytest.approx(blk_dev)

    def test_breakdown_categories_populated(self, timing):
        work = counters(flash_bytes_read=1024, memcmp_bytes=1024,
                        key_comparisons=10, index_block_reads=1,
                        data_block_reads=2, records_evaluated=100,
                        hash_probes=5, bytes_materialized=256)
        _, breakdown = timing.charge(work, ExecutionLocation.DEVICE)
        assert breakdown.flash_load > 0
        assert breakdown.memcmp > 0
        assert breakdown.compare_internal_keys > 0
        assert breakdown.seek_index_block > 0
        assert breakdown.seek_data_block > 0
        assert breakdown.selection_processing > 0
        assert breakdown.other > 0

    def test_transfer_time(self, timing, device):
        assert timing.transfer_time(1024 * 1024) == pytest.approx(
            device.link.transfer_time(1024 * 1024))

    def test_command_setup_time(self, timing, device):
        assert timing.command_setup_time(0) == pytest.approx(
            2 * device.link.command_latency)
