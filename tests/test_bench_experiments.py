"""Tests for the experiment harness and reporting."""

import pytest

from repro.bench.experiments import (classify_matrix,
                                     exp3_decisions_fig13,
                                     exp6_table4, force_bnlj)
from repro.bench.reporting import format_table, ms, render_matrix_summary
from repro.query.physical import AccessPath, JoinAlgorithm
from repro.workloads.job_queries import query


class TestClassifyMatrix:
    def test_green_yellow_red(self):
        matrix = {
            "a": {"host-only": 1.0, "H0": 0.5, "full-ndp": 2.0},
            "b": {"host-only": 1.0, "H0": 1.01, "full-ndp": 3.0},
            "c": {"host-only": 1.0, "H0": 1.5, "full-ndp": 1.4},
        }
        summary = classify_matrix(matrix)
        assert summary["per_query"] == {"a": "green", "b": "yellow",
                                        "c": "red"}
        assert summary["green_yellow_pct"] == pytest.approx(200 / 3)
        assert summary["max_speedup"] == pytest.approx(2.0)

    def test_best_strategy_attribution(self):
        matrix = {
            "a": {"host-only": 1.0, "H0": 0.4, "H1": 0.6,
                  "full-ndp": 0.9},
            "b": {"host-only": 1.0, "H0": 0.8, "full-ndp": 0.3},
        }
        summary = classify_matrix(matrix)
        assert summary["h0_best_pct"] == pytest.approx(50.0)
        assert summary["full_ndp_best_pct"] == pytest.approx(50.0)

    def test_infeasible_strategies_ignored(self):
        matrix = {"a": {"host-only": 1.0, "H0": None, "full-ndp": None}}
        summary = classify_matrix(matrix)
        assert summary["per_query"]["a"] == "red"

    def test_empty_matrix(self):
        summary = classify_matrix({})
        assert summary["total"] == 0
        assert summary["green_pct"] == 0.0


class TestForceBnlj:
    def test_rewrites_joins(self, mini_catalog):
        from repro.query.optimizer import build_plan
        from tests.conftest import MINI_JOIN_SQL
        plan = force_bnlj(build_plan(MINI_JOIN_SQL, mini_catalog))
        for entry in plan.entries[1:]:
            assert entry.join_algorithm is JoinAlgorithm.BNLJ
            assert entry.index_column is None
            assert entry.access_path is AccessPath.FULL_SCAN

    def test_forced_plan_still_correct(self, mini_catalog, kv_db, flash):
        from repro.engine.stacks import Stack, StackRunner
        from repro.query.optimizer import build_plan
        from repro.storage.topology import Topology
        from tests.conftest import MINI_JOIN_SQL
        runner = StackRunner(mini_catalog, kv_db,
                             Topology.single(flash=flash).device,
                             buffer_scale=0.001)
        normal = runner.run(build_plan(MINI_JOIN_SQL, mini_catalog),
                            Stack.NATIVE)
        forced = runner.run(force_bnlj(build_plan(MINI_JOIN_SQL,
                                                  mini_catalog)),
                            Stack.NATIVE)
        assert forced.result.sorted_rows() == normal.result.sorted_rows()
        # Index-less execution must do more work.
        assert (forced.host_counters.records_evaluated
                >= normal.host_counters.records_evaluated)


class TestExperimentsOnJobEnv:
    def test_table4_shares(self, job_env):
        result = exp6_table4(job_env, "8d", split_index=2)
        assert abs(sum(result["device_operations"].values()) - 100) < 1e-6
        assert result["host_stages"]["ndp_setup"] < 10

    def test_decisions_classifier(self, job_env):
        matrix = {
            "1a": {"host-only": 1.0, "H0": 0.9, "H1": 1.1,
                   "full-ndp": 2.0},
        }
        result = exp3_decisions_fig13(job_env, matrix)
        assert result["total"] == 1
        assert result["per_query"]["1a"] in ("best", "acceptable", "miss")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"],
                            [["xxx", 1], ["y", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert len(lines) == 5

    def test_ms(self):
        assert ms(0.001234) == "1.234"

    def test_matrix_summary_renders(self):
        summary = classify_matrix(
            {"a": {"host-only": 1.0, "H0": 0.5}})
        text = render_matrix_summary(summary)
        assert "green" in text
        assert "4.2x" in text

    def test_family_grid(self):
        from repro.bench.reporting import render_family_grid
        grid = render_family_grid(
            {"1a": "green", "1b": "red", "8c": "yellow"},
            legend="g/y/r")
        lines = grid.splitlines()
        assert "1" in lines[0] and "8" in lines[0]
        assert lines[1].strip().startswith("a")
        assert "g" in lines[1]
        assert "y" in lines[3] or "y" in grid
        assert "legend" in grid

    def test_family_grid_empty(self):
        from repro.bench.reporting import render_family_grid
        assert render_family_grid({}) == "(empty grid)"
