"""Tests for atomic write batches and the device bloom toggle."""

import pytest

from repro.errors import LSMError
from repro.lsm.snapshot import SharedState
from repro.lsm.store import LSMTree, WriteBatch
from repro.storage.flash import FlashDevice

from tests.conftest import small_lsm_config


def make_tree(**overrides):
    return LSMTree(config=small_lsm_config(**overrides),
                   flash=FlashDevice())


class TestWriteBatch:
    def test_chaining_and_len(self):
        batch = WriteBatch().put(b"a", b"1").delete(b"b")
        assert len(batch) == 2

    def test_apply(self):
        tree = make_tree()
        tree.put(b"b", b"old")
        batch = WriteBatch().put(b"a", b"1").delete(b"b").put(b"c", b"3")
        tree.apply_batch(batch)
        assert tree.get(b"a") == b"1"
        assert tree.get(b"b") is None
        assert tree.get(b"c") == b"3"

    def test_order_within_batch(self):
        tree = make_tree()
        batch = WriteBatch().put(b"k", b"first").put(b"k", b"second")
        tree.apply_batch(batch)
        assert tree.get(b"k") == b"second"

    def test_batch_never_split_by_rotation(self):
        # Fill the memtable close to its limit, then apply a batch that
        # overflows it: every batch entry must still be readable.
        tree = make_tree(memtable_size=256)
        tree.put(b"filler", b"x" * 200)
        batch = WriteBatch()
        for i in range(20):
            batch.put(f"batch-{i:02d}".encode(), b"y" * 30)
        tree.apply_batch(batch)
        for i in range(20):
            assert tree.get(f"batch-{i:02d}".encode()) == b"y" * 30

    def test_type_validation(self):
        with pytest.raises(LSMError):
            WriteBatch().put("str", b"v")
        with pytest.raises(LSMError):
            WriteBatch().put(b"k", 1)
        with pytest.raises(LSMError):
            WriteBatch().delete("str")

    def test_clear(self):
        batch = WriteBatch().put(b"a", b"1")
        batch.clear()
        assert len(batch) == 0


class TestDeviceBloomToggle:
    def _snapshot_view(self, use_bloom):
        from repro.lsm.column_family import KVDatabase
        db = KVDatabase(flash=FlashDevice(),
                        default_config=small_lsm_config(auto_compact=False))
        cf = db.create_column_family("t")
        for batch_n in range(3):
            for i in range(40):
                cf.put(f"present-{batch_n}-{i:03d}".encode(), b"v")
            cf.tree.freeze_and_flush()
        state = SharedState.capture(db, ["t"])
        return state.view("t", use_bloom_filters=use_bloom)

    # A key inside SST fences but absent, so only a bloom can prune it.
    _IN_FENCE_ABSENT = b"present-1-01x"

    def test_default_skips_blooms(self):
        from repro.lsm.store import ReadStats
        view = self._snapshot_view(use_bloom=False)
        stats = ReadStats()
        assert view.get(self._IN_FENCE_ABSENT, stats=stats) is None
        assert stats.bloom_probes == 0
        assert stats.data_blocks_read > 0      # had to read the block

    def test_enabled_blooms_prune_ssts(self):
        from repro.lsm.store import ReadStats
        view = self._snapshot_view(use_bloom=True)
        stats = ReadStats()
        assert view.get(self._IN_FENCE_ABSENT, stats=stats) is None
        assert stats.bloom_probes > 0
        assert stats.ssts_skipped_bloom > 0

    def test_results_identical_either_way(self):
        plain = self._snapshot_view(use_bloom=False)
        bloomed = self._snapshot_view(use_bloom=True)
        for key in (b"present-0-001", b"present-2-039", b"nope"):
            assert plain.get(key) == bloomed.get(key)
