"""Shared fixtures.

Heavy environments are session-scoped: the synthetic JOB dataset is
generated and loaded once and reused read-only by every test that needs
it.  Tests that mutate state build their own small stores.
"""

import pytest

from repro.lsm.column_family import KVDatabase
from repro.lsm.store import LSMConfig
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema, char_col, int_col
from repro.storage.topology import Topology
from repro.storage.flash import FlashDevice
from repro.workloads.loader import build_environment


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run slow tests (the full 113-query differential suite)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running test, skipped unless --runslow is given")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def small_lsm_config(**overrides):
    """An LSM config that flushes/compacts quickly in tests."""
    defaults = dict(memtable_size=16 * 1024, level_base_bytes=64 * 1024,
                    sst_target_bytes=32 * 1024, block_size=2048)
    defaults.update(overrides)
    return LSMConfig(**defaults)


@pytest.fixture
def flash():
    return FlashDevice()


@pytest.fixture
def device(flash):
    return Topology.single(flash=flash).device


@pytest.fixture
def kv_db(flash):
    return KVDatabase(flash=flash, default_config=small_lsm_config())


@pytest.fixture
def mini_catalog(kv_db):
    """A 3-table catalog with deterministic data, for planner tests."""
    catalog = Catalog(kv_db)
    catalog.create_table(TableSchema(
        "title",
        (int_col("id", False), char_col("title", 32),
         int_col("production_year"), int_col("kind_id")),
        "id", ("production_year",)))
    catalog.create_table(TableSchema(
        "movie_companies",
        (int_col("id", False), int_col("movie_id"),
         int_col("company_type_id"), char_col("note", 40)),
        "id", ("movie_id",)))
    catalog.create_table(TableSchema(
        "company_type",
        (int_col("id", False), char_col("kind", 24)),
        "id"))
    title = catalog.table("title")
    for i in range(400):
        title.insert({"id": i, "title": f"Movie {i}",
                      "production_year": 1950 + i % 70,
                      "kind_id": i % 7})
    mc = catalog.table("movie_companies")
    for i in range(800):
        mc.insert({"id": i, "movie_id": i % 400,
                   "company_type_id": i % 4,
                   "note": "(presents)" if i % 5 == 0
                           else "(co-production)"})
    ct = catalog.table("company_type")
    for i in range(4):
        ct.insert({"id": i, "kind": "production companies" if i == 0
                                    else f"kind{i}"})
    catalog.flush_all()
    return catalog


MINI_JOIN_SQL = """SELECT MIN(t.title) AS movie_title,
       MIN(t.production_year) AS yr
FROM company_type AS ct, title AS t, movie_companies AS mc
WHERE ct.kind = 'production companies'
  AND (mc.note LIKE '%(co-production)%' OR mc.note LIKE '%(presents)%')
  AND ct.id = mc.company_type_id
  AND t.id = mc.movie_id
  AND t.production_year BETWEEN 1960 AND 1980"""


@pytest.fixture
def mini_join_sql():
    return MINI_JOIN_SQL


@pytest.fixture(scope="session")
def job_env():
    """The synthetic JOB environment at tiny scale (read-only)."""
    return build_environment(scale=0.0004, seed=7)


@pytest.fixture(scope="session")
def job_env_noindex():
    """JOB environment without secondary indexes (Experiments 4/5)."""
    return build_environment(scale=0.0008, seed=7, secondary_indexes=False)
