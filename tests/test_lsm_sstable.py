"""Tests for SSTables (blocks, sparse index, fences, cache charging)."""

import pytest

from repro.errors import LSMError
from repro.lsm.cache import BlockCache
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.store import ReadStats
from repro.storage.flash import FlashDevice


def build_sst(n=100, block_size=256, flash=None, value=b"v" * 20):
    builder = SSTableBuilder(block_size=block_size)
    for i in range(n):
        builder.add(f"key-{i:05d}".encode(), value)
    return builder.finish(flash=flash, sst_id=1, level=1)


class TestBuilder:
    def test_out_of_order_rejected(self):
        builder = SSTableBuilder()
        builder.add(b"b", b"v")
        with pytest.raises(LSMError):
            builder.add(b"a", b"v")

    def test_duplicate_rejected(self):
        builder = SSTableBuilder()
        builder.add(b"a", b"v")
        with pytest.raises(LSMError):
            builder.add(b"a", b"v2")

    def test_empty_build_rejected(self):
        with pytest.raises(LSMError):
            SSTableBuilder().finish()

    def test_blocks_respect_target_size(self):
        sst = build_sst(n=100, block_size=256)
        assert sst.block_count > 1

    def test_flash_allocation(self):
        flash = FlashDevice()
        sst = build_sst(flash=flash)
        assert sst.extent is not None
        assert sst.extent.nbytes == sst.nbytes

    def test_non_bytes_rejected(self):
        with pytest.raises(LSMError):
            SSTableBuilder().add("str", b"v")


class TestReads:
    def test_get_present(self):
        sst = build_sst()
        found, value = sst.get(b"key-00042")
        assert found and value == b"v" * 20

    def test_get_absent_inside_range(self):
        sst = build_sst()
        assert sst.get(b"key-00042x") == (False, None)

    def test_get_outside_fences_is_free(self):
        sst = build_sst()
        stats = ReadStats()
        assert sst.get(b"zzz", stats) == (False, None)
        assert stats.data_blocks_read == 0

    def test_tombstone_reported_found_none(self):
        builder = SSTableBuilder()
        builder.add(b"a", TOMBSTONE)
        sst = builder.finish()
        assert sst.get(b"a") == (True, None)

    def test_full_iteration_in_order(self):
        sst = build_sst(n=50)
        keys = [k for k, _ in sst.iter_all()]
        assert keys == sorted(keys)
        assert len(keys) == 50

    def test_range_iteration_hi_exclusive(self):
        sst = build_sst(n=20)
        keys = [k for k, _ in sst.iter_range(b"key-00005", b"key-00010")]
        assert keys == [f"key-{i:05d}".encode() for i in range(5, 10)]

    def test_fences(self):
        sst = build_sst(n=10)
        assert sst.min_key == b"key-00000"
        assert sst.max_key == b"key-00009"
        assert sst.overlaps(b"key-00003", b"key-00004")
        assert not sst.overlaps(b"zzz", None)
        assert not sst.overlaps(None, b"a")

    def test_bloom_probe_counted(self):
        sst = build_sst()
        stats = ReadStats()
        sst.might_contain(b"key-00001", stats)
        sst.might_contain(b"definitely-not-there", stats)
        assert stats.bloom_probes == 2
        assert stats.bloom_negatives >= 1


class TestStatsCharging:
    def test_get_charges_index_and_block(self):
        sst = build_sst()
        stats = ReadStats()
        sst.get(b"key-00042", stats)
        assert stats.index_blocks_read == 1
        assert stats.data_blocks_read == 1
        assert stats.bytes_read > 0

    def test_scan_charges_every_block(self):
        sst = build_sst(n=100, block_size=256)
        stats = ReadStats()
        list(sst.iter_all(stats))
        assert stats.data_blocks_read == sst.block_count

    def test_cache_absorbs_repeat_reads(self):
        sst = build_sst()
        cache = BlockCache(10 * 1024 * 1024)
        first = ReadStats()
        first.cache = cache
        sst.get(b"key-00042", first)
        second = ReadStats()
        second.cache = cache
        sst.get(b"key-00042", second)
        assert first.bytes_read > 0
        assert second.bytes_read == 0
        assert second.cache_hits == 2      # index + data block

    def test_tiny_cache_does_not_absorb(self):
        sst = build_sst()
        cache = BlockCache(1)    # too small to hold anything
        stats = ReadStats()
        stats.cache = cache
        sst.get(b"key-00042", stats)
        sst.get(b"key-00042", stats)
        assert stats.cache_hits == 0
