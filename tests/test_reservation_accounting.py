"""Device buffer-reservation accounting (repro.storage.device).

Regression suite for the release-by-equality bug: two pipelines with the
same operator shape are *equal* frozen dataclasses, so releasing one of
them twice used to double-decrement ``reserved_bytes`` and silently
corrupt the budget.  Reservations are now tracked by device-issued
token, double/foreign releases fail loudly, and the accounting can never
go negative — which the interleaving property test hammers on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceOverloadError, StorageError
from repro.storage.device import SmartStorageDevice


def _device():
    return SmartStorageDevice()


class TestReleaseIdentity:
    def test_double_release_fails_loudly(self):
        device = _device()
        reservation = device.reserve_pipeline(2, 1, 1)
        device.release_pipeline(reservation)
        with pytest.raises(StorageError):
            device.release_pipeline(reservation)
        assert device.reserved_bytes == 0

    def test_same_shape_reservations_are_distinct(self):
        # The original bug: equal dataclasses aliased each other in a
        # list-based `remove`, so releasing A twice freed B's bytes.
        device = _device()
        first = device.reserve_pipeline(2, 1, 1)
        second = device.reserve_pipeline(2, 1, 1)
        assert first == second          # equal shapes...
        assert first is not second      # ...but distinct reservations
        device.release_pipeline(first)
        with pytest.raises(StorageError):
            device.release_pipeline(first)
        assert device.reserved_bytes == second.total_bytes
        device.release_pipeline(second)
        assert device.reserved_bytes == 0

    def test_foreign_reservation_rejected(self):
        ours = _device()
        theirs = _device()
        reservation = theirs.reserve_pipeline(1)
        with pytest.raises(StorageError):
            ours.release_pipeline(reservation)
        assert ours.reserved_bytes == 0
        assert theirs.reserved_bytes == reservation.total_bytes

    def test_release_restores_budget(self):
        device = _device()
        reservation = device.reserve_pipeline(3, 2, 2, 1)
        assert device.available_bytes == (device.buffer_budget
                                          - reservation.total_bytes)
        device.release_pipeline(reservation)
        assert device.available_bytes == device.buffer_budget


@st.composite
def _ops(draw):
    """A sequence of interleaved reserve/release operations.

    Each element is either a pipeline shape to reserve or the index of
    an earlier op whose reservation to release (skipped when already
    released — and sometimes deliberately *not* skipped, to exercise
    the double-release rejection).
    """
    n = draw(st.integers(min_value=1, max_value=24))
    ops = []
    for i in range(n):
        if i and draw(st.booleans()):
            ops.append(("release", draw(st.integers(0, i - 1)),
                        draw(st.booleans())))
        else:
            ops.append(("reserve",
                        draw(st.integers(0, 6)), draw(st.integers(0, 4)),
                        draw(st.integers(0, 4)), draw(st.integers(0, 1))))
    return ops


class TestInterleavingProperty:
    @settings(max_examples=200, deadline=None)
    @given(_ops())
    def test_accounting_never_corrupts(self, ops):
        device = _device()
        reservations = {}    # op index -> reservation (live or released)
        live = set()         # indices with a live reservation
        for index, op in enumerate(ops):
            if op[0] == "reserve":
                _, sel, sec, joins, gbs = op
                try:
                    reservations[index] = device.reserve_pipeline(
                        sel, sec, joins, gbs)
                    live.add(index)
                except DeviceOverloadError:
                    pass     # over budget: correctly refused
            else:
                _, target, force_double = op
                reservation = reservations.get(target)
                if reservation is None:
                    continue
                if target in live:
                    device.release_pipeline(reservation)
                    live.discard(target)
                elif force_double:
                    # Double release must fail loudly, not corrupt.
                    with pytest.raises(StorageError):
                        device.release_pipeline(reservation)
            expected = sum(reservations[i].total_bytes for i in live)
            assert device.reserved_bytes == expected
            assert 0 <= device.reserved_bytes <= device.buffer_budget
        for index in live:
            device.release_pipeline(reservations[index])
        assert device.reserved_bytes == 0
