"""Device buffer-reservation accounting (repro.storage.device).

Regression suite for the release-by-equality bug: two pipelines with the
same operator shape are *equal* frozen dataclasses, so releasing one of
them twice used to double-decrement ``reserved_bytes`` and silently
corrupt the budget.  Reservations are now tracked by device-issued
token, double/foreign releases fail loudly, and the accounting can never
go negative — which the interleaving property test hammers on.

The second half covers the cooperative-cancellation accounting added
for deadlines and speculative execution: truncating a
:class:`~repro.sim.BusyResource` booking must never corrupt busy time
or touch another caller's interval, and cancelling an in-flight
:class:`~repro.engine.cooperative.PreparedSplit` at *any* point of its
life cycle must leave no resource booked past the cancel instant and no
DRAM reservation live.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import DeviceOverloadError, StorageError
from repro.sim import BusyResource, SimContext
from repro.storage.device import SmartStorageDevice
from repro.workloads.job_queries import query


def _device():
    return SmartStorageDevice()


class TestReleaseIdentity:
    def test_double_release_fails_loudly(self):
        device = _device()
        reservation = device.reserve_pipeline(2, 1, 1)
        device.release_pipeline(reservation)
        with pytest.raises(StorageError):
            device.release_pipeline(reservation)
        assert device.reserved_bytes == 0

    def test_same_shape_reservations_are_distinct(self):
        # The original bug: equal dataclasses aliased each other in a
        # list-based `remove`, so releasing A twice freed B's bytes.
        device = _device()
        first = device.reserve_pipeline(2, 1, 1)
        second = device.reserve_pipeline(2, 1, 1)
        assert first == second          # equal shapes...
        assert first is not second      # ...but distinct reservations
        device.release_pipeline(first)
        with pytest.raises(StorageError):
            device.release_pipeline(first)
        assert device.reserved_bytes == second.total_bytes
        device.release_pipeline(second)
        assert device.reserved_bytes == 0

    def test_foreign_reservation_rejected(self):
        ours = _device()
        theirs = _device()
        reservation = theirs.reserve_pipeline(1)
        with pytest.raises(StorageError):
            ours.release_pipeline(reservation)
        assert ours.reserved_bytes == 0
        assert theirs.reserved_bytes == reservation.total_bytes

    def test_release_restores_budget(self):
        device = _device()
        reservation = device.reserve_pipeline(3, 2, 2, 1)
        assert device.available_bytes == (device.buffer_budget
                                          - reservation.total_bytes)
        device.release_pipeline(reservation)
        assert device.available_bytes == device.buffer_budget


@st.composite
def _ops(draw):
    """A sequence of interleaved reserve/release operations.

    Each element is either a pipeline shape to reserve or the index of
    an earlier op whose reservation to release (skipped when already
    released — and sometimes deliberately *not* skipped, to exercise
    the double-release rejection).
    """
    n = draw(st.integers(min_value=1, max_value=24))
    ops = []
    for i in range(n):
        if i and draw(st.booleans()):
            ops.append(("release", draw(st.integers(0, i - 1)),
                        draw(st.booleans())))
        else:
            ops.append(("reserve",
                        draw(st.integers(0, 6)), draw(st.integers(0, 4)),
                        draw(st.integers(0, 4)), draw(st.integers(0, 1))))
    return ops


class TestInterleavingProperty:
    @settings(max_examples=200, deadline=None)
    @given(_ops())
    def test_accounting_never_corrupts(self, ops):
        device = _device()
        reservations = {}    # op index -> reservation (live or released)
        live = set()         # indices with a live reservation
        for index, op in enumerate(ops):
            if op[0] == "reserve":
                _, sel, sec, joins, gbs = op
                try:
                    reservations[index] = device.reserve_pipeline(
                        sel, sec, joins, gbs)
                    live.add(index)
                except DeviceOverloadError:
                    pass     # over budget: correctly refused
            else:
                _, target, force_double = op
                reservation = reservations.get(target)
                if reservation is None:
                    continue
                if target in live:
                    device.release_pipeline(reservation)
                    live.discard(target)
                elif force_double:
                    # Double release must fail loudly, not corrupt.
                    with pytest.raises(StorageError):
                        device.release_pipeline(reservation)
            expected = sum(reservations[i].total_bytes for i in live)
            assert device.reserved_bytes == expected
            assert 0 <= device.reserved_bytes <= device.buffer_budget
        for index in live:
            device.release_pipeline(reservations[index])
        assert device.reserved_bytes == 0


@st.composite
def _resource_timeline(draw):
    """Interleaved ``acquire``/``truncate`` calls with arbitrary times."""
    n = draw(st.integers(min_value=1, max_value=16))
    finite = dict(allow_nan=False, allow_infinity=False)
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("acquire",
                        draw(st.floats(min_value=0.0, max_value=10.0,
                                       **finite)),
                        draw(st.floats(min_value=0.0, max_value=5.0,
                                       **finite))))
        else:
            ops.append(("truncate",
                        draw(st.floats(min_value=0.0, max_value=20.0,
                                       **finite))))
    return ops


class TestTruncateProperty:
    """``BusyResource.truncate`` reclaims only the in-flight tail.

    The model tracks every interval the resource actually served; after
    any interleaving of acquisitions and truncations, busy time must
    equal the sum of served intervals, earlier callers' bookings must be
    untouched, and the resource can never end up over-subscribed.
    """

    @settings(max_examples=200, deadline=None)
    @given(_resource_timeline())
    def test_truncate_never_corrupts_busy_time(self, ops):
        resource = BusyResource("prop")
        served = []        # [begin, end] intervals actually served
        for op in ops:
            if op[0] == "acquire":
                _, start, duration = op
                free_before = resource.free_at
                begin, end = resource.acquire(start, duration)
                assert begin == max(start, free_before)
                assert end == begin + duration
                served.append([begin, end])
            else:
                _, now = op
                in_flight = (served
                             and served[-1][0] <= now < resource.free_at)
                expected = resource.free_at - now if in_flight else 0.0
                reclaimed = resource.truncate(now)
                assert reclaimed == pytest.approx(expected, abs=1e-12)
                if in_flight:
                    served[-1][1] = now
                    assert resource.free_at == now
            total = sum(end - begin for begin, end in served)
            assert resource.busy_time == pytest.approx(total, abs=1e-9)
            assert resource.busy_time >= -1e-12
            horizon = max(resource.free_at, 1e-9)
            assert resource.utilization(horizon) <= 1.0 + 1e-9


@pytest.fixture(scope="module")
def staged_split(job_env):
    """The 1a hybrid plan, its deepest split, and its serial makespan."""
    plan = job_env.runner.plan(query("1a"))
    split = plan.table_count - 1
    report = job_env.run(plan, Stack.HYBRID, split_index=split)
    return plan, split, report.total_time


class TestCancellationProperty:
    """Cancelling a prepared split leaks neither DRAM nor resource time.

    For any cancel instant — mid-flight or after completion — the
    device pipeline reservation must be released, and a mid-flight
    cancel must leave every kernel resource free no later than the
    cancel instant (the truncated tail is given back).
    """

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.05, max_value=1.2,
                     allow_nan=False, allow_infinity=False))
    def test_cancel_releases_reservation_and_resources(
            self, job_env, staged_split, fraction):
        plan, split, total = staged_split
        reserved_before = job_env.device.reserved_bytes
        cancel_at = fraction * total

        kernel = SimContext.fresh()
        prepared = job_env.runner.cooperative.prepare_split(
            plan, split, ExecutionContext(), kernel=kernel,
            trace_label="cancel-prop")
        assert job_env.device.reserved_bytes > reserved_before
        prepared.start(0.0)
        kernel.loop.schedule_at(
            cancel_at, lambda: prepared.cancel(cancel_at, reason="prop"),
            label="cancel")
        kernel.loop.run()

        # The reservation is never live afterwards, cancelled or not.
        assert job_env.device.reserved_bytes == reserved_before
        sim = prepared.sim
        if sim.cancelled:
            for resource in (sim.link, sim.core, sim.cpu):
                assert resource.free_at <= cancel_at + 1e-9, resource
        else:
            # Cancel arrived after completion: result must be intact.
            assert sim.completed
            assert sim.result is not None

    def test_double_cancel_is_idempotent(self, job_env, staged_split):
        plan, split, total = staged_split
        reserved_before = job_env.device.reserved_bytes
        kernel = SimContext.fresh()
        prepared = job_env.runner.cooperative.prepare_split(
            plan, split, ExecutionContext(), kernel=kernel,
            trace_label="cancel-twice")
        prepared.start(0.0)
        cancel_at = 0.25 * total
        kernel.loop.schedule_at(
            cancel_at, lambda: prepared.cancel(cancel_at, reason="first"),
            label="cancel")
        kernel.loop.run()
        assert prepared.sim.cancelled
        assert prepared.cancel(total, reason="second") is False
        assert job_env.device.reserved_bytes == reserved_before
