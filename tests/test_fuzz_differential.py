"""Differential fuzzing: generated SQL across every execution layer.

Mirrors ``test_differential_job.py`` for the *generated* workload: a
pinned-seed smoke corpus runs tier-1 (every query host-only vs split vs
scheduler vs 2/4-device cluster), and the full ≥200-query corpus runs
under ``--runslow``.  Also pins the shrinker's behaviour and the corpus
persistence/replay loop.
"""

import json

import pytest

from repro.bench.fuzz import (MODES, FuzzHarness, load_failures,
                              replay_failures, shrink_sql, write_corpus)
from repro.errors import ReproError
from repro.query.parser import parse_query
from repro.workloads.sqlgen import RandomSqlGenerator

#: The pinned tier-1 corpus: seed 7, first 25 queries (prefix-stable, so
#: it is byte-identical to the first 25 of the CI 200-query sweep).
SEED = 7
SMOKE_COUNT = 25
FULL_COUNT = 200


@pytest.fixture(scope="module")
def smoke_report(job_env):
    harness = FuzzHarness(job_env, seed=SEED)
    return harness.run(SMOKE_COUNT)


class TestSmokeGrid:
    def test_runs_every_mode(self, smoke_report):
        assert smoke_report.modes == MODES

    def test_no_failures(self, smoke_report):
        details = [failure.to_dict() for failure in smoke_report.failures]
        assert smoke_report.ok, details

    def test_every_query_checked_in_every_mode(self, smoke_report):
        # host + split + scheduler + cluster2 + cluster4, minus split
        # attempts the device genuinely cannot run.
        expected = SMOKE_COUNT * len(MODES) - smoke_report.infeasible
        assert smoke_report.checks == expected

    def test_report_is_deterministic(self, job_env, smoke_report):
        # A tiny re-run of the first queries must serialize identically
        # to a fresh harness over the same prefix (seeding contract).
        small_a = FuzzHarness(job_env, seed=SEED).run(5).to_dict()
        small_b = FuzzHarness(job_env, seed=SEED).run(5).to_dict()
        assert json.dumps(small_a, sort_keys=True) == \
            json.dumps(small_b, sort_keys=True)

    def test_report_round_trips_to_json(self, smoke_report):
        payload = json.loads(json.dumps(smoke_report.to_dict()))
        assert payload["queries"] == SMOKE_COUNT
        assert payload["ok"] is True


@pytest.mark.slow
def test_full_corpus_differential(job_env):
    """The acceptance sweep: ≥200 generated queries, zero mismatches."""
    report = FuzzHarness(job_env, seed=SEED).run(FULL_COUNT)
    details = [failure.to_dict() for failure in report.failures]
    assert report.ok, details
    assert report.checks >= FULL_COUNT * 4


class TestModesOption:
    def test_subset_of_modes(self, job_env):
        harness = FuzzHarness(job_env, seed=SEED, modes=("host", "split"))
        report = harness.run(3)
        assert report.modes == ("host", "split")
        assert report.ok

    def test_unknown_mode_rejected(self, job_env):
        with pytest.raises(ReproError):
            FuzzHarness(job_env, modes=("host", "warp-drive"))


class TestShrinker:
    SQL = ("SELECT MIN(t.title) AS a0, COUNT(*) AS c1\n"
           "FROM title AS t, movie_info AS mi, info_type AS it\n"
           "WHERE mi.movie_id = t.id AND mi.info_type_id = it.id\n"
           "  AND t.production_year BETWEEN 1990 AND 2000\n"
           "  AND mi.info IN ('Drama', 'Comedy', 'Horror')\n"
           "  AND (it.info = 'genres' OR it.info = 'votes')")

    def test_shrinks_to_minimal_failing_query(self):
        shrunk = shrink_sql(self.SQL, lambda sql: "BETWEEN" in sql)
        parsed = parse_query(shrunk)
        assert len(parsed.tables) == 1          # only title survives
        assert "BETWEEN" in shrunk              # failure preserved
        assert "IN (" not in shrunk             # everything else gone

    def test_result_always_still_fails(self):
        shrunk = shrink_sql(self.SQL, lambda sql: "movie_info AS mi" in sql)
        assert "movie_info AS mi" in shrunk

    def test_unshrinkable_query_returned_canonical(self):
        sql = "SELECT COUNT(*) AS c0 FROM title AS t"
        shrunk = shrink_sql(sql, lambda _sql: True)
        assert parse_query(shrunk) == parse_query(sql)

    def test_shrunk_join_graph_stays_connected(self):
        # Dropping the middle table would disconnect t from it: the
        # shrinker must refuse, keeping mi even though only t and it
        # matter to the predicate.
        shrunk = shrink_sql(
            self.SQL,
            lambda sql: "title AS t" in sql and "info_type AS it" in sql)
        parsed = parse_query(shrunk)
        names = {name for name, _alias in parsed.tables}
        assert {"title", "movie_info", "info_type"} <= names


class TestCorpusPersistence:
    def test_write_and_reload(self, job_env, tmp_path):
        report = FuzzHarness(job_env, seed=SEED,
                             modes=("host",)).run(3)
        paths = write_corpus(report, str(tmp_path))
        entries = load_failures(paths["corpus"])
        assert [entry["index"] for entry in entries] == [0, 1, 2]
        assert all(entry["seed"] == SEED for entry in entries)

    def test_replay_reruns_recorded_queries(self, job_env, tmp_path):
        report = FuzzHarness(job_env, seed=SEED,
                             modes=("host",)).run(2)
        paths = write_corpus(report, str(tmp_path))
        replays = replay_failures(job_env, paths["corpus"],
                                  modes=("host",))
        assert len(replays) == 1
        assert replays[0].ok
        assert replays[0].queries == 2

    def test_failures_jsonl_written_when_failures_exist(self, tmp_path):
        from repro.bench.fuzz import FuzzFailure, FuzzReport
        query = RandomSqlGenerator(seed=SEED).generate_one(0)
        report = FuzzReport(seed=SEED, queries=1, modes=("host",),
                            corpus=[query])
        report.failures.append(FuzzFailure(
            name=query.name, seed=SEED, index=0, mode="host",
            kind="mismatch", detail="synthetic", sql=query.sql,
            shrunk_sql="SELECT COUNT(*) AS c0 FROM title AS t"))
        paths = write_corpus(report, str(tmp_path))
        entries = load_failures(paths["failures"])
        assert entries[0]["kind"] == "mismatch"
        assert entries[0]["shrunk_sql"].startswith("SELECT COUNT(*)")
        assert not report.ok

    def test_replay_detects_generator_drift(self, job_env, tmp_path):
        path = tmp_path / "failures.jsonl"
        entry = RandomSqlGenerator(seed=SEED).generate_one(0).to_dict()
        entry["sql"] = "SELECT COUNT(*) AS c0 FROM title AS t"
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(ReproError):
            replay_failures(job_env, str(path), modes=("host",))
