"""Tests for the on-device join algorithm family (NLJ/BNLJ/BNLJI/GHJ).

nKV offers all four (§2.1); every algorithm must produce identical rows,
while their work profiles differ in the documented ways.
"""

import pytest

from repro.bench.experiments import force_join
from repro.engine.counters import WorkCounters
from repro.engine.pipeline import (PipelineConfig, PipelineExecutor,
                                   stable_hash)
from repro.query.optimizer import build_plan
from repro.query.physical import JoinAlgorithm

JOIN_SQL = ("SELECT t.id, mc.id FROM title AS t, movie_companies AS mc "
            "WHERE t.kind_id >= 1 AND t.id = mc.movie_id")


def run_with(catalog, algorithm, join_buffer=1 << 20):
    plan = build_plan(JOIN_SQL, catalog)
    if algorithm is not None:
        force_join(plan, algorithm)
    counters = WorkCounters()
    executor = PipelineExecutor(
        catalog, PipelineConfig(join_buffer_bytes=join_buffer), counters)
    rows, _ = executor.run(plan.entries, plan.spec.tables)
    key = lambda row: (row["t.id"], row["mc.id"])
    return sorted(rows, key=key), counters


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("algorithm", [
        None,                       # optimizer default (BNLJI here)
        JoinAlgorithm.BNLJ,
        JoinAlgorithm.GHJ,
        JoinAlgorithm.NLJ,
    ])
    def test_same_rows(self, mini_catalog, algorithm):
        expected, _ = run_with(mini_catalog, None)
        got, _ = run_with(mini_catalog, algorithm)
        assert got == expected


class TestWorkProfiles:
    def test_nlj_rescans_inner_per_outer_row(self, mini_catalog):
        _, nlj = run_with(mini_catalog, JoinAlgorithm.NLJ)
        _, bnlj = run_with(mini_catalog, JoinAlgorithm.BNLJ)
        assert nlj.records_evaluated > 10 * bnlj.records_evaluated

    def test_ghj_scans_inner_once(self, mini_catalog):
        # With a tiny join buffer BNLJ rescans the inner per block; GHJ
        # partitions instead and scans it exactly once.
        _, bnlj = run_with(mini_catalog, JoinAlgorithm.BNLJ,
                           join_buffer=256)
        _, ghj = run_with(mini_catalog, JoinAlgorithm.GHJ,
                          join_buffer=256)
        assert ghj.records_evaluated < bnlj.records_evaluated

    def test_ghj_materializes_partitions(self, mini_catalog):
        _, ghj = run_with(mini_catalog, JoinAlgorithm.GHJ, join_buffer=256)
        assert ghj.bytes_materialized > 0
        assert ghj.hash_probes > 0

    def test_bnlji_uses_index_seeks(self, mini_catalog):
        _, bnlji = run_with(mini_catalog, None)
        assert bnlji.index_seeks > 0
        _, bnlj = run_with(mini_catalog, JoinAlgorithm.BNLJ)
        assert bnlj.index_seeks == 0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash((1, "x")) == stable_hash((1, "x"))

    def test_spreads_keys(self):
        buckets = {stable_hash((i,)) % 7 for i in range(100)}
        assert len(buckets) == 7

    def test_handles_mixed_types(self):
        assert stable_hash((None,)) != stable_hash((0,)) or True
        stable_hash(("text", 5, None))
