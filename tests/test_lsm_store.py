"""Tests for the full LSM tree (GET/SCAN/flush/compaction interplay)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.store import LSMConfig, LSMTree, ReadStats
from repro.storage.flash import FlashDevice

from tests.conftest import small_lsm_config


def make_tree(**overrides):
    return LSMTree(config=small_lsm_config(**overrides),
                   flash=FlashDevice())


class TestPointOps:
    def test_put_get(self):
        tree = make_tree()
        tree.put(b"k", b"v")
        assert tree.get(b"k") == b"v"

    def test_get_missing(self):
        assert make_tree().get(b"nope") is None

    def test_delete_shadows_flushed_value(self):
        tree = make_tree()
        tree.put(b"k", b"v")
        tree.freeze_and_flush()
        tree.delete(b"k")
        assert tree.get(b"k") is None

    def test_overwrite_across_flushes(self):
        tree = make_tree()
        tree.put(b"k", b"v1")
        tree.freeze_and_flush()
        tree.put(b"k", b"v2")
        tree.freeze_and_flush()
        assert tree.get(b"k") == b"v2"

    def test_get_searches_memtable_first(self):
        tree = make_tree()
        tree.put(b"k", b"old")
        tree.freeze_and_flush()
        tree.put(b"k", b"new")      # still in memtable
        stats = ReadStats()
        assert tree.get(b"k", stats) == b"new"
        assert stats.memtable_gets >= 1
        assert stats.data_blocks_read == 0


class TestFlushing:
    def test_auto_flush_when_memtable_full(self):
        tree = make_tree(memtable_size=512)
        for i in range(100):
            tree.put(f"key-{i:04d}".encode(), b"x" * 20)
        assert tree.levels.sst_count() > 0
        assert tree.write_stats.flushes > 0

    def test_freeze_and_flush_empties_memtable(self):
        tree = make_tree()
        tree.put(b"k", b"v")
        tree.freeze_and_flush()
        assert len(tree.memtable) == 0
        assert tree.get(b"k") == b"v"

    def test_levels_invariants_hold_after_heavy_load(self):
        tree = make_tree(memtable_size=512, level_base_bytes=2048,
                         sst_target_bytes=1024)
        rng = random.Random(3)
        for i in range(2000):
            tree.put(f"key-{rng.randrange(500):05d}".encode(), b"x" * 30)
        tree.freeze_and_flush()
        tree.levels.check_invariants()
        assert any(level > 1 for level, _ in tree.levels.levels)


class TestScans:
    def test_scan_merges_all_components(self):
        tree = make_tree(memtable_size=256)
        expected = {}
        for i in range(300):
            key = f"key-{i % 120:05d}".encode()
            value = f"value-{i}".encode()
            tree.put(key, value)
            expected[key] = value
        got = dict(tree.scan())
        assert got == expected

    def test_scan_range_bounds(self):
        tree = make_tree()
        for i in range(20):
            tree.put(f"{i:03d}".encode(), b"v")
        tree.freeze_and_flush()
        keys = [k for k, _ in tree.scan(lo=b"005", hi=b"010")]
        assert keys == [f"{i:03d}".encode() for i in range(5, 10)]

    def test_scan_skips_deleted(self):
        tree = make_tree()
        tree.put(b"a", b"1")
        tree.put(b"b", b"2")
        tree.freeze_and_flush()
        tree.delete(b"a")
        assert dict(tree.scan()) == {b"b": b"2"}

    def test_value_predicate_filters_but_scans_everything(self):
        tree = make_tree()
        for i in range(50):
            tree.put(f"{i:03d}".encode(), f"{i}".encode())
        tree.freeze_and_flush()
        stats = ReadStats()
        got = dict(tree.scan(value_predicate=lambda v: v == b"7",
                             stats=stats))
        assert got == {b"007": b"7"}
        assert stats.entries_scanned == 50

    def test_fence_pointers_skip_ssts(self):
        tree = make_tree(auto_compact=False)
        for start in (0, 100, 200):
            for i in range(start, start + 20):
                tree.put(f"{i:05d}".encode(), b"v")
            tree.freeze_and_flush()
        stats = ReadStats()
        list(tree.scan(lo=b"00000", hi=b"00005", stats=stats))
        assert stats.ssts_skipped_fence >= 2


class TestBloomEffect:
    def test_bloom_skips_ssts_on_miss(self):
        tree = make_tree(auto_compact=False)
        for i in range(100):
            tree.put(f"present-{i:04d}".encode(), b"v")
        tree.freeze_and_flush()
        stats = ReadStats()
        assert tree.get(b"present-9999x", stats) is None
        assert stats.bloom_negatives >= 1 or stats.data_blocks_read == 0


class TestIntrospection:
    def test_placements_include_extents(self):
        tree = make_tree()
        for i in range(100):
            tree.put(f"key-{i:04d}".encode(), b"x" * 30)
        tree.freeze_and_flush()
        placements = tree.placements()
        assert placements
        assert all("extent" in p for p in placements)

    def test_read_amplification_counts_components(self):
        tree = make_tree(auto_compact=False)
        for batch in range(3):
            for i in range(20):
                tree.put(f"key-{i:04d}".encode(), f"{batch}".encode())
            tree.freeze_and_flush()
        assert tree.read_amplification(b"key-0001") >= 3


class TestPropertyBased:
    @given(st.lists(
        st.tuples(st.sampled_from(["put", "delete"]),
                  st.integers(min_value=0, max_value=50),
                  st.binary(min_size=1, max_size=10)),
        max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_matches_dict_model(self, ops):
        tree = make_tree(memtable_size=256, level_base_bytes=1024,
                         sst_target_bytes=512)
        model = {}
        for op, key_n, value in ops:
            key = f"k{key_n:03d}".encode()
            if op == "put":
                tree.put(key, value)
                model[key] = value
            else:
                tree.delete(key)
                model.pop(key, None)
        tree.freeze_and_flush()
        assert dict(tree.scan()) == model
        for key in list(model)[:20]:
            assert tree.get(key) == model[key]
        assert tree.get(b"k999") is None
        tree.levels.check_invariants()
