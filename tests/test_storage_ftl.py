"""Tests for the GreedyFTL model (BLK baseline substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.ftl import GreedyFTL


class TestBasicIO:
    def test_write_then_read(self):
        ftl = GreedyFTL(blocks=8, pages_per_block=8)
        ftl.write(5)
        block, slot = ftl.read(5)
        assert 0 <= block < 8 and 0 <= slot < 8

    def test_read_unwritten_rejected(self):
        with pytest.raises(StorageError):
            GreedyFTL().read(3)

    def test_negative_lpn_rejected(self):
        with pytest.raises(StorageError):
            GreedyFTL().write(-1)

    def test_overwrite_moves_physical_location(self):
        ftl = GreedyFTL(blocks=8, pages_per_block=8)
        ftl.write(1)
        first = ftl.read(1)
        ftl.write(1)
        second = ftl.read(1)
        assert first != second

    def test_capacity_enforced(self):
        ftl = GreedyFTL(blocks=4, pages_per_block=4)
        for lpn in range(ftl.user_capacity_pages):
            ftl.write(lpn)
        with pytest.raises(StorageError):
            ftl.write(999)


class TestGarbageCollection:
    def test_gc_triggered_by_overwrites(self):
        ftl = GreedyFTL(blocks=6, pages_per_block=8)
        # Repeatedly overwrite a small working set: GC must reclaim.
        for i in range(400):
            ftl.write(i % 8)
        assert ftl.stats.gc_runs > 0
        assert ftl.stats.blocks_erased > 0
        ftl.check_invariants()

    def test_write_amplification_above_one_under_pressure(self):
        ftl = GreedyFTL(blocks=6, pages_per_block=8)
        for lpn in range(ftl.user_capacity_pages):
            ftl.write(lpn)
        rng = random.Random(5)
        for _ in range(500):
            ftl.write(rng.randrange(ftl.user_capacity_pages))
        assert ftl.stats.write_amplification > 1.0
        ftl.check_invariants()

    def test_sequential_writes_have_wa_one(self):
        ftl = GreedyFTL(blocks=16, pages_per_block=8)
        for lpn in range(32):
            ftl.write(lpn)
        assert ftl.stats.write_amplification == 1.0

    def test_all_data_survives_gc(self):
        ftl = GreedyFTL(blocks=6, pages_per_block=8)
        rng = random.Random(7)
        live = set()
        for _ in range(600):
            lpn = rng.randrange(20)
            ftl.write(lpn)
            live.add(lpn)
        for lpn in live:
            ftl.read(lpn)       # must all still resolve
        ftl.check_invariants()


class TestMapCache:
    def test_small_cache_misses(self):
        ftl = GreedyFTL(blocks=16, pages_per_block=16,
                        map_cache_bytes=32, map_entry_bytes=8)
        for lpn in range(64):
            ftl.write(lpn)
        for lpn in range(64):
            ftl.read(lpn)
        assert ftl.stats.map_misses > ftl.stats.map_hits

    def test_large_cache_hits_on_reread(self):
        ftl = GreedyFTL(blocks=16, pages_per_block=16,
                        map_cache_bytes=1024 * 1024)
        for lpn in range(32):
            ftl.write(lpn)
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.map_hits > 0


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=15),
                    min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_mapping_always_consistent(self, writes):
        # 16 distinct logical pages need user capacity >= 16:
        # (8 blocks - 2 watermark - 1 active) * 8 pages = 40.
        ftl = GreedyFTL(blocks=8, pages_per_block=8)
        for lpn in writes:
            ftl.write(lpn)
        ftl.check_invariants()
        for lpn in set(writes):
            ftl.read(lpn)
        assert ftl.stats.physical_writes >= ftl.stats.logical_writes
