"""Unit tests for the plain-text reporting helpers."""

import pytest

from repro.bench.reporting import (format_table, ms, render_family_grid,
                                   render_matrix_summary)
from repro.errors import ReproError


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "t"], [["a", 1], ["longer", 22]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert all(len(line) == len(lines[1]) for line in lines[1:]
                   if line.strip())

    def test_none_rendered_empty(self):
        text = format_table(["a"], [[None]])
        assert text.splitlines()[-1].strip() == ""


class TestMs:
    def test_seconds_to_milliseconds(self):
        assert ms(0.001234) == "1.234"
        assert ms(0.0) == "0.000"


class TestRenderFamilyGrid:
    def test_grid_layout(self):
        grid = render_family_grid({"8c": "green", "8a": "red",
                                   "17b": "yellow"}, legend="g y r")
        lines = grid.splitlines()
        assert lines[0].split() == ["8", "17"]
        assert any(line.strip().startswith("a") and " r" in line
                   for line in lines)
        assert any(line.strip().startswith("c") and " g" in line
                   for line in lines)
        assert lines[-1] == "  legend: g y r"

    def test_empty_grid(self):
        assert render_family_grid({}) == "(empty grid)"

    def test_name_without_digits_raises_clear_error(self):
        # Regression: int("") used to crash with a bare ValueError.
        with pytest.raises(ReproError, match="no family number"):
            render_family_grid({"abc": "green"})

    def test_error_names_offending_query(self):
        with pytest.raises(ReproError, match="'xx'"):
            render_family_grid({"1a": "green", "xx": "red"})


class TestRenderMatrixSummary:
    def test_summary_lines(self):
        summary = {"total": 4, "green": 2, "green_pct": 50.0,
                   "yellow": 1, "yellow_pct": 25.0,
                   "red": 1, "red_pct": 25.0,
                   "green_yellow_pct": 75.0,
                   "full_ndp_best_pct": 0.0, "h0_best_pct": 25.0,
                   "max_speedup": 2.5}
        text = render_matrix_summary(summary)
        assert "queries evaluated:        4" in text
        assert "(paper: ~47%)" in text
        assert "2.50x" in text
