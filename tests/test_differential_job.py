"""Differential correctness: every strategy, every JOB query family.

For each query the host-BLK baseline rows must be bit-identical to the
host-NVMe (NATIVE) rows, every *feasible* hybrid split H0..H(n-1), and
full NDP.  A strategy may only be infeasible by raising one of the
documented infeasibility errors (:class:`DeviceOverloadError` for a
fragment that exceeds the device join cap, :class:`OffloadError` for an
operator the device cannot run); anything else — a TypeError, an
assertion, a bare ``ReproError`` — propagates and fails the test
loudly.  It must never be swallowed as "infeasible".

The representative subset below runs in tier-1; the remaining queries
of the full 113-query matrix are marked ``slow`` and run with
``pytest --runslow``.
"""

import pytest

from repro.engine.stacks import Stack
from repro.errors import DeviceOverloadError, OffloadError
from repro.workloads.job_queries import all_queries, query

#: The only exception types that may mark a strategy infeasible.
INFEASIBLE = (DeviceOverloadError, OffloadError)

# One variant per structural cluster: small (1, 2, 3, 6), mid (8, 11,
# 14, 17, 22), and large join graphs (26, 29, 32, 33), indexed and not.
REPRESENTATIVE = ["1a", "2d", "3b", "6b", "8c", "11a", "14a", "17b",
                  "22a", "26a", "29a", "32a", "33a"]

SLOW = [name for name in sorted(all_queries())
        if name not in REPRESENTATIVE]


def assert_all_strategies_agree(job_env, name):
    """Run every strategy for ``name`` and diff rows against host-BLK."""
    plan = job_env.runner.plan(query(name))
    baseline = job_env.run(plan, Stack.BLK).result.sorted_rows()

    native = job_env.run(plan, Stack.NATIVE)
    assert native.result.sorted_rows() == baseline, f"{name}: host-nvme"

    feasible = ["host-blk", "host-nvme"]
    for split in range(plan.table_count):
        try:
            hybrid = job_env.run(plan, Stack.HYBRID, split_index=split)
        except INFEASIBLE:
            continue
        feasible.append(f"H{split}")
        assert hybrid.result.sorted_rows() == baseline, f"{name}: H{split}"

    try:
        ndp = job_env.run(plan, Stack.NDP)
    except INFEASIBLE:
        pass
    else:
        feasible.append("full-ndp")
        assert ndp.result.sorted_rows() == baseline, f"{name}: full-ndp"

    # H0 offloads a single scan; it must always fit on the device.
    assert "H0" in feasible, f"{name}: no feasible hybrid split"


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_differential_representative(job_env, name):
    assert_all_strategies_agree(job_env, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_differential_full_matrix(job_env, name):
    assert_all_strategies_agree(job_env, name)


def test_representative_names_exist():
    known = set(all_queries())
    missing = [name for name in REPRESENTATIVE if name not in known]
    assert not missing, missing


def test_full_matrix_is_covered():
    assert len(REPRESENTATIVE) + len(SLOW) == len(all_queries()) == 113


def test_undocumented_errors_fail_loudly(job_env, monkeypatch):
    """A programming error in a strategy must not look infeasible."""
    runner = job_env.runner

    def explode(plan, split_index, ctx=None):
        raise TypeError("programming error")

    monkeypatch.setattr(runner._cooperative, "run_split", explode)
    with pytest.raises(TypeError):
        assert_all_strategies_agree(job_env, "1a")
