"""Tests for column families and shared-state snapshots."""

import pytest

from repro.errors import LSMError
from repro.lsm.snapshot import SharedState


class TestColumnFamilies:
    def test_default_family_exists(self, kv_db):
        assert "default" in kv_db
        assert kv_db.column_family("default") is not None

    def test_create_and_use(self, kv_db):
        cf = kv_db.create_column_family("users")
        cf.put(b"u1", b"alice")
        assert cf.get(b"u1") == b"alice"

    def test_families_are_isolated(self, kv_db):
        a = kv_db.create_column_family("a")
        b = kv_db.create_column_family("b")
        a.put(b"k", b"from-a")
        assert b.get(b"k") is None

    def test_duplicate_name_rejected(self, kv_db):
        kv_db.create_column_family("x")
        with pytest.raises(LSMError):
            kv_db.create_column_family("x")

    def test_unknown_family_rejected(self, kv_db):
        with pytest.raises(LSMError):
            kv_db.column_family("ghost")

    def test_drop_family(self, kv_db):
        kv_db.create_column_family("tmp")
        kv_db.drop_column_family("tmp")
        assert "tmp" not in kv_db

    def test_default_family_cannot_be_dropped(self, kv_db):
        with pytest.raises(LSMError):
            kv_db.drop_column_family("default")

    def test_families_share_flash(self, kv_db, flash):
        a = kv_db.create_column_family("a")
        for i in range(200):
            a.put(f"{i:05d}".encode(), b"x" * 40)
        kv_db.flush_all()
        assert flash.used_pages > 0

    def test_flush_all(self, kv_db):
        cf = kv_db.create_column_family("t")
        cf.put(b"k", b"v")
        kv_db.flush_all()
        assert len(cf.tree.memtable) == 0
        assert cf.get(b"k") == b"v"


class TestSharedState:
    def test_captures_memtable_and_placements(self, kv_db):
        cf = kv_db.create_column_family("t")
        for i in range(300):
            cf.put(f"{i:05d}".encode(), b"x" * 30)
        cf.tree.freeze_and_flush()
        cf.put(b"zzz-unflushed", b"pending")
        state = SharedState.capture(kv_db, ["t"])
        snapshot = state.family("t")
        assert snapshot.memtable_count == 1
        assert dict(snapshot.memtable_entries)[b"zzz-unflushed"] == b"pending"
        assert snapshot.sst_count > 0

    def test_unknown_family_raises(self, kv_db):
        state = SharedState.capture(kv_db, [])
        with pytest.raises(KeyError):
            state.family("ghost")

    def test_payload_bytes_grow_with_state(self, kv_db):
        cf = kv_db.create_column_family("t")
        empty = SharedState.capture(kv_db, ["t"])
        for i in range(50):
            cf.put(f"{i:04d}".encode(), b"x" * 50)
        loaded = SharedState.capture(kv_db, ["t"])
        assert loaded.payload_bytes > empty.payload_bytes

    def test_snapshot_is_immutable_view(self, kv_db):
        cf = kv_db.create_column_family("t")
        cf.put(b"k", b"v1")
        state = SharedState.capture(kv_db, ["t"])
        cf.put(b"k", b"v2")
        assert dict(state.family("t").memtable_entries)[b"k"] == b"v1"
