"""Integration tests: JOB queries end-to-end over every stack.

The decisive invariant: all execution strategies return identical rows.
A sample of queries spanning small (4-5 tables) to large (14+ tables)
join graphs runs against the session JOB environment.
"""

import pytest

from repro.core.strategy import ExecutionStrategy
from repro.engine.stacks import Stack
from repro.workloads.job_queries import query

# A cross-section: family sizes 4..14 tables, indexed and not.
SAMPLE_QUERIES = ["1a", "2d", "3b", "6b", "8c", "11a", "17b", "32a"]


@pytest.mark.parametrize("name", SAMPLE_QUERIES)
def test_all_strategies_agree(job_env, name):
    sql = query(name)
    plan = job_env.runner.plan(sql)
    native = job_env.run(plan, Stack.NATIVE)
    baseline = native.result.sorted_rows()

    blk = job_env.run(plan, Stack.BLK)
    assert blk.result.sorted_rows() == baseline

    for k in range(plan.table_count):
        hybrid = job_env.run(plan, Stack.HYBRID, split_index=k)
        assert hybrid.result.sorted_rows() == baseline, f"H{k}"

    ndp = job_env.run(plan, Stack.NDP)
    assert ndp.result.sorted_rows() == baseline


@pytest.mark.parametrize("name", SAMPLE_QUERIES)
def test_simulated_times_positive_and_ordered(job_env, name):
    sql = query(name)
    blk = job_env.run(sql, Stack.BLK)
    native = job_env.run(sql, Stack.NATIVE)
    assert 0 < native.total_time <= blk.total_time


def test_planner_decides_every_sample(job_env):
    for name in SAMPLE_QUERIES:
        decision = job_env.decide(query(name))
        assert decision.strategy in ExecutionStrategy
        if decision.strategy is ExecutionStrategy.HYBRID:
            plan = job_env.runner.plan(query(name))
            assert 0 <= decision.split_index < plan.table_count


def test_planner_decision_is_runnable(job_env):
    for name in ("1a", "8c"):
        sql = query(name)
        decision = job_env.decide(sql)
        if decision.strategy is ExecutionStrategy.HOST_ONLY:
            report = job_env.run(sql, Stack.NATIVE)
        elif decision.strategy is ExecutionStrategy.FULL_NDP:
            report = job_env.run(sql, Stack.NDP)
        else:
            report = job_env.run(sql, Stack.HYBRID,
                                 split_index=decision.split_index)
        assert report.total_time > 0


def test_paper_headline_shape_q8c(job_env):
    """Fig 2 / Fig 16 shape: some hybrid split beats host-only AND full
    NDP, and full NDP is worse than host-only for the compute-heavy Q8c."""
    sql = query("8c")
    plan = job_env.runner.plan(sql)
    host = job_env.run(plan, Stack.BLK).total_time
    full = job_env.run(plan, Stack.NDP).total_time
    hybrids = [job_env.run(plan, Stack.HYBRID, split_index=k).total_time
               for k in range(plan.table_count)]
    assert min(hybrids) < host
    assert full > host
    assert min(hybrids) < full


def test_mid_split_beats_extremes_q8c(job_env):
    """The optimal split for Q8c is an interior point (paper: H3)."""
    sql = query("8c")
    plan = job_env.runner.plan(sql)
    times = [job_env.run(plan, Stack.HYBRID, split_index=k).total_time
             for k in range(plan.table_count)]
    best = times.index(min(times))
    assert 0 < best < plan.table_count - 1


def test_ndp_on_par_for_favourable_query(job_env):
    """Fig 11B: Q17b full NDP is around the NATIVE baseline (<= ~1.6x)."""
    sql = query("17b")
    native = job_env.run(sql, Stack.NATIVE).total_time
    ndp = job_env.run(sql, Stack.NDP).total_time
    assert ndp <= 1.8 * native


def test_intermediate_rows_tracked(job_env):
    sql = query("17b")
    plan = job_env.runner.plan(sql)
    counts = []
    for k in range(plan.table_count - 1):
        report = job_env.run(plan, Stack.HYBRID, split_index=k)
        counts.append(report.intermediate_rows)
    assert any(count > 0 for count in counts)


def test_device_overload_forces_smaller_split(job_env):
    """Q29 joins 17 tables: beyond the 12-with-secondary cap, so the
    planner must choose a split that fits the device."""
    sql = query("29a")
    plan = job_env.runner.plan(sql)
    assert plan.table_count == 17
    decision = job_env.decide(plan)
    if decision.strategy is ExecutionStrategy.HYBRID:
        fragment = plan.prefix(decision.split_index)
        ndp = job_env.runner.ndp_engine
        assert ndp.can_offload(fragment)
