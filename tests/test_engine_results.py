"""Tests for QueryResult / ExecutionReport / TimelinePhase."""

import pytest

from repro.engine.results import (ExecutionReport, QueryResult,
                                  TimelinePhase)


class TestQueryResult:
    def test_len(self):
        result = QueryResult([{"a": 1}, {"a": 2}], ["a"])
        assert len(result) == 2

    def test_sorted_rows_canonical(self):
        rows = [{"a": 2, "b": "x"}, {"a": 1, "b": "y"}]
        result = QueryResult(rows, ["a", "b"])
        assert [r["a"] for r in result.sorted_rows()] == [1, 2]

    def test_sorted_rows_handles_none(self):
        rows = [{"a": None}, {"a": 1}, {"a": None}]
        result = QueryResult(rows, ["a"])
        ordered = result.sorted_rows()
        assert ordered[0]["a"] == 1          # non-null sorts first

    def test_sorted_rows_mixed_types(self):
        rows = [{"a": "text"}, {"a": 3}]
        QueryResult(rows, ["a"]).sorted_rows()   # must not raise

    def test_scalar(self):
        assert QueryResult([{"x": 42}], ["x"]).scalar() == 42

    def test_scalar_rejects_non_scalar(self):
        with pytest.raises(ValueError):
            QueryResult([{"x": 1}, {"x": 2}], ["x"]).scalar()
        with pytest.raises(ValueError):
            QueryResult([{"x": 1, "y": 2}], ["x", "y"]).scalar()


class TestTimelinePhase:
    def test_duration(self):
        phase = TimelinePhase("host", "compute", 1.0, 3.5)
        assert phase.duration == 2.5


class TestExecutionReport:
    def _report(self, **kwargs):
        defaults = dict(
            strategy="H2", total_time=10.0,
            result=QueryResult([{"a": 1}], ["a"]),
            setup_time=0.5, host_wait_initial=2.0, host_wait_other=0.5,
            transfer_time=1.0, host_processing_time=6.0)
        defaults.update(kwargs)
        return ExecutionReport(**defaults)

    def test_host_wait_total(self):
        assert self._report().host_wait_total == 2.5

    def test_stage_shares(self):
        shares = self._report().host_stage_shares()
        assert shares["ndp_setup"] == pytest.approx(5.0)
        assert shares["wait_initial"] == pytest.approx(20.0)
        assert shares["processing"] == pytest.approx(60.0)

    def test_stage_shares_zero_stages(self):
        report = self._report(setup_time=0.0, host_wait_initial=0.0,
                              host_wait_other=0.0, transfer_time=0.0,
                              host_processing_time=0.0)
        assert report.host_stage_shares() == {}

    def test_stage_shares_sum_to_100_with_overlap(self):
        # Regression: overlapping stages divided by total_time summed past
        # 100%; normalising over the stage sum keeps them at 100%.
        report = self._report(total_time=5.0)     # stages sum to 10.0
        shares = report.host_stage_shares()
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_stage_shares_include_device_stall(self):
        report = self._report(device_stall_time=10.0)  # half the stage sum
        shares = report.host_stage_shares()
        assert shares["device_stall"] == pytest.approx(50.0)

    def test_summary_text(self):
        text = self._report().summary()
        assert "H2" in text and "ms" in text

    def test_device_operation_shares_empty(self):
        shares = self._report().device_operation_shares()
        assert all(value == 0.0 for value in shares.values())

    def test_to_dict_is_json_serialisable(self):
        import json
        report = self._report()
        report.timeline.append(TimelinePhase("host", "compute", 0.0, 1.0))
        payload = report.to_dict(include_rows=True, include_timeline=True)
        text = json.dumps(payload)
        assert '"strategy": "H2"' in text
        assert payload["rows"] == [{"a": 1}]
        assert payload["timeline"][0]["actor"] == "host"

    def test_to_dict_excludes_heavy_fields_by_default(self):
        payload = self._report().to_dict()
        assert "rows" not in payload
        assert "timeline" not in payload
