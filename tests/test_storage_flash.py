"""Tests for the flash device model."""

import pytest

from repro.errors import StorageError
from repro.storage.flash import FlashDevice, FlashGeometry


class TestFlashGeometry:
    def test_defaults(self):
        geometry = FlashGeometry()
        assert geometry.page_size == 16 * 1024
        assert geometry.channels == 8

    def test_internal_bandwidth_is_channel_aggregate(self):
        geometry = FlashGeometry(channels=4, channel_read_bandwidth=100e6)
        assert geometry.internal_read_bandwidth == 400e6

    def test_invalid_geometry_rejected(self):
        with pytest.raises(StorageError):
            FlashGeometry(page_size=0)
        with pytest.raises(StorageError):
            FlashGeometry(channels=0)


class TestAllocation:
    def test_allocate_rounds_to_pages(self):
        flash = FlashDevice()
        extent = flash.allocate(1)
        assert extent.page_count == 1
        extent2 = flash.allocate(flash.geometry.page_size + 1)
        assert extent2.page_count == 2

    def test_extents_do_not_overlap(self):
        flash = FlashDevice()
        first = flash.allocate(100_000)
        second = flash.allocate(100_000)
        assert second.start_page == first.end_page

    def test_capacity_enforced(self):
        geometry = FlashGeometry()
        flash = FlashDevice(geometry=geometry,
                            capacity_bytes=4 * geometry.page_size)
        flash.allocate(3 * geometry.page_size)
        with pytest.raises(StorageError):
            flash.allocate(2 * geometry.page_size)

    def test_negative_bytes_rejected(self):
        with pytest.raises(StorageError):
            FlashDevice().allocate(-1)

    def test_placement_entry(self):
        flash = FlashDevice()
        extent = flash.allocate(50_000, owner="sst-1")
        placement = flash.placement_of(extent)
        assert placement["start_page"] == extent.start_page
        assert placement["nbytes"] == 50_000

    def test_free_is_idempotent(self):
        flash = FlashDevice()
        extent = flash.allocate(100)
        flash.free(extent)
        flash.free(extent)   # no error


class TestTiming:
    def test_zero_bytes_is_free(self):
        flash = FlashDevice()
        assert flash.internal_read_time(0) == 0.0
        assert flash.external_read_time(0) == 0.0
        assert flash.write_time(0) == 0.0

    def test_internal_faster_than_external_for_streams(self):
        flash = FlashDevice()
        nbytes = 64 * 1024 * 1024
        assert flash.internal_read_time(nbytes) < flash.external_read_time(
            nbytes)

    def test_read_time_monotonic_in_size(self):
        flash = FlashDevice()
        small = flash.internal_read_time(16 * 1024)
        large = flash.internal_read_time(16 * 1024 * 1024)
        assert large > small

    def test_single_page_pays_full_sense_latency(self):
        flash = FlashDevice()
        one_page = flash.geometry.page_size
        assert flash.external_read_time(one_page) >= (
            flash.geometry.page_read_latency)

    def test_write_slower_than_read(self):
        flash = FlashDevice()
        nbytes = 8 * 1024 * 1024
        assert flash.write_time(nbytes) > flash.internal_read_time(nbytes)

    def test_counters_track_pages(self):
        flash = FlashDevice()
        flash.internal_read_time(flash.geometry.page_size * 3)
        assert flash.counters.pages_read == 3

    def test_negative_read_rejected(self):
        with pytest.raises(StorageError):
            FlashDevice().internal_read_time(-1)
