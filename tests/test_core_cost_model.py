"""Tests for the cost model (eqs. 1-8)."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.hardware import HardwareModel
from repro.query.optimizer import build_plan
from repro.storage.machines import HOST_I5

from tests.conftest import MINI_JOIN_SQL


@pytest.fixture
def hardware(device):
    return HardwareModel.profile(device, HOST_I5)


@pytest.fixture
def cost_model(hardware):
    return CostModel(hardware)


@pytest.fixture
def plan(mini_catalog):
    return build_plan(MINI_JOIN_SQL, mini_catalog)


class TestComponents:
    def test_scan_cost_positive(self, cost_model, plan):
        for entry in plan.entries:
            assert cost_model.scan_cost(entry, on_device=False) > 0
            assert cost_model.scan_cost(entry, on_device=True) > 0

    def test_device_scan_cheaper_per_page(self, cost_model, plan):
        entry = plan.entry("mc")     # full scan entry
        host = cost_model.scan_cost(entry, on_device=False)
        dev = cost_model.scan_cost(entry, on_device=True)
        assert dev < host

    def test_scan_cpu_cost_uses_streaming_factor(self, cost_model, plan):
        entry = plan.entries[0]        # ct: a full scan -> FPGA units
        assert entry.index_column is None
        host = cost_model.cpu_cost(entry, on_device=False)
        dev = cost_model.cpu_cost(entry, on_device=True)
        assert dev == pytest.approx(
            host * cost_model.hardware.streaming_factor(True))

    def test_indexed_cpu_cost_uses_index_factor(self, cost_model, plan):
        entry = plan.entry("t")        # BNLJI through the primary key
        assert entry.index_column is not None
        host = cost_model.cpu_cost(entry, on_device=False)
        dev = cost_model.cpu_cost(entry, on_device=True)
        assert dev == pytest.approx(
            host * cost_model.hardware.index_factor(True))
        # The index path is slower than streaming but far better than
        # the raw CoreMark gap.
        gap = cost_model.hardware.compute_gap
        assert 1.0 < cost_model.hardware.index_factor(True) < gap

    def test_cpu_cost_grows_with_projection(self, cost_model, plan):
        import copy
        entry = copy.deepcopy(plan.entry("t"))
        small = cost_model.cpu_cost(entry, on_device=False)
        entry.projection_bytes *= 4
        assert cost_model.cpu_cost(entry, on_device=False) > small

    def test_transfer_ndp_ships_less(self, cost_model, plan):
        entry = plan.entry("mc")
        host = cost_model.transfer_cost(entry, on_device=False)
        dev = cost_model.transfer_cost(entry, on_device=True)
        assert dev < host     # early selection + projection on device


class TestPlanCost:
    def test_cumulative_is_monotone(self, cost_model, plan):
        for on_device in (False, True):
            costs = cost_model.plan_cost(plan, on_device).cumulative()
            assert all(b >= a for a, b in zip(costs, costs[1:]))
            assert len(costs) == plan.table_count

    def test_total_matches_last_node(self, cost_model, plan):
        plan_cost = cost_model.plan_cost(plan, on_device=False)
        assert plan_cost.c_total == plan_cost.cumulative()[-1]

    def test_node_lookup(self, cost_model, plan):
        plan_cost = cost_model.plan_cost(plan, on_device=False)
        assert plan_cost.node("mc").alias == "mc"

    def test_host_and_device_totals_exposed(self, cost_model, plan):
        assert cost_model.host_total(plan) > 0
        assert cost_model.device_total(plan) > 0

    def test_compute_heavy_plan_expensive_on_device(self, cost_model,
                                                    plan):
        # The mini plan evaluates many mc records; the 31x gap should
        # make the device's CPU share dominate for full offload.
        host_nodes = cost_model.plan_cost(plan, on_device=False).nodes
        dev_nodes = cost_model.plan_cost(plan, on_device=True).nodes
        host_cpu = sum(node.c_cpu for node in host_nodes)
        dev_cpu = sum(node.c_cpu for node in dev_nodes)
        assert dev_cpu > host_cpu


class TestUserParameters:
    def test_usr_rec_scales_cpu(self, hardware, plan):
        cheap = CostModel(hardware, usr_rec=0.1)
        pricey = CostModel(hardware, usr_rec=0.2)
        entry = plan.entries[0]
        assert pricey.cpu_cost(entry, False) == pytest.approx(
            2 * cheap.cpu_cost(entry, False))
