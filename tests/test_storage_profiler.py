"""Tests for the §3.1 hardware profiler."""

import pytest

from repro.errors import StorageError
from repro.storage.machines import HOST_I5
from repro.storage.profiler import HardwareProfiler


@pytest.fixture
def report(device):
    return HardwareProfiler(device, HOST_I5).run()


class TestProfiler:
    def test_compute_gap_matches_coremark(self, report):
        assert report.compute_gap == pytest.approx(92343.0 / 2964.0,
                                                   rel=1e-3)

    def test_memcpy_rates_recovered(self, report, device):
        assert report.device_memcpy_bandwidth == pytest.approx(
            device.spec.memcpy_bandwidth, rel=1e-6)
        assert report.host_memcpy_bandwidth == pytest.approx(
            HOST_I5.memcpy_bandwidth, rel=1e-6)

    def test_handshake_probe_recovers_link_parameters(self, report, device):
        assert report.pcie_bandwidth == pytest.approx(
            device.link.bandwidth, rel=0.02)
        assert report.pcie_command_latency == pytest.approx(
            device.link.command_latency, rel=0.05)

    def test_flash_page_rates_internal_beats_external(self, report):
        assert report.device_flash_page_rate > report.host_flash_page_rate

    def test_memory_sizes_copied(self, report, device):
        assert report.device_memory_bytes == device.spec.dram_bytes
        assert report.host_memory_bytes == HOST_I5.memory_bytes
        assert report.device_selection_buffer_bytes == (
            device.spec.selection_buffer_bytes)

    def test_probe_details_present(self, report):
        assert set(report.probes) >= {"memcpy_device", "memcpy_host",
                                      "flops_device", "flops_host",
                                      "flash_internal", "flash_external",
                                      "handshake"}

    def test_requires_device_and_host(self):
        with pytest.raises(StorageError):
            HardwareProfiler(None, HOST_I5)
