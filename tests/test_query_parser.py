"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.query.ast import (And, Between, ColumnRef, Comparison, InList,
                             IsNull, Like, Literal, Not, Or)
from repro.query.parser import parse_query, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a.b FROM t WHERE x = 1")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "keyword", "ident",
                         "keyword", "ident", "op", "number", "eof"]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("SELECT x FROM t WHERE a = 'it''s'")
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].text == "'it''s'"

    def test_unexpected_char_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select X from T")
        assert tokens[0].text == "select"
        assert tokens[2].text == "from"


class TestSelectList:
    def test_plain_columns(self):
        parsed = parse_query("SELECT t.a, t.b FROM t")
        assert len(parsed.select_items) == 2
        assert parsed.select_items[0].expr == ColumnRef("t", "a")

    def test_star(self):
        parsed = parse_query("SELECT * FROM t")
        assert parsed.select_items[0].expr == "*"

    def test_aggregates_with_alias(self):
        parsed = parse_query(
            "SELECT MIN(t.a) AS low, COUNT(*) AS n FROM t")
        first, second = parsed.select_items
        assert first.aggregate == "min" and first.alias == "low"
        assert second.aggregate == "count" and second.expr == "*"
        assert second.output_name == "n"

    def test_output_name_without_alias(self):
        parsed = parse_query("SELECT MAX(t.a) FROM t")
        assert parsed.select_items[0].output_name == "max(t.a)"


class TestFromClause:
    def test_alias_with_as(self):
        parsed = parse_query("SELECT t.a FROM title AS t")
        assert parsed.tables == [("title", "t")]

    def test_alias_without_as(self):
        parsed = parse_query("SELECT t.a FROM title t")
        assert parsed.tables == [("title", "t")]

    def test_no_alias_defaults_to_name(self):
        parsed = parse_query("SELECT title.a FROM title")
        assert parsed.tables == [("title", "title")]

    def test_multiple_tables(self):
        parsed = parse_query("SELECT a.x FROM t1 AS a, t2 AS b, t3 AS c")
        assert [alias for _, alias in parsed.tables] == ["a", "b", "c"]


class TestPredicates:
    def _where(self, condition):
        return parse_query(f"SELECT t.a FROM t WHERE {condition}").where

    def test_comparisons(self):
        for op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            expr = self._where(f"t.a {op} 5")
            assert isinstance(expr, Comparison)
            assert expr.op == op
            assert expr.right == Literal(5)

    def test_like(self):
        expr = self._where("t.a LIKE '%x%'")
        assert isinstance(expr, Like) and not expr.negated

    def test_not_like(self):
        expr = self._where("t.a NOT LIKE '%x%'")
        assert isinstance(expr, Like) and expr.negated

    def test_in_list(self):
        expr = self._where("t.a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert expr.values == (1, 2, 3)

    def test_not_in(self):
        expr = self._where("t.a NOT IN ('x', 'y')")
        assert isinstance(expr, InList) and expr.negated

    def test_between(self):
        expr = self._where("t.a BETWEEN 1 AND 10")
        assert isinstance(expr, Between)
        assert expr.low == Literal(1) and expr.high == Literal(10)

    def test_is_null_and_is_not_null(self):
        assert isinstance(self._where("t.a IS NULL"), IsNull)
        expr = self._where("t.a IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_and_flattens(self):
        expr = self._where("t.a = 1 AND t.b = 2 AND t.c = 3")
        assert isinstance(expr, And) and len(expr.items) == 3

    def test_or_precedence_lower_than_and(self):
        expr = self._where("t.a = 1 AND t.b = 2 OR t.c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.items[0], And)

    def test_parentheses_override(self):
        expr = self._where("t.a = 1 AND (t.b = 2 OR t.c = 3)")
        assert isinstance(expr, And)
        assert isinstance(expr.items[1], Or)

    def test_not_expression(self):
        assert isinstance(self._where("NOT t.a = 1"), Not)

    def test_join_condition(self):
        expr = self._where("t.a = s.b")
        assert expr.left == ColumnRef("t", "a")
        assert expr.right == ColumnRef("s", "b")

    def test_negative_numbers(self):
        expr = self._where("t.a > -5")
        assert expr.right == Literal(-5)

    def test_float_literal(self):
        expr = self._where("t.a > 2.5")
        assert expr.right == Literal(2.5)


class TestClauses:
    def test_group_by(self):
        parsed = parse_query(
            "SELECT t.a, COUNT(*) FROM t GROUP BY t.a, t.b")
        assert [c.column for c in parsed.group_by] == ["a", "b"]

    def test_limit(self):
        assert parse_query("SELECT t.a FROM t LIMIT 7").limit == 7

    def test_trailing_semicolon_ok(self):
        parse_query("SELECT t.a FROM t;")

    def test_garbage_after_query_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t nonsense extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a WHERE t.a = 1")


class TestParserEdgeCases:
    """Corners the random workload generator can emit (or nearly emit):
    IN lists, BETWEEN, escaped strings, redundant parentheses — every
    malformed variant must raise :class:`ParseError`, never a bare
    traceback."""

    def test_in_list_single_value(self):
        expr = parse_query("SELECT t.a FROM t WHERE t.x IN ('only')").where
        assert expr == InList(ColumnRef("t", "x"), ("only",))

    def test_in_list_mixed_literals(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x IN (1, 2.5, 'three')").where
        assert expr.values == (1, 2.5, "three")

    def test_empty_in_list_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x IN ()")

    def test_in_list_trailing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x IN ('a',)")

    def test_in_list_unclosed_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x IN ('a', 'b'")

    def test_between_negative_bounds(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x BETWEEN -5 AND -1").where
        assert expr == Between(ColumnRef("t", "x"),
                               Literal(-5), Literal(-1))

    def test_between_missing_and_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x BETWEEN 1 2")

    def test_between_missing_high_bound_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x BETWEEN 1 AND")

    def test_doubled_quote_decodes_to_one(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x = 'it''s'").where
        assert expr.right == Literal("it's")

    def test_backslash_escaped_quote(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x = 'it\\'s'").where
        assert expr.right == Literal("it's")

    def test_escaped_backslash_then_quote(self):
        # '\\' is one literal backslash; the following '' is one quote —
        # the old chained-replace decoder collapsed these wrongly.
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x = 'a\\\\''b'").where
        assert expr.right == Literal("a\\'b")

    def test_trailing_escaped_backslash(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE t.x = 'a\\\\'").where
        assert expr.right == Literal("a\\")

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.x = 'oops")

    def test_redundant_parentheses_collapse(self):
        plain = parse_query("SELECT t.a FROM t WHERE t.x = 1").where
        wrapped = parse_query(
            "SELECT t.a FROM t WHERE ((((t.x = 1))))").where
        assert wrapped == plain

    def test_parenthesized_conjunction_each_side(self):
        expr = parse_query(
            "SELECT t.a FROM t WHERE (t.x = 1) AND (t.y = 2)").where
        assert isinstance(expr, And)
        assert len(expr.items) == 2

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE ((t.x = 1)")

    def test_empty_parentheses_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE ()")

    def test_limit_float_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t LIMIT 1.5")

    def test_limit_negative_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t LIMIT -3")

    def test_limit_non_number_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t LIMIT many")

    def test_every_parse_error_carries_reproerror_lineage(self):
        from repro.errors import ReproError
        for bad in ["SELECT t.a FROM t WHERE t.x IN ()",
                    "SELECT t.a FROM t WHERE t.x BETWEEN 1",
                    "SELECT t.a FROM t WHERE t.x = 'oops",
                    "SELECT t.a FROM t LIMIT 1.5"]:
            with pytest.raises(ReproError):
                parse_query(bad)
