"""Additional fast unit tests: join ordering internals, machine spec
validation, parser error paths, iterator merging."""

import pytest

from repro.errors import ParseError, StorageError
from repro.lsm.iterator import live_entries, merge_sources
from repro.lsm.memtable import TOMBSTONE
from repro.query.join_order import (join_selectivity, order_tables,
                                    qualify_row)
from repro.query.logical import analyze
from repro.query.parser import parse_query
from repro.storage.machines import DeviceSpec, HostSpec


class TestJoinOrderInternals:
    def _spec(self, sql, catalog):
        return analyze(parse_query(sql), catalog, sql=sql)

    def test_qualify_row(self):
        assert qualify_row("t", {"a": 1}) == {"t.a": 1}

    def test_join_selectivity_uses_max_ndv(self, mini_catalog):
        spec = self._spec(
            "SELECT t.id FROM title AS t, movie_companies AS mc "
            "WHERE t.id = mc.movie_id", mini_catalog)
        sel = join_selectivity(spec, mini_catalog, spec.join_edges[0])
        # title.id has ~400 distinct values in the fixture.
        assert 0 < sel <= 1 / 100

    def test_cartesian_fallback(self, mini_catalog):
        # No join edge at all: ordering must still produce all tables.
        spec = self._spec(
            "SELECT t.id FROM title AS t, company_type AS ct "
            "WHERE t.kind_id = 1 AND ct.kind = 'kind1'", mini_catalog)
        order, _base, cumulative = order_tables(spec, mini_catalog)
        assert set(order) == {"t", "ct"}
        assert len(cumulative) == 2

    def test_single_table_order(self, mini_catalog):
        spec = self._spec("SELECT t.id FROM title AS t", mini_catalog)
        order, base, cumulative = order_tables(spec, mini_catalog)
        assert order == ["t"]
        assert cumulative == [base["t"]]


class TestMachineSpecValidation:
    def test_host_spec_rejects_nonpositive(self):
        with pytest.raises(StorageError):
            HostSpec(cores=0)
        with pytest.raises(StorageError):
            HostSpec(coremark=0)

    def test_device_spec_needs_relay_core(self):
        with pytest.raises(StorageError):
            DeviceSpec(cores=1, ndp_cores=1)

    def test_device_spec_rejects_nonpositive(self):
        with pytest.raises(StorageError):
            DeviceSpec(coremark=0)

    def test_eval_rates_positive(self):
        assert HostSpec().eval_ops_per_second > 0
        assert DeviceSpec().eval_ops_per_second > 0


class TestParserErrorPaths:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",                       # empty select list
        "SELECT t.a FROM",                     # missing table
        "SELECT t.a FROM t WHERE",             # dangling where
        "SELECT t.a FROM t WHERE t.a =",       # dangling comparison
        "SELECT t.a FROM t WHERE t.a IN ()",   # empty IN list
        "SELECT t.a FROM t WHERE BETWEEN 1 AND 2",
        "SELECT MIN(t.a FROM t",               # unclosed paren
        "SELECT t.a FROM t LIMIT x",           # non-numeric limit
        "SELECT t.a FROM a.b",                 # qualified table name
    ])
    def test_rejected(self, sql):
        with pytest.raises(ParseError):
            parse_query(sql)

    def test_not_without_predicate_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT t.a FROM t WHERE t.a NOT = 1")


class TestMergeSources:
    def test_precedence_shadows_older(self):
        newer = [(b"a", b"new"), (b"b", b"1")]
        older = [(b"a", b"old"), (b"c", b"2")]
        merged = dict(merge_sources([iter(newer), iter(older)]))
        assert merged == {b"a": b"new", b"b": b"1", b"c": b"2"}

    def test_live_entries_drops_tombstones(self):
        stream = [(b"a", TOMBSTONE), (b"b", b"v")]
        assert list(live_entries(iter(stream))) == [(b"b", b"v")]

    def test_tombstone_shadows_older_value(self):
        newer = [(b"a", TOMBSTONE)]
        older = [(b"a", b"resurrected?")]
        merged = list(live_entries(merge_sources(
            [iter(newer), iter(older)])))
        assert merged == []

    def test_empty_sources(self):
        assert list(merge_sources([])) == []
        assert list(merge_sources([iter([]), iter([])])) == []

    def test_three_way_order(self):
        a = [(b"1", b"a"), (b"4", b"a")]
        b = [(b"2", b"b")]
        c = [(b"3", b"c"), (b"5", b"c")]
        keys = [k for k, _ in merge_sources([iter(a), iter(b), iter(c)])]
        assert keys == [b"1", b"2", b"3", b"4", b"5"]
