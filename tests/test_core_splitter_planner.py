"""Tests for split-point calculation (eqs. 9-12) and the hybrid planner."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.hardware import HardwareModel
from repro.core.planner import HybridPlanner
from repro.core.splitter import SplitPlanner
from repro.core.strategy import ExecutionStrategy
from repro.errors import PlanError
from repro.query.optimizer import build_plan
from repro.storage.machines import HOST_I5

from tests.conftest import MINI_JOIN_SQL


@pytest.fixture
def hardware(device):
    return HardwareModel.profile(device, HOST_I5)


@pytest.fixture
def cost_model(hardware):
    return CostModel(hardware)


@pytest.fixture
def splitter(hardware, cost_model):
    return SplitPlanner(hardware, cost_model, min_transfer_bytes=1)


@pytest.fixture
def planner(mini_catalog, device, hardware, cost_model, splitter):
    return HybridPlanner(mini_catalog, device, hardware,
                         cost_model=cost_model, split_planner=splitter)


class TestTargetCost:
    def test_split_cpu_reflects_offload_path_rate(self, splitter,
                                                  hardware):
        # Offloaded fragments are seek/join bound: eq. (9) uses the
        # device's DRAM-bound rate, not the 31x CoreMark rate.
        assert splitter.split_cpu() == pytest.approx(
            100.0 * hardware.eval_ndp_index / hardware.eval_host)

    def test_split_mem_eq10_eq11(self, splitter, hardware):
        n = 5
        expected_dev = n * hardware.hw_mss + (n - 1) * hardware.hw_msj
        assert splitter.split_mem(n) == pytest.approx(
            100.0 * expected_dev / hardware.hw_msh)

    def test_split_mem_grows_with_tables(self, splitter):
        assert splitter.split_mem(10) > splitter.split_mem(3)

    def test_c_target_eq12(self, splitter):
        c_total = 1000.0
        expected = c_total * (splitter.split_cpu()
                              + splitter.split_mem(4)) / 200.0
        assert splitter.c_target(c_total, 4) == pytest.approx(expected)

    def test_c_target_is_minor_share(self, splitter):
        # COSMOS+ is the weaker partner: the device should carry less
        # than half of the total cost.
        assert splitter.c_target(1000.0, 5) < 500.0


class TestSplitChoice:
    def test_choice_minimizes_distance(self, splitter, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        choice = splitter.choose_split(plan)
        distances = [abs(cost - choice.c_target)
                     for cost in choice.cumulative_costs]
        assert choice.distance == min(distances)
        assert choice.cumulative_costs[choice.split_index] == (
            pytest.approx(choice.c_target + choice.distance)
        ) or choice.cumulative_costs[choice.split_index] == (
            pytest.approx(choice.c_target - choice.distance))

    def test_single_table_rejected(self, splitter, mini_catalog):
        plan = build_plan("SELECT t.title FROM title AS t", mini_catalog)
        with pytest.raises(PlanError):
            splitter.choose_split(plan)

    def test_choice_name(self, splitter, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        choice = splitter.choose_split(plan)
        assert choice.name == f"H{choice.split_index}"


class TestPreconditions:
    def test_all_pass_for_join_query(self, splitter, mini_catalog, device):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        checks = splitter.check_preconditions(plan, device)
        assert all(checks.values())

    def test_single_table_fails_multi_table(self, splitter, mini_catalog,
                                            device):
        plan = build_plan("SELECT t.title FROM title AS t", mini_catalog)
        checks = splitter.check_preconditions(plan, device)
        assert checks["multi_table"] is False

    def test_ndp_mode_required(self, splitter, mini_catalog, device):
        device.ndp_mode = False
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        checks = splitter.check_preconditions(plan, device)
        assert checks["ndp_mode"] is False


class TestPlannerDecision:
    def test_decision_structure(self, planner):
        decision = planner.decide(MINI_JOIN_SQL)
        assert decision.strategy in ExecutionStrategy
        assert decision.c_total_host > 0
        assert decision.c_total_device > 0
        assert decision.estimated_costs
        assert decision.summary()

    def test_hybrid_decision_has_split(self, planner):
        decision = planner.decide(MINI_JOIN_SQL)
        if decision.strategy is ExecutionStrategy.HYBRID:
            assert decision.split_index is not None
            assert decision.strategy_name.startswith("H")

    def test_single_table_falls_back_to_host(self, planner):
        decision = planner.decide("SELECT t.title FROM title AS t")
        assert decision.strategy is ExecutionStrategy.HOST_ONLY
        assert "preconditions" in decision.reason

    def test_ndp_mode_off_forces_host(self, planner, device):
        device.ndp_mode = False
        decision = planner.decide(MINI_JOIN_SQL)
        assert decision.strategy is ExecutionStrategy.HOST_ONLY
        device.ndp_mode = True

    def test_winner_has_lowest_estimate(self, planner):
        decision = planner.decide(MINI_JOIN_SQL)
        winner_cost = decision.estimated_costs[
            decision.strategy_name if decision.strategy
            is not ExecutionStrategy.HYBRID
            else f"H{decision.split_index}"]
        assert winner_cost == min(decision.estimated_costs.values())

    def test_cumulative_curve_exported(self, planner):
        decision = planner.decide(MINI_JOIN_SQL)
        if decision.strategy is not ExecutionStrategy.HOST_ONLY or (
                all(decision.preconditions.values())):
            assert len(decision.cumulative_costs) == 3
