"""Property tests for the random SQL workload generator.

Two contracts pinned with Hypothesis over the generator's own seed
space:

* parse → render → parse is a fixpoint: the AST survives a round trip
  through the canonical renderer, and rendering is idempotent.
* every generated query plans without error and the hybrid planner
  decides on it — under both the host-only and hybrid regimes.

Plus the seeding contract the replay tooling depends on: query ``i`` of
seed ``s`` is a pure function of ``(s, i)``, independent of corpus size.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ExecutionStrategy
from repro.query.parser import parse_query
from repro.query.render import render_query
from repro.workloads.imdb_schema import JOB_TABLE_NAMES
from repro.workloads.sqlgen import (FK_EDGES, RandomSqlGenerator,
                                    SqlGenConfig, TABLE_ALIASES,
                                    generate_corpus)

#: Hypothesis draws (seed, index) pairs; each resolves to one generated
#: query, so shrinking walks back to the smallest failing pair.
_SEEDS = st.integers(min_value=0, max_value=10_000)
_INDEXES = st.integers(min_value=0, max_value=500)

_FAST = settings(max_examples=60, deadline=None)
_WITH_ENV = settings(max_examples=25, deadline=None,
                     suppress_health_check=[
                         HealthCheck.function_scoped_fixture])


@given(seed=_SEEDS, index=_INDEXES)
@_FAST
def test_parse_render_parse_is_fixpoint(seed, index):
    query = RandomSqlGenerator(seed=seed).generate_one(index)
    parsed = parse_query(query.sql)
    rendered = render_query(parsed)
    assert parse_query(rendered) == parsed
    # Rendering the re-parsed AST is byte-stable (idempotence).
    assert render_query(parse_query(rendered)) == rendered


@given(seed=_SEEDS, index=_INDEXES)
@_FAST
def test_generated_query_is_deterministic_and_well_formed(seed, index):
    generator = RandomSqlGenerator(seed=seed)
    query = generator.generate_one(index)
    assert query.sql == RandomSqlGenerator(seed=seed).generate_one(index).sql
    assert query.name == f"gen{seed}-{index}"
    # Joined tables are unique, known, and FK-connected.
    assert len(set(query.tables)) == len(query.tables)
    assert set(query.tables) <= set(JOB_TABLE_NAMES)


@given(seed=st.integers(min_value=0, max_value=200),
       index=st.integers(min_value=0, max_value=100))
@_WITH_ENV
def test_generated_query_plans_and_decides(job_env, seed, index):
    query = RandomSqlGenerator(seed=seed).generate_one(index)
    plan = job_env.runner.plan(query.sql)
    assert plan.table_count == len(query.tables)
    decision = job_env.decide(query.sql)
    assert decision.strategy in (ExecutionStrategy.HOST_ONLY,
                                 ExecutionStrategy.HYBRID,
                                 ExecutionStrategy.FULL_NDP)


def test_corpus_is_prefix_stable():
    long = generate_corpus(seed=7, count=40)
    short = generate_corpus(seed=7, count=10)
    assert [q.sql for q in short] == [q.sql for q in long[:10]]


def test_different_seeds_differ():
    a = [q.sql for q in generate_corpus(seed=1, count=10)]
    b = [q.sql for q in generate_corpus(seed=2, count=10)]
    assert a != b


def test_table_metadata_is_consistent():
    assert set(TABLE_ALIASES) == set(JOB_TABLE_NAMES)
    assert len(set(TABLE_ALIASES.values())) == len(TABLE_ALIASES)
    for edge in FK_EDGES:
        assert edge.child in TABLE_ALIASES
        assert edge.parent in TABLE_ALIASES


def test_config_validation():
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        SqlGenConfig(min_tables=5, max_tables=2)
    with pytest.raises(ReproError):
        SqlGenConfig(min_predicates=9, max_predicates=1)
    with pytest.raises(ReproError):
        SqlGenConfig(max_tables=99)


def test_generated_queries_avoid_limit_and_star():
    # LIMIT is order-dependent under scatter-gather and star only adds
    # width: the generator must emit neither (documented contract).
    for query in generate_corpus(seed=3, count=30):
        assert "LIMIT" not in query.sql
        assert "SELECT *" not in query.sql
