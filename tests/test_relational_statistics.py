"""Tests for statistics: reservoir sampling, histograms, selectivity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.statistics import Histogram, TableStatistics


def load_stats(values, column="v", sample_size=256):
    stats = TableStatistics("t", sample_size=sample_size, seed=1)
    for value in values:
        stats.observe_row({column: value})
    return stats


class TestReservoir:
    def test_sample_bounded(self):
        stats = load_stats(range(10_000), sample_size=64)
        assert len(stats.sample) == 64
        assert stats.row_count == 10_000

    def test_small_table_fully_sampled(self):
        stats = load_stats(range(10), sample_size=64)
        assert len(stats.sample) == 10

    def test_sample_is_representative(self):
        stats = load_stats(range(10_000), sample_size=256)
        mean = sum(row["v"] for row in stats.sample) / len(stats.sample)
        assert 3000 < mean < 7000

    def test_invalid_sample_size(self):
        with pytest.raises(SchemaError):
            TableStatistics("t", sample_size=0)


class TestHistogram:
    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Histogram([])

    def test_full_range_selectivity_is_one(self):
        histogram = Histogram(list(range(100)))
        assert histogram.selectivity() == pytest.approx(1.0)

    def test_half_range(self):
        histogram = Histogram(list(range(100)), buckets=16)
        sel = histogram.selectivity(lo=0, hi=49)
        assert 0.4 <= sel <= 0.6

    def test_out_of_range_is_zero(self):
        histogram = Histogram(list(range(100)))
        assert histogram.selectivity(lo=500, hi=600) == 0.0

    def test_equi_depth_handles_skew(self):
        # 90% of values are 0; a uniform min/max interpolation would say
        # [0, 0] covers ~0%, the equi-depth histogram says ~90%.
        values = [0] * 900 + list(range(1, 101))
        histogram = Histogram(values, buckets=16)
        assert histogram.selectivity(lo=0, hi=0) > 0.7

    def test_single_value(self):
        histogram = Histogram([5, 5, 5])
        assert histogram.selectivity(lo=5, hi=5) == pytest.approx(1.0)
        assert histogram.selectivity(lo=6, hi=9) == 0.0

    def test_bucket_count_bounded(self):
        assert Histogram([1, 2, 3], buckets=16).bucket_count <= 3

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=300),
           st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_property_close_to_truth(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        histogram = Histogram(values)
        truth = sum(1 for v in values if lo <= v <= hi) / len(values)
        estimate = histogram.selectivity(lo=lo, hi=hi)
        assert abs(estimate - truth) <= 0.35   # coarse but sane

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_in_range(self, values):
        histogram = Histogram(values)
        narrow = histogram.selectivity(lo=25, hi=50)
        wide = histogram.selectivity(lo=0, hi=75)
        assert wide >= narrow - 1e-9


class TestTableSelectivity:
    def test_range_uses_histogram_for_skew(self):
        stats = load_stats([0] * 900 + list(range(1, 101)))
        assert stats.range_selectivity("v", lo=0, hi=0) > 0.5

    def test_range_fallback_for_strings(self):
        stats = load_stats(["a", "b", "c"])
        assert 0.0 < stats.range_selectivity("v", lo=None, hi=None) <= 1.0

    def test_histogram_none_for_non_numeric(self):
        stats = load_stats(["x", "y"])
        assert stats.histogram("v") is None

    def test_predicate_selectivity_smoothed(self):
        stats = load_stats(range(100))
        never = stats.selectivity(lambda row: False)
        always = stats.selectivity(lambda row: True)
        assert 0.0 < never < 0.05
        assert 0.95 < always < 1.0

    def test_selectivity_tolerates_bad_predicates(self):
        stats = load_stats(range(10))
        sel = stats.selectivity(lambda row: row["missing"] > 1)
        assert 0.0 < sel < 0.2

    def test_empty_sample_default(self):
        stats = TableStatistics("t")
        assert stats.selectivity(lambda row: True) == 0.1
