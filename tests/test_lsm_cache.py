"""Tests for the block cache."""

from repro.lsm.cache import BlockCache


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(1000)
        assert cache.access("a", 100) is False
        assert cache.access("a", 100) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = BlockCache(250)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("c", 100)       # evicts a
        assert cache.access("a", 100) is False
        assert cache.access("c", 100) is True

    def test_access_refreshes_recency(self):
        cache = BlockCache(250)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("a", 100)       # refresh a
        cache.access("c", 100)       # evicts b, not a
        assert cache.access("a", 100) is True
        assert cache.access("b", 100) is False

    def test_oversized_entry_not_cached(self):
        cache = BlockCache(100)
        assert cache.access("big", 1000) is False
        assert cache.access("big", 1000) is False
        assert len(cache) == 0

    def test_zero_capacity_never_hits(self):
        cache = BlockCache(0)
        assert cache.access("a", 1) is False
        assert cache.access("a", 1) is False

    def test_used_bytes(self):
        cache = BlockCache(1000)
        cache.access("a", 300)
        cache.access("b", 200)
        assert cache.used_bytes == 500

    def test_hit_rate(self):
        cache = BlockCache(1000)
        assert cache.hit_rate() == 0.0
        cache.access("a", 1)
        cache.access("a", 1)
        assert cache.hit_rate() == 0.5
