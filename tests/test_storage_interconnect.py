"""Tests for the PCIe link model."""

import pytest

from repro.errors import StorageError
from repro.storage.interconnect import PCIeLink


class TestBandwidth:
    def test_paper_link_is_pcie2_x8(self):
        link = PCIeLink(version=2, lanes=8)
        # 5 GT/s * 8b/10b * 8 lanes / 8 bits = 4 GB/s raw payload.
        assert link.raw_bandwidth == pytest.approx(4.0e9)
        assert link.bandwidth == pytest.approx(3.2e9)

    def test_gen3_uses_128b130b(self):
        link = PCIeLink(version=3, lanes=1)
        assert link.raw_bandwidth == pytest.approx(8e9 * 128 / 130 / 8)

    def test_bandwidth_scales_with_lanes(self):
        narrow = PCIeLink(version=2, lanes=4)
        wide = PCIeLink(version=2, lanes=8)
        assert wide.bandwidth == pytest.approx(2 * narrow.bandwidth)

    def test_unknown_version_rejected(self):
        with pytest.raises(StorageError):
            PCIeLink(version=7)

    def test_bad_lane_count_rejected(self):
        with pytest.raises(StorageError):
            PCIeLink(version=2, lanes=3)


class TestTransferTime:
    def test_includes_command_latency(self):
        link = PCIeLink(version=2, lanes=8, command_latency=1e-5)
        assert link.transfer_time(0) == pytest.approx(1e-5)

    def test_linear_in_bytes(self):
        link = PCIeLink(version=2, lanes=8, command_latency=0.0)
        one = link.transfer_time(1_000_000)
        two = link.transfer_time(2_000_000)
        assert two == pytest.approx(2 * one)

    def test_multiple_commands_add_latency(self):
        link = PCIeLink(version=2, lanes=8, command_latency=1e-5)
        assert link.transfer_time(0, commands=5) == pytest.approx(5e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(StorageError):
            PCIeLink().transfer_time(-1)


class TestCostFactor:
    def test_reference_link_costs_one(self):
        assert PCIeLink(version=3, lanes=16).cost_factor() == pytest.approx(
            1.0)

    def test_slower_links_cost_more(self):
        assert PCIeLink(version=2, lanes=8).cost_factor() > 1.0

    def test_faster_links_cost_less(self):
        assert PCIeLink(version=5, lanes=16).cost_factor() < 1.0
