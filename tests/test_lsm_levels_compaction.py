"""Tests for the level structure and leveled compaction."""

import pytest

from repro.errors import LSMError
from repro.lsm.compaction import LeveledCompactor
from repro.lsm.levels import LevelStructure
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTableBuilder


def make_sst(keys_values, sst_id=0, level=1):
    builder = SSTableBuilder(block_size=256)
    for key, value in sorted(keys_values):
        builder.add(key, value)
    return builder.finish(sst_id=sst_id, level=level)


def range_sst(lo, hi, sst_id=0, value=b"v", prefix="k"):
    return make_sst([(f"{prefix}{i:05d}".encode(), value)
                     for i in range(lo, hi)], sst_id=sst_id)


class TestLevelStructure:
    def test_c1_allows_overlap(self):
        levels = LevelStructure()
        levels.add_to_level(1, range_sst(0, 10, 1))
        levels.add_to_level(1, range_sst(5, 15, 2))
        assert len(levels.level(1)) == 2
        levels.check_invariants()

    def test_deeper_levels_reject_overlap(self):
        levels = LevelStructure()
        levels.add_to_level(2, range_sst(0, 10, 1))
        with pytest.raises(LSMError):
            levels.add_to_level(2, range_sst(5, 15, 2))

    def test_deeper_levels_keep_sorted_order(self):
        levels = LevelStructure()
        levels.add_to_level(2, range_sst(20, 30, 1))
        levels.add_to_level(2, range_sst(0, 10, 2))
        mins = [sst.min_key for sst in levels.level(2)]
        assert mins == sorted(mins)

    def test_all_ssts_orders_c1_newest_first(self):
        levels = LevelStructure()
        older = range_sst(0, 10, 1)
        newer = range_sst(0, 10, 2)
        levels.add_to_level(1, older)
        levels.add_to_level(1, newer)
        assert levels.all_ssts()[0] is newer

    def test_candidates_for_key(self):
        levels = LevelStructure()
        levels.add_to_level(1, range_sst(0, 10, 1))
        levels.add_to_level(2, range_sst(0, 5, 2))
        levels.add_to_level(2, range_sst(5, 10, 3))
        candidates = levels.candidates_for_key(b"k00007")
        assert [sst.sst_id for sst in candidates] == [1, 3]

    def test_remove(self):
        levels = LevelStructure()
        sst = range_sst(0, 10, 1)
        levels.add_to_level(1, sst)
        levels.remove(sst)
        assert levels.sst_count() == 0
        with pytest.raises(LSMError):
            levels.remove(sst)

    def test_level_bounds_checked(self):
        levels = LevelStructure(max_levels=3)
        with pytest.raises(LSMError):
            levels.level(0)
        with pytest.raises(LSMError):
            levels.add_to_level(4, range_sst(0, 1, 1))


class TestCompaction:
    def _setup(self, base=1024):
        levels = LevelStructure()
        compactor = LeveledCompactor(levels, level_base_bytes=base,
                                     size_ratio=4,
                                     sst_target_bytes=base,
                                     block_size=256)
        return levels, compactor

    def test_compaction_moves_data_down(self):
        levels, compactor = self._setup(base=512)
        levels.add_to_level(1, range_sst(0, 100, 1))
        assert compactor.needs_compaction(1)
        compactor.maybe_compact()
        assert not compactor.needs_compaction(1)
        assert levels.level(2)
        levels.check_invariants()

    def test_newest_version_wins(self):
        levels, compactor = self._setup()
        levels.add_to_level(1, make_sst([(b"k1", b"old")], sst_id=1))
        levels.add_to_level(1, make_sst([(b"k1", b"new")], sst_id=2))
        new_ssts = compactor.compact_level(1)
        merged = dict(new_ssts[0].iter_all())
        assert merged[b"k1"] == b"new"

    def test_tombstones_dropped_at_bottom(self):
        levels, compactor = self._setup()
        levels.add_to_level(1, make_sst([(b"k1", TOMBSTONE),
                                         (b"k2", b"live")], sst_id=1))
        new_ssts = compactor.compact_level(1)
        merged = dict(new_ssts[0].iter_all())
        assert b"k1" not in merged
        assert compactor.stats.tombstones_purged == 1

    def test_tombstones_kept_when_deeper_data_exists(self):
        levels, compactor = self._setup()
        levels.add_to_level(3, make_sst([(b"k1", b"ancient")], sst_id=9))
        levels.add_to_level(1, make_sst([(b"k1", TOMBSTONE)], sst_id=1))
        new_ssts = compactor.compact_level(1)
        merged = dict(new_ssts[0].iter_all())
        assert merged[b"k1"] == TOMBSTONE

    def test_compaction_merges_with_overlap_in_target(self):
        levels, compactor = self._setup()
        levels.add_to_level(2, make_sst([(b"k1", b"old"), (b"k3", b"keep")],
                                        sst_id=9))
        levels.add_to_level(1, make_sst([(b"k1", b"new")], sst_id=1))
        compactor.compact_level(1)
        level2 = levels.level(2)
        merged = {}
        for sst in level2:
            merged.update(dict(sst.iter_all()))
        assert merged == {b"k1": b"new", b"k3": b"keep"}
        levels.check_invariants()

    def test_stats_track_bytes(self):
        levels, compactor = self._setup(base=512)
        levels.add_to_level(1, range_sst(0, 100, 1))
        compactor.maybe_compact()
        assert compactor.stats.compactions >= 1
        assert compactor.stats.bytes_read > 0
        assert compactor.stats.bytes_written > 0

    def test_level_targets_grow_by_ratio(self):
        _levels, compactor = self._setup(base=1000)
        assert compactor.level_target_bytes(2) == 4000
        assert compactor.level_target_bytes(3) == 16000
