"""Adaptive mid-query re-planning: feedback loop, EWMA, audits, caches.

Covers the docs/adaptivity.md contract end to end: revised plans return
row-identical results, the EWMA correction is deterministic and its
regret trend is monotone non-increasing, the versioned plan cache
invalidates on writes, and — the null-object guarantee — adaptivity
switched off is byte-invisible.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.adaptive import adaptive_matrix
from repro.core import (CardinalityFeedback, CostCorrection,
                        PlanningContext, ReplanPolicy)
from repro.engine import AdaptiveRunner, Stack, StackRunner
from repro.errors import ReproError
from repro.sched import WorkloadScheduler
from repro.workloads.job_queries import query
from repro.workloads.sqlgen import RandomSqlGenerator

#: Forces a revision at the first breaker whenever the estimate is off
#: at all — the regime the row-identity property must survive.
AGGRESSIVE = ReplanPolicy(error_threshold=1.01, min_batches=1,
                          max_replans=1)


class TestPlanningContextApi:
    def test_decide_rejects_removed_device_load_kwarg(self, job_env):
        with pytest.raises(ReproError,
                           match="no longer accepts device_load="):
            job_env.planner.decide(query("1a"), device_load=None)
        with pytest.raises(ReproError,
                           match="no longer accepts device_load="):
            job_env.decide(query("1a"), device_load=None)

    def test_context_must_be_a_planning_context(self, job_env):
        with pytest.raises(ReproError, match="PlanningContext"):
            job_env.planner.decide(query("1a"), context={"device_load": 1})

    def test_decision_carries_typed_estimates(self, job_env):
        decision = job_env.planner.decide(query("1a"))
        winner = decision.estimate_for()
        assert winner.strategy == decision.strategy_name
        assert winner.c_total == min(decision.estimated_costs.values())
        assert decision.estimate_for("host-only").split_index is None
        hybrid = [name for name in decision.estimated_costs
                  if name.startswith("H")]
        for name in hybrid:
            estimate = decision.estimate_for(name)
            assert estimate.intermediate_rows >= 1
            assert estimate.raw_rows >= 1
        with pytest.raises(ReproError, match="no estimate for"):
            decision.estimate_for("H99")

    def test_unbound_decision_cannot_revise(self):
        from repro.core.strategy import ExecutionStrategy, HybridDecision
        decision = HybridDecision(strategy=ExecutionStrategy.HOST_ONLY,
                                  c_total_host=1.0, c_total_device=2.0)
        feedback = CardinalityFeedback(observed_rows=10, estimated_rows=1,
                                       batches_observed=1, batches_total=1)
        with pytest.raises(ReproError, match="cannot be revised"):
            decision.revise(feedback)

    def test_correction_factor_reprices_decisions(self, job_env):
        plan = job_env.runner.plan(query("1a"))
        neutral = job_env.planner.decide(plan)
        skewed = job_env.planner.decide(
            plan, context=PlanningContext(factor_override=50.0))
        assert skewed.correction_factor == 50.0
        # A 50x intermediate-result prior must change at least one
        # candidate's price (the candidate set itself may shift too).
        common = (set(neutral.estimated_costs)
                  & set(skewed.estimated_costs))
        assert common
        assert any(skewed.estimated_costs[name]
                   != neutral.estimated_costs[name] for name in common)


class TestFeedbackMath:
    def test_error_is_symmetric_and_floored(self):
        low = CardinalityFeedback(observed_rows=10, estimated_rows=100,
                                  batches_observed=1, batches_total=4)
        high = CardinalityFeedback(observed_rows=100, estimated_rows=10,
                                   batches_observed=1, batches_total=4)
        assert low.error == pytest.approx(10.0)
        assert high.error == pytest.approx(10.0)
        empty = CardinalityFeedback(observed_rows=0, estimated_rows=0,
                                    batches_observed=1, batches_total=1)
        assert empty.error == 1.0

    def test_ratio_corrects_against_the_raw_estimate(self):
        # The plan ran under a corrected (wrong) estimate of 5000; the
        # raw statistics said 100 and 90 rows actually crossed.  The
        # revision must re-price with 0.9, not compound the stale 50x.
        feedback = CardinalityFeedback(observed_rows=90,
                                       estimated_rows=5000,
                                       batches_observed=2, batches_total=4,
                                       raw_rows=100)
        assert feedback.ratio == pytest.approx(0.9)
        assert feedback.error == pytest.approx(5000 / 90)

    def test_policy_validation(self):
        with pytest.raises(ReproError):
            ReplanPolicy(error_threshold=0.5)
        with pytest.raises(ReproError):
            ReplanPolicy(max_replans=-1)

    def test_correction_store(self):
        store = CostCorrection(alpha=0.5)
        assert store.factor("q") == 1.0
        assert store.observe("q", estimated_rows=100, observed_rows=400) \
            == pytest.approx(2.5)          # halfway from 1.0 to 4.0
        assert store.observe(None, 1, 100) == 1.0   # keyless no-op
        assert len(store) == 1
        store.prime("stale", 1e9)           # clamped to the band
        assert store.factor("stale") == pytest.approx(1024.0)
        assert list(store.snapshot()) == ["q", "stale"]
        with pytest.raises(ReproError):
            CostCorrection(alpha=0.0)


class TestAdaptiveExecution:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=4),
           index=st.integers(min_value=0, max_value=9))
    def test_replans_preserve_rows(self, job_env, seed, index):
        """Mid-flight re-plans return exactly the host-only rows."""
        sql = RandomSqlGenerator(seed=seed).generate_one(index).sql
        host = job_env.run(sql, Stack.NATIVE)
        runner = AdaptiveRunner(job_env, policy=AGGRESSIVE)
        report = runner.run(sql)
        assert (report.result.sorted_rows()
                == host.result.sorted_rows())
        assert report.adaptivity["enabled"] is True

    def test_ewma_runs_are_deterministic(self, job_env):
        def run_series():
            runner = AdaptiveRunner(job_env, policy=AGGRESSIVE)
            audits = [runner.run(query(name)).adaptivity
                      for name in ("1a", "8c", "1a", "8c")]
            return audits, runner.correction.snapshot()

        first_audits, first_factors = run_series()
        second_audits, second_factors = run_series()
        assert (json.dumps(first_audits, sort_keys=True)
                == json.dumps(second_audits, sort_keys=True))
        assert first_factors == second_factors
        assert first_factors            # something was actually learned

    def test_regret_is_monotone_and_converges(self, job_env):
        summary = adaptive_matrix(job_env, query_names=["1a", "2a"],
                                  rounds=8, skew=50.0)
        series = [row["adaptive_regret"] for row in summary["rounds"]]
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier + 1e-12
        totals = summary["totals"]
        assert totals["regret_converged"]
        assert totals["adaptive_beats_static"]
        # The stale 50x prior washes out toward 1.0.
        final = summary["rounds"][-1]["per_query"]
        for cell in final.values():
            assert cell["correction_factor"] < 5.0

    def test_noop_breaker_hook_is_byte_invisible(self, job_env):
        plan = job_env.runner.plan(query("1a"))
        base = job_env.runner.cooperative.run_split(plan, 0)
        seen = []
        hooked = job_env.runner.cooperative.run_split(
            plan, 0, breaker_hook=lambda sim, i: seen.append(i))
        assert seen == list(range(len(seen)))   # fired at every breaker
        assert (json.dumps(base.to_dict(include_timeline=True),
                           sort_keys=True)
                == json.dumps(hooked.to_dict(include_timeline=True),
                              sort_keys=True))


class TestAdaptiveScheduler:
    def _run_workload(self, job_env):
        correction = CostCorrection()
        correction.prime(query("1a"), 50.0)
        sched = WorkloadScheduler(job_env, correction=correction,
                                  replan=ReplanPolicy())
        for i in range(4):
            sched.submit("1a", at=0.001 * i)
        return sched.run()

    def test_scheduler_replans_and_audits(self, job_env):
        result = self._run_workload(job_env)
        host = job_env.run(query("1a"), Stack.NATIVE)
        assert len(result.completed()) == 4
        for job in result.jobs:
            assert (job.report.result.sorted_rows()
                    == host.result.sorted_rows()), job.label
            assert job.report.adaptivity["enabled"] is True
        payload = result.to_dict()
        assert payload["adaptivity"]["replans"] >= 1
        assert payload["adaptivity"]["observations"] >= 1
        assert payload["adaptivity"]["correction"][query("1a")] < 50.0
        assert payload["plan_cache"]["hits"] >= 3
        assert job_env.device.reserved_bytes == 0

    def test_adaptive_workload_is_deterministic(self, job_env):
        first = self._run_workload(job_env).to_dict(include_reports=True)
        second = self._run_workload(job_env).to_dict(include_reports=True)
        first.pop("plan_cache")
        second.pop("plan_cache")
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))


class TestPlanCacheVersioning:
    def test_writes_invalidate_cached_plans(self, mini_catalog, kv_db,
                                            device, mini_join_sql):
        runner = StackRunner(mini_catalog, kv_db, device)
        first = runner.plan(mini_join_sql)
        assert runner.plan(mini_join_sql) is first
        assert runner.plan_cache_stats() == {
            "hits": 1, "misses": 1, "invalidations": 0, "entries": 1}
        version = mini_catalog.statistics_version()
        mini_catalog.table("title").insert(
            {"id": 9000, "title": "Fresh Movie",
             "production_year": 1999, "kind_id": 1})
        assert mini_catalog.statistics_version() == version + 1
        rebuilt = runner.plan(mini_join_sql)
        assert rebuilt is not first
        stats = runner.plan_cache_stats()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 1
        # Stable statistics serve the rebuilt plan again.
        assert runner.plan(mini_join_sql) is rebuilt

    def test_noop_mutations_do_not_invalidate(self, mini_catalog, kv_db,
                                              device, mini_join_sql):
        runner = StackRunner(mini_catalog, kv_db, device)
        first = runner.plan(mini_join_sql)
        version = mini_catalog.statistics_version()
        # Deleting a missing key applies nothing.
        assert mini_catalog.table("title").delete(10**9) is False
        assert mini_catalog.statistics_version() == version
        assert runner.plan(mini_join_sql) is first
