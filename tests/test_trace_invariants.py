"""Span-tree invariants of traces exported from real executions.

Every execution trace must be a well-formed Chrome ``trace_event``
document whose spans nest inside the root execution span, whose busy
spans never overlap on a serialized resource track, and whose durations
reconcile with the :class:`ExecutionReport` the same run produced.
Traces are fully deterministic, so two identical runs must serialize to
byte-identical JSON.
"""

import json

import pytest

from repro.context import ExecutionContext
from repro.engine.cooperative import (DEVICE_RESOURCE, EXEC_TRACK,
                                      HOST_RESOURCE, LINK_RESOURCE)
from repro.engine.stacks import Stack, StackRunner
from repro.sim import Tracer
from repro.storage.topology import Topology
from repro.workloads.job_queries import query

from tests.conftest import MINI_JOIN_SQL

RESOURCES = (LINK_RESOURCE, DEVICE_RESOURCE, HOST_RESOURCE)


@pytest.fixture
def runner(mini_catalog, kv_db, flash):
    device = Topology.single(flash=flash).device
    return StackRunner(mini_catalog, kv_db, device, buffer_scale=0.001)


def traced_run(runner, stack, split_index=None):
    tracer = Tracer()
    report = runner.run(MINI_JOIN_SQL, stack, split_index=split_index,
                        ctx=ExecutionContext(tracer=tracer))
    return report, tracer


def busy_spans(tracer, resource):
    return sorted((s for s in tracer.spans
                   if s.track == f"resource/{resource}"),
                  key=lambda s: (s.start, s.end))


def root_span(tracer):
    (root,) = [s for s in tracer.spans if s.track == EXEC_TRACK]
    return root


ALL_STRATEGIES = [(Stack.BLK, None), (Stack.NATIVE, None),
                  (Stack.NDP, None), (Stack.HYBRID, 0),
                  (Stack.HYBRID, 1), (Stack.HYBRID, 2)]


class TestSpanTree:
    @pytest.mark.parametrize("stack,split", ALL_STRATEGIES)
    def test_exactly_one_root_span(self, runner, stack, split):
        report, tracer = traced_run(runner, stack, split)
        root = root_span(tracer)
        assert root.start == 0.0
        assert root.end == pytest.approx(report.total_time)
        assert root.args["strategy"] == report.strategy

    @pytest.mark.parametrize("stack,split", ALL_STRATEGIES)
    def test_spans_nest_inside_root(self, runner, stack, split):
        report, tracer = traced_run(runner, stack, split)
        root = root_span(tracer)
        for span in tracer.spans:
            assert span.start >= -1e-12, span
            assert span.end <= root.end + 1e-9, span
            if span.parent is not None:
                assert span.parent == root.id

    @pytest.mark.parametrize("stack,split",
                             [(Stack.NDP, None), (Stack.HYBRID, 0),
                              (Stack.HYBRID, 1), (Stack.HYBRID, 2)])
    def test_serialized_resources_never_overlap(self, runner, stack, split):
        _, tracer = traced_run(runner, stack, split)
        for resource in RESOURCES:
            spans = busy_spans(tracer, resource)
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12, (
                    f"{resource}: busy spans [{a.start}, {a.end}) and "
                    f"[{b.start}, {b.end}) overlap")

    @pytest.mark.parametrize("split", [0, 1, 2])
    def test_busy_spans_reconcile_with_resource_stats(self, runner, split):
        report, tracer = traced_run(runner, Stack.HYBRID, split)
        for resource in RESOURCES:
            span_total = sum(s.duration
                             for s in busy_spans(tracer, resource))
            assert span_total == pytest.approx(
                report.resource_stats[resource]["busy_time"]), resource

    def test_host_breakdown_spans_fill_total_time(self, runner):
        report, tracer = traced_run(runner, Stack.BLK)
        compute = [s for s in tracer.spans if s.track == "host/compute"]
        assert compute
        assert sum(s.duration for s in compute) == pytest.approx(
            report.total_time)
        # Sequential layout: each span starts where the previous ended.
        for a, b in zip(compute, compute[1:]):
            assert b.start == pytest.approx(a.end)

    def test_phase_spans_mirror_timeline(self, runner):
        report, tracer = traced_run(runner, Stack.HYBRID, 1)
        phase_spans = [s for s in tracer.spans
                       if s.track.startswith(("host/", "device/"))]
        assert len(phase_spans) == len(report.timeline)
        timeline = sorted((p.start, p.end, f"{p.actor}/{p.kind}")
                          for p in report.timeline)
        spans = sorted((s.start, s.end, s.track) for s in phase_spans)
        for (ps, pe, ptrack), (ss, se, strack) in zip(timeline, spans):
            assert strack == ptrack
            assert ss == pytest.approx(ps)
            assert se == pytest.approx(pe)

    def test_compute_spans_carry_counter_deltas(self, runner):
        _, tracer = traced_run(runner, Stack.HYBRID, 1)
        host_compute = [s for s in tracer.spans
                        if s.track == "host/compute" and "counters" in s.args]
        assert host_compute
        for span in host_compute:
            assert all(v > 0 for v in span.args["counters"].values())


class TestDeterminism:
    @pytest.mark.parametrize("stack,split", ALL_STRATEGIES)
    def test_two_runs_byte_identical(self, runner, stack, split):
        _, first = traced_run(runner, stack, split)
        _, second = traced_run(runner, stack, split)
        assert first.dumps() == second.dumps()

    def test_exported_json_is_valid_chrome_trace(self, runner):
        _, tracer = traced_run(runner, Stack.HYBRID, 1)
        payload = json.loads(tracer.dumps())
        assert payload["displayTimeUnit"] == "ms"
        kinds = {event["ph"] for event in payload["traceEvents"]}
        assert {"M", "X", "i"} <= kinds
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert event["ts"] >= 0.0


class TestReportIntegration:
    def test_trace_metrics_merged_into_report_dict(self, runner):
        report, tracer = traced_run(runner, Stack.HYBRID, 1)
        payload = report.to_dict()
        assert payload["trace_metrics"] == tracer.metrics()
        assert payload["trace_metrics"]["spans"] > 0

    def test_untraced_run_has_empty_metrics(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        assert report.trace_metrics == {}

    def test_run_all_splits_accepts_ctx_factory(self, runner):
        tracers = {}

        def factory(name):
            tracers[name] = Tracer()
            return ExecutionContext(tracer=tracers[name])

        reports = runner.run_all_splits(MINI_JOIN_SQL,
                                        ctx_factory=factory)
        for name, report in reports.items():
            if isinstance(report, Exception):
                continue
            assert report.trace_metrics == tracers[name].metrics(), name
            assert root_span(tracers[name]).args["strategy"] == name


class TestJobQueryTrace:
    def test_job_query_trace_invariants(self, job_env):
        tracer = Tracer()
        report = job_env.run(query("8c"), Stack.HYBRID, split_index=1,
                             ctx=ExecutionContext(tracer=tracer))
        root = root_span(tracer)
        assert root.end == pytest.approx(report.total_time)
        for resource in RESOURCES:
            spans = busy_spans(tracer, resource)
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12
        assert json.loads(tracer.dumps())


class TestTraceCli:
    def test_trace_command_writes_valid_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "1a.json"
        assert main(["--scale", "0.0002", "trace", "1a",
                     "--strategy", "split:best", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace written to" in text
        assert "ui.perfetto.dev" in text
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
