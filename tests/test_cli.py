"""Tests for the CLI (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["info"], ["run", "8c"], ["decide", "1a"],
                     ["sweep", "8c"], ["experiment", "fig2"],
                     ["survey"], ["list-queries"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_stack_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "8c", "--stack", "hybrid",
                                  "--split", "2"])
        assert args.stack == "hybrid" and args.split == 2
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "8c", "--stack", "warp"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "0.001", "info"])
        assert args.scale == 0.001


class TestCommands:
    def test_list_queries(self, capsys):
        assert main(["list-queries"]) == 0
        out = capsys.readouterr().out
        assert "113 JOB queries" in out
        assert "8c" in out

    def test_run_and_decide(self, capsys):
        # Small scale keeps the CLI test fast; the env is rebuilt per call.
        assert main(["--scale", "0.0002", "run", "1a",
                     "--stack", "native"]) == 0
        out = capsys.readouterr().out
        assert "host-only(native)" in out

        assert main(["--scale", "0.0002", "decide", "1a"]) == 0
        out = capsys.readouterr().out
        assert "preconditions" in out

    def test_info(self, capsys):
        assert main(["--scale", "0.0002", "info"]) == 0
        out = capsys.readouterr().out
        assert "compute gap" in out
        assert "cosmos-plus" in out
