"""Tests for the JOB workload: schema, generator, queries, loader."""

import pytest

from repro.errors import ReproError
from repro.query.parser import parse_query
from repro.relational.schema import DataType
from repro.workloads.generator import (DatasetGenerator, DatasetSpec,
                                       INFO_TYPES, KIND_TYPES, ROLE_TYPES)
from repro.workloads.imdb_schema import (BASE_ROW_COUNTS,
                                         FIXED_SIZE_TABLES,
                                         JOB_TABLE_NAMES, imdb_schemas)
from repro.workloads.job_queries import (JOB_FAMILIES, all_queries,
                                         family_numbers,
                                         queries_in_family, query)


class TestSchema:
    def test_21_tables(self):
        schemas = imdb_schemas()
        assert len(schemas) == 21
        assert {s.name for s in schemas} == set(JOB_TABLE_NAMES)

    def test_every_table_has_int_pk(self):
        for schema in imdb_schemas():
            pk = schema.column(schema.primary_key)
            assert pk.dtype is DataType.INT
            assert not pk.nullable

    def test_fk_indexes_present(self):
        schemas = {s.name: s for s in imdb_schemas()}
        assert "movie_id" in schemas["movie_keyword"].secondary_indexes
        assert "person_id" in schemas["cast_info"].secondary_indexes
        assert "movie_id" in schemas["movie_companies"].secondary_indexes

    def test_indexes_can_be_disabled(self):
        for schema in imdb_schemas(secondary_indexes=False):
            assert schema.secondary_indexes == ()

    def test_base_counts_cover_all_tables(self):
        assert set(BASE_ROW_COUNTS) == set(JOB_TABLE_NAMES)
        assert sum(BASE_ROW_COUNTS.values()) == pytest.approx(74e6,
                                                              rel=0.05)


class TestDatasetSpec:
    def test_fixed_tables_keep_real_size(self):
        spec = DatasetSpec(scale=0.001)
        for name in FIXED_SIZE_TABLES:
            assert spec.rows_for(name) == BASE_ROW_COUNTS[name]

    def test_scaled_tables_shrink(self):
        spec = DatasetSpec(scale=0.001)
        assert spec.rows_for("cast_info") == int(36_244_344 * 0.001)

    def test_min_rows_floor(self):
        spec = DatasetSpec(scale=1e-7, min_rows=8)
        assert spec.rows_for("movie_link") == 8

    def test_invalid_scale_rejected(self):
        with pytest.raises(ReproError):
            DatasetSpec(scale=0)

    def test_table_overrides(self):
        spec = DatasetSpec(scale=0.001,
                           table_overrides=(("movie_link", 2000),))
        assert spec.rows_for("movie_link") == 2000
        assert spec.rows_for("title") == int(2_528_312 * 0.001)

    def test_bad_override_rejected(self):
        with pytest.raises(ReproError):
            DatasetSpec(table_overrides=(("ghost", 10),))
        with pytest.raises(ReproError):
            DatasetSpec(table_overrides=(("title", 0),))


class TestGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return DatasetGenerator(DatasetSpec(scale=0.0002, seed=3)
                                ).generate_all()

    def test_all_tables_generated(self, data):
        assert set(data) == set(JOB_TABLE_NAMES)

    def test_row_counts_match_spec(self, data):
        spec = DatasetSpec(scale=0.0002, seed=3)
        for name, rows in data.items():
            assert len(rows) == spec.rows_for(name)

    def test_dimension_vocabularies(self, data):
        assert [r["kind"] for r in data["kind_type"]] == KIND_TYPES
        assert [r["role"] for r in data["role_type"]] == ROLE_TYPES
        assert [r["info"] for r in data["info_type"]] == INFO_TYPES

    def test_primary_keys_unique_and_dense(self, data):
        for name, rows in data.items():
            ids = [r["id"] for r in rows]
            assert ids == list(range(1, len(rows) + 1)), name

    def test_foreign_keys_in_range(self, data):
        n_titles = len(data["title"])
        n_names = len(data["name"])
        for row in data["movie_keyword"]:
            assert 1 <= row["movie_id"] <= n_titles
        for row in data["cast_info"]:
            assert 1 <= row["person_id"] <= n_names
            assert 1 <= row["role_id"] <= len(ROLE_TYPES)

    def test_queryable_constants_exist(self, data):
        keywords = {r["keyword"] for r in data["keyword"]}
        assert "character-name-in-title" in keywords
        assert "10,000-mile-club" in keywords
        countries = {r["country_code"] for r in data["company_name"]}
        assert "[us]" in countries
        notes = {r["note"] for r in data["movie_companies"]}
        assert "(presents)" in notes
        assert None in notes

    def test_deterministic(self):
        spec = DatasetSpec(scale=0.0002, seed=3)
        a = DatasetGenerator(spec).generate("title")
        b = DatasetGenerator(spec).generate("title")
        assert a == b

    def test_different_seeds_differ(self):
        a = DatasetGenerator(DatasetSpec(scale=0.0002, seed=1)
                             ).generate("title")
        b = DatasetGenerator(DatasetSpec(scale=0.0002, seed=2)
                             ).generate("title")
        assert a != b

    def test_movie_popularity_skew(self, data):
        counts = {}
        for row in data["cast_info"]:
            counts[row["movie_id"]] = counts.get(row["movie_id"], 0) + 1
        n = len(data["title"])
        low = sum(c for m, c in counts.items() if m <= n // 4)
        high = sum(c for m, c in counts.items() if m > 3 * n // 4)
        assert low > 2 * max(1, high)

    def test_unknown_table_rejected(self):
        generator = DatasetGenerator(DatasetSpec())
        with pytest.raises(ReproError):
            generator.generate("ghost_table")


class TestQuerySuite:
    def test_113_queries_in_33_families(self):
        assert len(JOB_FAMILIES) == 33
        assert sum(len(v) for v in JOB_FAMILIES.values()) == 113
        assert len(all_queries()) == 113

    def test_family_numbers(self):
        assert family_numbers() == list(range(1, 34))

    def test_all_queries_parse(self):
        for name, sql in all_queries().items():
            parse_query(sql)

    def test_query_lookup(self):
        assert "top 250 rank" in query("1a")
        assert "writer" in query("8c")
        assert "costume designer" in query("8d")
        with pytest.raises(ReproError):
            query("99z")

    def test_family_lookup(self):
        assert set(queries_in_family(8)) == {"a", "b", "c", "d"}
        with pytest.raises(ReproError):
            queries_in_family(50)

    def test_paper_query_shapes(self):
        """Table counts match the paper: Q8c has 7 tables, Q1a has 5."""
        assert query("8c").upper().count(" AS ") >= 7
        parsed = parse_query(query("1a"))
        assert len(parsed.tables) == 5
        parsed8 = parse_query(query("8c"))
        assert len(parsed8.tables) == 7
        parsed17 = parse_query(query("17b"))
        assert len(parsed17.tables) == 7

    def test_all_queries_are_aggregating(self):
        for name, sql in all_queries().items():
            parsed = parse_query(sql)
            assert all(item.aggregate == "min"
                       for item in parsed.select_items), name


class TestLoader:
    def test_environment_wiring(self, job_env):
        assert job_env.total_rows > 0
        assert job_env.catalog.table("title").row_count > 0
        assert job_env.buffer_scale > 0
        assert job_env.hardware.compute_gap > 20

    def test_all_tables_loaded(self, job_env):
        for name in JOB_TABLE_NAMES:
            assert job_env.catalog.table(name).row_count > 0

    def test_queries_plannable(self, job_env):
        for name in ("1a", "6b", "8c", "17b", "32b"):
            plan = job_env.runner.plan(query(name))
            assert plan.table_count >= 5
