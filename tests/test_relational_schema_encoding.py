"""Tests for schemas and the fixed-width record codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.encoding import (RecordCodec, composite_key,
                                       decode_key, encode_key,
                                       split_composite_key)
from repro.relational.schema import (Column, DataType, TableSchema,
                                     char_col, int_col)


def sample_schema():
    return TableSchema(
        "t",
        (int_col("id", False), char_col("name", 10), int_col("n"),
         char_col("code", 3)),
        "id", ("n",))


class TestSchema:
    def test_record_bytes_is_aligned(self):
        schema = sample_schema()
        # bitmap(4) + id(4) + name(12: 10 padded to 12) + n(4) + code(4)
        assert schema.record_bytes == 4 + 4 + 12 + 4 + 4

    def test_storage_width_alignment(self):
        assert Column("c", DataType.CHAR, 10).storage_width == 12
        assert Column("c", DataType.CHAR, 8).storage_width == 8

    def test_int_width_fixed(self):
        with pytest.raises(SchemaError):
            Column("c", DataType.INT, 8)

    def test_projection_bytes(self):
        schema = sample_schema()
        assert schema.projection_bytes(["id", "name"]) == 16

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (int_col("a"), int_col("a")), "a")

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (int_col("a"),), "missing")

    def test_index_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (int_col("a", False),), "a", ("ghost",))

    def test_column_lookup(self):
        schema = sample_schema()
        assert schema.column("name").width == 10
        assert schema.column_index("n") == 2
        with pytest.raises(SchemaError):
            schema.column("ghost")


class TestKeyEncoding:
    def test_int_keys_preserve_order(self):
        values = [-100, -1, 0, 1, 7, 1000, 2**31 - 1, -(2**31)]
        encoded = sorted(encode_key(v) for v in values)
        assert [decode_key(raw) for raw in encoded] == sorted(values)

    def test_string_keys_padded(self):
        assert encode_key("ab", width=4) == b"ab  "
        assert encode_key("abcdef", width=4) == b"abcd"

    def test_roundtrip_int(self):
        assert decode_key(encode_key(42)) == 42

    def test_composite_split(self):
        raw = composite_key(b"secondary", encode_key(7))
        secondary, primary = split_composite_key(raw)
        assert secondary == b"secondary"
        assert decode_key(primary) == 7

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            encode_key(3.14)

    @given(st.integers(min_value=-(2**62), max_value=2**62 - 1),
           st.integers(min_value=-(2**62), max_value=2**62 - 1))
    @settings(max_examples=100, deadline=None)
    def test_property_order_preserving(self, a, b):
        assert (a < b) == (encode_key(a) < encode_key(b))


class TestRecordCodec:
    def test_roundtrip(self):
        codec = RecordCodec(sample_schema())
        row = {"id": 7, "name": "alice", "n": -3, "code": "xy"}
        assert codec.decode(codec.encode(row)) == row

    def test_nulls_roundtrip(self):
        codec = RecordCodec(sample_schema())
        row = {"id": 1, "name": None, "n": None, "code": "z"}
        assert codec.decode(codec.encode(row)) == row

    def test_not_null_enforced(self):
        codec = RecordCodec(sample_schema())
        with pytest.raises(SchemaError):
            codec.encode({"id": None, "name": "x", "n": 1, "code": "y"})

    def test_string_trimmed_to_width(self):
        codec = RecordCodec(sample_schema())
        row = codec.decode(codec.encode(
            {"id": 1, "name": "a-very-long-name", "n": 0, "code": "abc"}))
        assert row["name"] == "a-very-lon"

    def test_int_range_enforced(self):
        codec = RecordCodec(sample_schema())
        with pytest.raises(SchemaError):
            codec.encode({"id": 2**40, "name": "x", "n": 0, "code": "y"})

    def test_type_mismatch_rejected(self):
        codec = RecordCodec(sample_schema())
        with pytest.raises(SchemaError):
            codec.encode({"id": "not-an-int", "name": "x", "n": 0,
                          "code": "y"})

    def test_fixed_size(self):
        codec = RecordCodec(sample_schema())
        a = codec.encode({"id": 1, "name": "a", "n": 0, "code": "b"})
        b = codec.encode({"id": 2, "name": "longername", "n": 9,
                          "code": "zzz"})
        assert len(a) == len(b) == codec.record_bytes

    def test_decode_wrong_size_rejected(self):
        codec = RecordCodec(sample_schema())
        with pytest.raises(SchemaError):
            codec.decode(b"short")

    def test_decode_columns_projection(self):
        codec = RecordCodec(sample_schema())
        raw = codec.encode({"id": 7, "name": "bob", "n": 5, "code": "q"})
        assert codec.decode_columns(raw, ["n", "id"]) == {"n": 5, "id": 7}

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
           st.text(max_size=15),
           st.one_of(st.none(),
                     st.integers(min_value=-(2**31), max_value=2**31 - 1)))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, pk, name, n):
        codec = RecordCodec(sample_schema())
        row = {"id": pk, "name": name, "n": n, "code": None}
        decoded = codec.decode(codec.encode(row))
        assert decoded["id"] == pk
        assert decoded["n"] == n
        # CHAR semantics: trailing spaces are not preserved, width capped.
        expected = name.encode("utf-8", errors="replace")[:10]
        expected = expected.decode("utf-8", errors="replace").rstrip(" ")
        assert decoded["name"] == expected
