"""Tests for logical analysis, join ordering and physical planning."""

import pytest

from repro.errors import PlanError
from repro.query.logical import analyze
from repro.query.optimizer import build_plan
from repro.query.parser import parse_query
from repro.query.physical import AccessPath, JoinAlgorithm

from tests.conftest import MINI_JOIN_SQL


class TestLogicalAnalysis:
    def _spec(self, sql, catalog):
        return analyze(parse_query(sql), catalog, sql=sql)

    def test_filters_split_per_table(self, mini_catalog):
        spec = self._spec(MINI_JOIN_SQL, mini_catalog)
        assert spec.filter_for("ct") is not None
        assert spec.filter_for("mc") is not None
        assert spec.filter_for("t") is not None

    def test_join_edges_extracted(self, mini_catalog):
        spec = self._spec(MINI_JOIN_SQL, mini_catalog)
        edges = {str(edge) for edge in spec.join_edges}
        assert "ct.id = mc.company_type_id" in edges
        assert "t.id = mc.movie_id" in edges

    def test_unqualified_columns_bound(self, mini_catalog):
        sql = ("SELECT title FROM title AS t WHERE production_year > 2000")
        spec = self._spec(sql, mini_catalog)
        assert spec.filter_for("t") is not None
        ref = spec.select_items[0].expr
        assert ref.alias == "t"

    def test_ambiguous_column_rejected(self, mini_catalog):
        sql = ("SELECT id FROM title AS t, company_type AS ct "
               "WHERE t.id = ct.id")
        with pytest.raises(PlanError):
            self._spec(sql, mini_catalog)

    def test_unknown_column_rejected(self, mini_catalog):
        with pytest.raises(PlanError):
            self._spec("SELECT ghost FROM title AS t", mini_catalog)

    def test_duplicate_alias_rejected(self, mini_catalog):
        with pytest.raises(PlanError):
            self._spec("SELECT t.id FROM title AS t, company_type AS t",
                       mini_catalog)

    def test_cross_table_or_becomes_residual(self, mini_catalog):
        sql = ("SELECT t.title FROM title AS t, movie_companies AS mc "
               "WHERE t.id = mc.movie_id "
               "AND (t.kind_id = 1 OR mc.company_type_id = 2)")
        spec = self._spec(sql, mini_catalog)
        assert spec.residual is not None

    def test_projections_cover_select_and_joins(self, mini_catalog):
        spec = self._spec(MINI_JOIN_SQL, mini_catalog)
        assert "movie_id" in spec.projections["mc"]
        assert "title" in spec.projections["t"]
        assert "id" in spec.projections["ct"]

    def test_edge_helpers(self, mini_catalog):
        spec = self._spec(MINI_JOIN_SQL, mini_catalog)
        edge = spec.join_edges[0]
        assert edge.touches(edge.left_alias)
        other_alias, _ = edge.other(edge.left_alias)
        assert other_alias == edge.right_alias
        with pytest.raises(PlanError):
            edge.other("zz")


class TestJoinOrdering:
    def test_driving_table_is_most_selective(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        # ct.kind = 'production companies' matches ~1 of 4 rows: ct first.
        assert plan.entries[0].alias == "ct"

    def test_left_deep_connectivity(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        placed = {plan.entries[0].alias}
        for entry in plan.entries[1:]:
            assert entry.join_edges, f"{entry.alias} joined cartesian"
            for edge in entry.join_edges:
                other_alias, _ = edge.other(entry.alias)
                assert other_alias in placed
            placed.add(entry.alias)

    def test_cumulative_estimates_present(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        for entry in plan.entries:
            assert entry.estimated_rows >= 1
            assert entry.estimated_output_rows >= 1


class TestAccessPaths:
    def test_pk_join_uses_bnlji(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        t_entry = plan.entry("t")
        assert t_entry.join_algorithm is JoinAlgorithm.BNLJI
        assert t_entry.index_column == "id"

    def test_secondary_index_join(self, mini_catalog):
        sql = ("SELECT mc.note FROM title AS t, movie_companies AS mc "
               "WHERE t.production_year = 1999 AND t.id = mc.movie_id")
        plan = build_plan(sql, mini_catalog)
        assert plan.entries[0].alias == "t"
        assert plan.entries[0].access_path is AccessPath.SECONDARY_LOOKUP
        mc_entry = plan.entry("mc")
        assert mc_entry.join_algorithm is JoinAlgorithm.BNLJI
        assert mc_entry.index_column == "movie_id"

    def test_non_indexed_join_uses_bnlj(self, mini_catalog):
        sql = ("SELECT t.title FROM title AS t, movie_companies AS mc "
               "WHERE t.kind_id = mc.company_type_id")
        plan = build_plan(sql, mini_catalog)
        assert plan.entries[1].join_algorithm is JoinAlgorithm.BNLJ

    def test_pk_range_access(self, mini_catalog):
        sql = "SELECT t.title FROM title AS t WHERE t.id <= 10"
        plan = build_plan(sql, mini_catalog)
        assert plan.entries[0].access_path is AccessPath.PK_RANGE

    def test_full_scan_fallback(self, mini_catalog):
        sql = "SELECT t.title FROM title AS t WHERE t.kind_id = 3"
        plan = build_plan(sql, mini_catalog)
        assert plan.entries[0].access_path is AccessPath.FULL_SCAN


class TestPlanStructure:
    def test_prefix_suffix(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        assert len(plan.prefix(0)) == 1
        assert len(plan.suffix(0)) == plan.table_count - 1
        assert plan.prefix(plan.table_count - 1) == plan.entries
        with pytest.raises(PlanError):
            plan.prefix(99)

    def test_join_count(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        assert plan.join_count == plan.table_count - 1

    def test_describe_readable(self, mini_catalog):
        text = build_plan(MINI_JOIN_SQL, mini_catalog).describe()
        assert "driving" in text
        assert "bnlji" in text or "bnlj" in text

    def test_entry_lookup(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        assert plan.entry("mc").alias == "mc"
        with pytest.raises(PlanError):
            plan.entry("zz")

    def test_single_table_plan(self, mini_catalog):
        plan = build_plan("SELECT t.title FROM title AS t", mini_catalog)
        assert plan.table_count == 1
        assert plan.entries[0].is_driving
