"""Tests for the skiplist."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LSMError
from repro.lsm.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get(b"a") is None
        assert b"a" not in sl
        assert sl.first_key() is None
        assert sl.last_key() is None

    def test_insert_and_get(self):
        sl = SkipList()
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert len(sl) == 2

    def test_overwrite_keeps_size(self):
        sl = SkipList()
        sl.insert(b"k", 1)
        sl.insert(b"k", 2)
        assert sl.get(b"k") == 2
        assert len(sl) == 1

    def test_non_bytes_key_rejected(self):
        with pytest.raises(LSMError):
            SkipList().insert("text", 1)

    def test_items_are_sorted(self):
        sl = SkipList()
        for key in [b"d", b"a", b"c", b"b"]:
            sl.insert(key, key)
        assert [k for k, _ in sl.items()] == [b"a", b"b", b"c", b"d"]

    def test_range_iteration(self):
        sl = SkipList()
        for i in range(10):
            sl.insert(bytes([i]), i)
        got = [v for _, v in sl.items(lo=bytes([3]), hi=bytes([7]))]
        assert got == [3, 4, 5, 6]

    def test_first_last(self):
        sl = SkipList()
        for key in [b"m", b"a", b"z"]:
            sl.insert(key, None)
        assert sl.first_key() == b"a"
        assert sl.last_key() == b"z"

    def test_deterministic_given_seed(self):
        def build(seed):
            sl = SkipList(seed=seed)
            for i in range(100):
                sl.insert(f"{i:03d}".encode(), i)
            return sl._level
        assert build(1) == build(1)


class TestPropertyBased:
    @given(st.dictionaries(st.binary(min_size=1, max_size=12),
                           st.integers(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_model(self, model):
        sl = SkipList()
        for key, value in model.items():
            sl.insert(key, value)
        assert len(sl) == len(model)
        for key, value in model.items():
            assert sl.get(key) == value
        assert [k for k, _ in sl.items()] == sorted(model)

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1,
                    max_size=100),
           st.binary(min_size=1, max_size=8),
           st.binary(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_range_matches_sorted_slice(self, keys, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        sl = SkipList()
        for key in keys:
            sl.insert(key, None)
        expected = sorted(k for k in set(keys) if lo <= k < hi)
        assert [k for k, _ in sl.items(lo=lo, hi=hi)] == expected
