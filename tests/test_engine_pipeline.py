"""Unit tests for pipeline internals: predicate costing, decode plans,
buffer-driven BNL blocking, pointer-cache materialization, finalize."""

import pytest

from repro.engine.counters import WorkCounters
from repro.engine.pipeline import (PipelineConfig, PipelineExecutor,
                                   finalize, predicate_cost)
from repro.errors import ExecutionError
from repro.query.optimizer import build_plan
from repro.query.parser import SelectItem
from repro.query.ast import ColumnRef

from tests.conftest import MINI_JOIN_SQL


def make_executor(catalog, **config):
    counters = WorkCounters()
    executor = PipelineExecutor(catalog, PipelineConfig(**config), counters)
    return executor, counters


class TestPredicateCost:
    def _filter(self, catalog, sql):
        plan = build_plan(sql, catalog)
        return plan.entries[0].local_filter, plan.spec.tables

    def test_none_costs_nothing(self, mini_catalog):
        assert predicate_cost(None, mini_catalog, {}) == (0, 0)

    def test_like_charges_column_width(self, mini_catalog):
        expr, tables = self._filter(
            mini_catalog,
            "SELECT mc.id FROM movie_companies AS mc "
            "WHERE mc.note LIKE '%x%'")
        ops, memcmp = predicate_cost(expr, mini_catalog, tables)
        assert ops == 1
        assert memcmp == 40     # CHAR(40), already 4-byte aligned

    def test_int_comparison_no_memcmp(self, mini_catalog):
        expr, tables = self._filter(
            mini_catalog,
            "SELECT t.id FROM title AS t WHERE t.kind_id = 3")
        ops, memcmp = predicate_cost(expr, mini_catalog, tables)
        assert ops == 1 and memcmp == 0

    def test_in_list_charges_per_value(self, mini_catalog):
        expr, tables = self._filter(
            mini_catalog,
            "SELECT t.id FROM title AS t WHERE t.kind_id IN (1, 2, 3)")
        ops, _ = predicate_cost(expr, mini_catalog, tables)
        assert ops == 3

    def test_between_two_ops(self, mini_catalog):
        expr, tables = self._filter(
            mini_catalog,
            "SELECT t.id FROM title AS t "
            "WHERE t.production_year BETWEEN 1990 AND 2000")
        ops, _ = predicate_cost(expr, mini_catalog, tables)
        assert ops == 2


class TestDecodePlan:
    def test_needed_covers_filter_and_joins(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        executor, _ = make_executor(mini_catalog)
        executor._tables = plan.spec.tables
        mc = plan.entry("mc")
        needed, q_projection, _exact = executor._decode_plan(mc)
        assert "note" in needed               # filter column
        assert "movie_id" in needed           # join column
        assert all(name.startswith("mc.") for name in q_projection)


class TestRun:
    def test_empty_entries_with_no_input_rejected(self, mini_catalog):
        executor, _ = make_executor(mini_catalog)
        with pytest.raises(ExecutionError):
            executor.run([], {})

    def test_max_rows_guard(self, mini_catalog):
        plan = build_plan(
            "SELECT t.id FROM title AS t, movie_companies AS mc "
            "WHERE t.id = mc.movie_id", mini_catalog)
        executor, _ = make_executor(mini_catalog, max_rows=10)
        with pytest.raises(ExecutionError):
            executor.run(plan.entries, plan.spec.tables)

    def test_bnl_blocking_counts_rescans(self, mini_catalog):
        sql = ("SELECT t.id FROM title AS t, movie_companies AS mc "
               "WHERE t.kind_id = mc.company_type_id")   # BNLJ join
        plan = build_plan(sql, mini_catalog)
        big_exec, big_counters = make_executor(
            mini_catalog, join_buffer_bytes=1 << 24)
        big_exec.run(plan.entries, plan.spec.tables)
        small_exec, small_counters = make_executor(
            mini_catalog, join_buffer_bytes=64)
        small_exec.run(plan.entries, plan.spec.tables)
        # Tiny buffer => many outer blocks => inner rescans => more work.
        assert (small_counters.records_evaluated
                > 2 * big_counters.records_evaluated)

    def test_pointer_cache_reduces_materialized_bytes(self, mini_catalog):
        # Wide projections are where the pointer format pays off (§4.2);
        # a pointer is 8 bytes vs a CHAR(40) note / CHAR(32) title.
        sql = ("SELECT mc.note, t.title FROM title AS t, "
               "movie_companies AS mc WHERE t.id = mc.movie_id")
        plan = build_plan(sql, mini_catalog)
        row_exec, row_counters = make_executor(
            mini_catalog, pointer_cache=False)
        row_exec.run(plan.entries, plan.spec.tables)
        ptr_exec, ptr_counters = make_executor(
            mini_catalog, pointer_cache=True)
        ptr_exec.run(plan.entries, plan.spec.tables)
        assert (ptr_counters.bytes_materialized
                < row_counters.bytes_materialized)
        assert (ptr_counters.output_rows == row_counters.output_rows)

    def test_block_cache_reduces_flash_reads(self, mini_catalog):
        plan = build_plan(MINI_JOIN_SQL, mini_catalog)
        cold_exec, cold = make_executor(mini_catalog, block_cache_bytes=0)
        cold_exec.run(plan.entries, plan.spec.tables)
        warm_exec, warm = make_executor(mini_catalog,
                                        block_cache_bytes=1 << 24)
        warm_exec.run(plan.entries, plan.spec.tables)
        assert warm.flash_bytes_read < cold.flash_bytes_read
        assert warm.block_cache_hits > 0


class TestFinalize:
    def _items(self, *specs):
        items = []
        for aggregate, alias, column, name in specs:
            expr = "*" if column == "*" else ColumnRef(alias, column)
            items.append(SelectItem(expr, aggregate=aggregate, alias=name))
        return items

    def test_plain_projection(self):
        counters = WorkCounters()
        rows = [{"t.a": 1, "t.b": 2}, {"t.a": 3, "t.b": 4}]
        out, columns = finalize(
            rows, self._items((None, "t", "a", "x")), [], counters)
        assert out == [{"x": 1}, {"x": 3}]
        assert columns == ["x"]

    def test_limit(self):
        counters = WorkCounters()
        rows = [{"t.a": i} for i in range(10)]
        out, _ = finalize(rows, self._items((None, "t", "a", None)), [],
                          counters, limit=3)
        assert len(out) == 3

    def test_aggregates_over_empty_input(self):
        counters = WorkCounters()
        out, _ = finalize([], self._items(("min", "t", "a", "lo"),
                                          ("count", "t", "*", "n")),
                          [], counters)
        assert out == [{"lo": None, "n": 0}]

    def test_min_ignores_nulls(self):
        counters = WorkCounters()
        rows = [{"t.a": None}, {"t.a": 5}, {"t.a": 2}]
        out, _ = finalize(rows, self._items(("min", "t", "a", "lo")),
                          [], counters)
        assert out[0]["lo"] == 2

    def test_group_by(self):
        counters = WorkCounters()
        rows = [{"t.g": "x", "t.a": 1}, {"t.g": "x", "t.a": 3},
                {"t.g": "y", "t.a": 5}]
        out, columns = finalize(
            rows, self._items(("sum", "t", "a", "total")),
            [ColumnRef("t", "g")], counters)
        got = {row["t.g"]: row["total"] for row in out}
        assert got == {"x": 4, "y": 5}
        assert "t.g" in columns

    def test_unknown_aggregate_rejected(self):
        counters = WorkCounters()
        with pytest.raises(ExecutionError):
            finalize([{"t.a": 1}],
                     self._items(("median", "t", "a", None)), [], counters)
