"""Golden-trace regression: byte-for-byte trace reproduction.

The committed fixture is the canonical Perfetto trace of JOB query 1a
at split H0 against the session environment (scale 0.0004, seed 7).
Tracing is deterministic — stable span ids, canonical JSON — so the
exported bytes must match exactly.  If an intentional change to the
timing model or the tracer alters the trace, regenerate the fixture:

    PYTHONPATH=src python -c "
    from repro.context import ExecutionContext
    from repro.engine.stacks import Stack
    from repro.sim import Tracer
    from repro.workloads.job_queries import query
    from repro.workloads.loader import build_environment
    env = build_environment(scale=0.0004, seed=7)
    tracer = Tracer()
    env.run(query('1a'), Stack.HYBRID, split_index=0,
            ctx=ExecutionContext(tracer=tracer))
    tracer.write('tests/golden/trace_1a_h0.json')"

and explain the timing change in the commit message.
"""

import json
from pathlib import Path

from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.sim import Tracer
from repro.workloads.job_queries import query

GOLDEN = Path(__file__).parent / "golden" / "trace_1a_h0.json"


def export_trace(job_env):
    tracer = Tracer()
    job_env.run(query("1a"), Stack.HYBRID, split_index=0,
                ctx=ExecutionContext(tracer=tracer))
    return tracer.dumps() + "\n"


def test_trace_reproduces_golden_bytes(job_env):
    assert export_trace(job_env) == GOLDEN.read_text()


def test_golden_fixture_is_valid_chrome_trace():
    payload = json.loads(GOLDEN.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert {e["ph"] for e in events} >= {"M", "X", "i"}
    (root,) = [e for e in events
               if e["ph"] == "X" and e.get("cat") == "execution"]
    assert root["name"] == "H0"
