"""Golden-trace regression: byte-for-byte trace reproduction.

The committed fixture is the canonical Perfetto trace of JOB query 1a
at split H0 against the session environment (scale 0.0004, seed 7).
Tracing is deterministic — stable span ids, canonical JSON — so the
exported bytes must match exactly.  If an intentional change to the
timing model or the tracer alters the trace, regenerate the fixture:

    PYTHONPATH=src python -c "
    from repro.context import ExecutionContext
    from repro.engine.stacks import Stack
    from repro.sim import Tracer
    from repro.workloads.job_queries import query
    from repro.workloads.loader import build_environment
    env = build_environment(scale=0.0004, seed=7)
    tracer = Tracer()
    env.run(query('1a'), Stack.HYBRID, split_index=0,
            ctx=ExecutionContext(tracer=tracer))
    tracer.write('tests/golden/trace_1a_h0.json')"

and explain the timing change in the commit message.
"""

import json
from pathlib import Path

from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.sim import Tracer
from repro.workloads.job_queries import query

GOLDEN = Path(__file__).parent / "golden" / "trace_1a_h0.json"
GOLDEN_REPORT_V3 = Path(__file__).parent / "golden" / "report_1a_h0_v3.json"


def export_trace(job_env):
    tracer = Tracer()
    job_env.run(query("1a"), Stack.HYBRID, split_index=0,
                ctx=ExecutionContext(tracer=tracer))
    return tracer.dumps() + "\n"


def test_trace_reproduces_golden_bytes(job_env):
    assert export_trace(job_env) == GOLDEN.read_text()


def test_v5_report_is_byte_identical_to_v3_for_null_config(job_env):
    """Schema v5 with adaptivity off reproduces the v3 fixture.

    The fixture is the pre-v4 ``to_dict`` payload of the same golden
    run, captured *before* the robustness PR.  The v4 delta for a
    single-device run was ``schema_version`` itself (no deadline, no
    speculation, no heterogeneous specs); the v5 delta is the
    always-present ``adaptivity`` block, which for a non-adaptive run
    must be exactly the null audit — no replans, factor 1.0, nothing
    wasted.  Everything else stays byte-for-byte identical.
    Regenerate only with an explained schema bump:

        PYTHONPATH=src python -c "
        import json
        from repro.engine.stacks import Stack
        from repro.workloads.job_queries import query
        from repro.workloads.loader import build_environment
        env = build_environment(scale=0.0004, seed=7)
        report = env.run(query('1a'), Stack.HYBRID, split_index=0)
        with open('tests/golden/report_1a_h0_v3.json', 'w') as fh:
            json.dump(report.to_dict(include_timeline=True), fh,
                      indent=1, sort_keys=True)
            fh.write('\\n')"
    """
    report = job_env.run(query("1a"), Stack.HYBRID, split_index=0)
    payload = report.to_dict(include_timeline=True)
    assert payload["schema_version"] == 5
    assert payload.pop("adaptivity") == {
        "enabled": False, "replans": 0, "correction_factor": 1.0,
        "wasted_time": 0.0, "events": []}
    payload["schema_version"] = 3
    fresh = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    assert fresh == GOLDEN_REPORT_V3.read_text()


def test_golden_fixture_is_valid_chrome_trace():
    payload = json.loads(GOLDEN.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert {e["ph"] for e in events} >= {"M", "X", "i"}
    (root,) = [e for e in events
               if e["ph"] == "X" and e.get("cat") == "execution"]
    assert root["name"] == "H0"
