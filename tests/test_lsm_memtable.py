"""Tests for the MemTable."""

import pytest

from repro.errors import LSMError
from repro.lsm.memtable import TOMBSTONE, MemTable


class TestWrites:
    def test_put_get(self):
        table = MemTable()
        table.put(b"k", b"v")
        assert table.get(b"k") == (True, b"v")

    def test_missing_key(self):
        assert MemTable().get(b"nope") == (False, None)

    def test_delete_is_tombstone(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.delete(b"k")
        found, value = table.get(b"k")
        assert found is True and value is None

    def test_delete_unknown_key_still_records_tombstone(self):
        table = MemTable()
        table.delete(b"ghost")
        assert table.get(b"ghost") == (True, None)
        assert dict(table.items())[b"ghost"] == TOMBSTONE

    def test_non_bytes_value_rejected(self):
        with pytest.raises(LSMError):
            MemTable().put(b"k", 123)

    def test_byte_size_tracks_content(self):
        table = MemTable()
        table.put(b"abc", b"defg")
        assert table.byte_size == 7

    def test_is_full(self):
        table = MemTable(size_limit=10)
        table.put(b"aaaa", b"bbbb")
        assert not table.is_full()
        table.put(b"cc", b"dd")
        assert table.is_full()

    def test_zero_limit_rejected(self):
        with pytest.raises(LSMError):
            MemTable(size_limit=0)


class TestImmutability:
    def test_frozen_table_rejects_writes(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.freeze()
        assert table.immutable
        with pytest.raises(LSMError):
            table.put(b"x", b"y")
        with pytest.raises(LSMError):
            table.delete(b"k")

    def test_frozen_table_still_readable(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.freeze()
        assert table.get(b"k") == (True, b"v")

    def test_entries_sorted(self):
        table = MemTable()
        for key in [b"c", b"a", b"b"]:
            table.put(key, b"v")
        assert [k for k, _ in table.entries()] == [b"a", b"b", b"c"]
