"""Tests for the smart-storage device (buffer policy, timing paths)."""

import pytest

from repro.errors import DeviceOverloadError, StorageError
from repro.storage.device import SmartStorageDevice
from repro.storage.machines import COSMOS_PLUS, HOST_I5, enterprise_device


class TestBufferPolicy:
    def test_cosmos_budget_is_about_400mb(self, device):
        budget_mb = device.buffer_budget / (1024 * 1024)
        assert 380 <= budget_mb <= 430

    def test_paper_table_caps(self, device):
        # Paper §5: at most 12 tables with secondary indexes, 17 without.
        assert device.max_tables(with_secondary_index=True) == 12
        assert device.max_tables(with_secondary_index=False) == 17

    def test_pipeline_cost_uses_17_17_7(self, device):
        spec = device.spec
        cost = device.pipeline_cost_bytes(selections=2, secondary_indexes=1,
                                          joins=1)
        expected = (2 * spec.selection_buffer_bytes
                    + spec.secondary_index_buffer_bytes
                    + spec.join_buffer_bytes)
        assert cost == expected

    def test_reserve_and_release(self, device):
        reservation = device.reserve_pipeline(3, 1, 2)
        assert device.reserved_bytes == reservation.total_bytes
        device.release_pipeline(reservation)
        assert device.reserved_bytes == 0

    def test_overload_raises(self, device):
        with pytest.raises(DeviceOverloadError):
            device.reserve_pipeline(selections=30, secondary_indexes=30,
                                    joins=30)

    def test_overload_leaves_budget_untouched(self, device):
        before = device.available_bytes
        with pytest.raises(DeviceOverloadError):
            device.reserve_pipeline(selections=100)
        assert device.available_bytes == before

    def test_concurrent_reservations_accumulate(self, device):
        first = device.reserve_pipeline(5, 0, 4)
        second = device.reserve_pipeline(5, 0, 4)
        assert device.reserved_bytes == (first.total_bytes
                                         + second.total_bytes)
        with pytest.raises(DeviceOverloadError):
            device.reserve_pipeline(12, 12, 11)

    def test_release_unknown_reservation_rejected(self, device):
        reservation = device.reserve_pipeline(1)
        device.release_pipeline(reservation)
        with pytest.raises(StorageError):
            device.release_pipeline(reservation)

    def test_negative_counts_rejected(self, device):
        with pytest.raises(StorageError):
            device.pipeline_cost_bytes(-1)

    def test_can_host_pipeline_matches_reserve(self, device):
        assert device.can_host_pipeline(12, 12, 11) is False
        assert device.can_host_pipeline(5, 2, 4) is True


class TestTimingPaths:
    def test_internal_read_beats_external(self, device):
        nbytes = 32 * 1024 * 1024
        assert device.read_internal(nbytes) < device.read_external(nbytes)

    def test_result_transfer_uses_link(self, device):
        time = device.transfer_results(1024 * 1024)
        assert time > 0

    def test_reservation_describe(self, device):
        reservation = device.reserve_pipeline(2, 1, 1)
        text = reservation.describe()
        assert "2 selection" in text
        assert "MB" in text


class TestSpecs:
    def test_coremark_gap_is_about_31x(self):
        gap = HOST_I5.eval_ops_per_second / COSMOS_PLUS.eval_ops_per_second
        assert gap == pytest.approx(92343.0 / 2964.0, rel=1e-6)

    def test_enterprise_device_is_stronger(self):
        enterprise = enterprise_device()
        assert enterprise.ndp_cores > COSMOS_PLUS.ndp_cores
        assert enterprise.coremark > COSMOS_PLUS.coremark
        assert enterprise.dram_bytes > COSMOS_PLUS.dram_bytes

    def test_device_keeps_a_relay_core(self):
        assert COSMOS_PLUS.cores - COSMOS_PLUS.ndp_cores >= 1
