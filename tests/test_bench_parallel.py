"""The parallel JOB sweep and the on-disk workload cache.

The sharded sweep must be bit-identical to the serial one for a fixed
seed, and the cache must let environment rebuilds skip generation.
"""

import json

import pytest

import repro.workloads.loader as loader
from repro.bench.parallel import (default_workers, strategy_times,
                                  sweep_job_matrix)
from repro.workloads.loader import build_environment

QUERIES = ["1a", "3b"]
ENV_KWARGS = {"scale": 0.0002, "seed": 11}


class TestSweep:
    def test_serial_sweep_matches_run_all_splits(self, tmp_path):
        env = build_environment(**ENV_KWARGS)
        matrix = sweep_job_matrix(query_names=QUERIES, workers=1, env=env)
        assert sorted(matrix) == sorted(QUERIES)
        assert matrix["1a"] == strategy_times(env, "1a")
        assert all(times.get("host-only") is not None
                   for times in matrix.values())

    def test_parallel_sweep_bit_identical_to_serial(self, tmp_path):
        cache = str(tmp_path / "workloads")
        serial = sweep_job_matrix(
            query_names=QUERIES, workers=1, env_kwargs=dict(ENV_KWARGS),
            workload_cache_dir=cache)
        parallel = sweep_job_matrix(
            query_names=QUERIES, workers=2, env_kwargs=dict(ENV_KWARGS),
            workload_cache_dir=cache)
        assert json.dumps(serial) == json.dumps(parallel)

    def test_on_result_streams_in_sorted_order(self):
        env = build_environment(**ENV_KWARGS)
        seen = []
        sweep_job_matrix(query_names=list(reversed(QUERIES)), workers=1,
                         env=env, on_result=lambda name, _t: seen.append(name))
        assert seen == sorted(QUERIES)

    def test_default_workers_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        assert default_workers() == 4
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "junk")
        assert default_workers() == 1


class TestWorkloadCache:
    def test_cache_file_created(self, tmp_path):
        build_environment(workload_cache_dir=str(tmp_path), **ENV_KWARGS)
        assert list(tmp_path.glob("imdb-*.pkl"))

    def test_second_build_skips_generation(self, tmp_path, monkeypatch):
        first = build_environment(workload_cache_dir=str(tmp_path),
                                  **ENV_KWARGS)

        def no_generation(_spec):
            raise AssertionError("generator must not run on a cache hit")
        monkeypatch.setattr(loader, "DatasetGenerator", no_generation)
        second = build_environment(workload_cache_dir=str(tmp_path),
                                   **ENV_KWARGS)
        assert second.total_rows == first.total_rows
        assert second.total_bytes == first.total_bytes

    def test_cache_keyed_by_spec(self, tmp_path):
        build_environment(workload_cache_dir=str(tmp_path), **ENV_KWARGS)
        build_environment(workload_cache_dir=str(tmp_path),
                          scale=ENV_KWARGS["scale"], seed=99)
        assert len(list(tmp_path.glob("imdb-*.pkl"))) == 2

    def test_cached_build_identical_to_fresh(self, tmp_path):
        cached = build_environment(workload_cache_dir=str(tmp_path),
                                   **ENV_KWARGS)
        recached = build_environment(workload_cache_dir=str(tmp_path),
                                     **ENV_KWARGS)
        fresh = build_environment(**ENV_KWARGS)
        assert (strategy_times(cached, "1a")
                == strategy_times(recached, "1a")
                == strategy_times(fresh, "1a"))

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", str(tmp_path))
        build_environment(**ENV_KWARGS)
        assert list(tmp_path.glob("imdb-*.pkl"))
