"""Concurrent workload scheduler (repro.sched).

Pins the contract of docs/concurrency.md: a seeded workload of JOB
queries on one shared simulated device + host completes with result rows
identical to serial execution, never over-subscribes the device DRAM
budget or any BusyResource, and reproduces its timeline byte for byte
from the same seed.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.concurrency import percentile, run_concurrency_benchmark
from repro.context import ExecutionContext
from repro.core import DeviceLoad, ExecutionStrategy, PlanningContext
from repro.core.cost_model import MAX_PRICED_UTILIZATION
from repro.engine.stacks import Stack
from repro.errors import ReproError
from repro.faults import CommandFaultModel, FaultPlan
from repro.sched import (ClosedLoopArrivals, OpenLoopArrivals,
                         WorkloadScheduler, assign_clients)
from repro.workloads.job_queries import query

#: The acceptance mix: >= 8 queries spanning host-leaning and
#: device-leaning plans (same mix the benchmark defaults to).
MIX = ["1a", "2a", "3b", "4a", "6a", "8c", "16b", "17e"]
#: Cheap subset for the hypothesis sweeps.
FAST = ["1a", "2a", "3b", "4a", "6a"]


def run_closed(env, names, clients=4, think_time=0.0, seed=11, ctx=None,
               max_inflight=None):
    sched = WorkloadScheduler(env, ctx=ctx, max_inflight=max_inflight)
    sched.submit_closed_loop(names, ClosedLoopArrivals(
        clients=clients, think_time=think_time, seed=seed))
    return sched.run()


@pytest.fixture(scope="module")
def serial_rows(job_env):
    """Canonical host-only rows per query name, computed once."""
    rows = {}
    for name in MIX:
        plan = job_env.runner.plan(query(name))
        rows[name] = job_env.run(plan, Stack.NATIVE).result.sorted_rows()
    return rows


@pytest.fixture(scope="module")
def acceptance(job_env):
    """The >= 8-query closed-loop acceptance run, shared by assertions."""
    return run_closed(job_env, MIX, clients=4, think_time=0.001, seed=11)


class TestAcceptance:
    def test_all_queries_complete(self, acceptance):
        assert len(acceptance.jobs) == len(MIX)
        assert len(acceptance.completed()) == len(MIX)
        assert all(job.error is None for job in acceptance.jobs)

    def test_rows_identical_to_serial(self, acceptance, serial_rows):
        for job in acceptance.jobs:
            assert (job.report.result.sorted_rows()
                    == serial_rows[job.name]), job.label

    def test_queries_actually_overlap(self, acceptance):
        # The workload is concurrent, not accidentally serialized: some
        # query is admitted before an earlier one completes.
        intervals = sorted((job.admitted_at, job.completed_at)
                           for job in acceptance.jobs)
        assert any(intervals[i + 1][0] < intervals[i][1]
                   for i in range(len(intervals) - 1))

    def test_device_budget_respected(self, acceptance, job_env):
        assert 0 < acceptance.peak_reserved_bytes \
            <= acceptance.device_budget_bytes
        # All reservations released by the drain.
        assert job_env.device.reserved_bytes == 0

    def test_no_resource_oversubscription(self, acceptance):
        # BusyResource.stats() raises ResourceError past 100%; reaching
        # here means the run survived, but check the numbers anyway.
        assert acceptance.resource_stats
        for name, stats in acceptance.resource_stats.items():
            assert 0.0 <= stats["utilization"] <= 1.0 + 1e-9, name

    def test_latency_and_throughput_reported(self, acceptance):
        latencies = acceptance.latencies()
        assert len(latencies) == len(MIX)
        assert all(value > 0 for value in latencies)
        assert acceptance.queries_per_second() > 0
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        assert 0 < p50 <= p99 <= max(latencies)

    def test_byte_for_byte_deterministic(self, job_env, acceptance):
        replay = run_closed(job_env, MIX, clients=4, think_time=0.001,
                            seed=11)
        first_payload = acceptance.to_dict(include_reports=True)
        second_payload = replay.to_dict(include_reports=True)
        # Plan-cache counters are cumulative state of the shared runner,
        # not timeline state: the replay hits where the first run
        # missed.  The *timeline* must still match byte for byte.
        first_cache = first_payload.pop("plan_cache")
        second_cache = second_payload.pop("plan_cache")
        assert (first_cache["hits"] + first_cache["misses"]
                <= second_cache["hits"] + second_cache["misses"])
        first = json.dumps(first_payload, sort_keys=True)
        second = json.dumps(second_payload, sort_keys=True)
        assert first == second

    def test_different_seed_changes_the_timeline(self, job_env,
                                                 acceptance):
        other = run_closed(job_env, MIX, clients=4, think_time=0.001,
                           seed=12)
        # Same queries, same rows — but the staggered/think schedule and
        # hence the makespan may move.  At minimum both runs are valid.
        assert len(other.completed()) == len(MIX)


class TestSchedulerInvariants:
    """Hypothesis sweeps over mixes, client counts and seeds."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(names=st.lists(st.sampled_from(FAST), min_size=1, max_size=5),
           clients=st.integers(min_value=1, max_value=4),
           seed=st.integers(min_value=0, max_value=999))
    def test_budget_rows_and_release(self, job_env, serial_rows, names,
                                     clients, seed):
        result = run_closed(job_env, names, clients=clients, seed=seed)
        assert len(result.completed()) == len(names)
        assert result.peak_reserved_bytes <= result.device_budget_bytes
        assert job_env.device.reserved_bytes == 0
        for stats in result.resource_stats.values():
            assert stats["utilization"] <= 1.0 + 1e-9
        for job in result.jobs:
            assert (job.report.result.sorted_rows()
                    == serial_rows[job.name]), job.label
            assert job.queue_wait >= 0
            assert job.latency > 0

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=999),
           rate=st.floats(min_value=10.0, max_value=500.0))
    def test_open_loop_deterministic(self, job_env, seed, rate):
        def run():
            sched = WorkloadScheduler(job_env)
            sched.submit_open_loop(FAST, OpenLoopArrivals(
                rate_qps=rate, seed=seed))
            return sched.run()

        first, second = run(), run()
        first_payload = first.to_dict(include_reports=True)
        second_payload = second.to_dict(include_reports=True)
        # Cumulative runner state, not timeline state (see
        # test_byte_for_byte_deterministic).
        first_payload.pop("plan_cache")
        second_payload.pop("plan_cache")
        assert (json.dumps(first_payload, sort_keys=True)
                == json.dumps(second_payload, sort_keys=True))


class TestAdmissionControl:
    def test_max_inflight_serializes(self, job_env):
        free = run_closed(job_env, MIX, clients=4, seed=11)
        capped = run_closed(job_env, MIX, clients=4, seed=11,
                            max_inflight=1)
        assert len(capped.completed()) == len(MIX)
        # One-at-a-time admission cannot beat unconstrained admission.
        assert capped.makespan >= free.makespan
        # And truly serial: no two executions overlap.
        intervals = sorted((job.admitted_at, job.completed_at)
                           for job in capped.jobs)
        assert all(intervals[i + 1][0] >= intervals[i][1] - 1e-12
                   for i in range(len(intervals) - 1))

    def test_pressure_produces_queueing(self, job_env):
        sched = WorkloadScheduler(job_env)
        sched.submit_open_loop(MIX * 2, OpenLoopArrivals(
            rate_qps=2000.0, seed=3))
        result = sched.run()
        assert len(result.completed()) == len(MIX) * 2
        assert any(job.queue_wait > 0 for job in result.jobs)
        # Load-aware placement sheds marginal queries to the host under
        # this much pressure.
        assert result.placements().get("host-only", 0) > 0


class TestLoadAwarePlacement:
    def test_load_scales_inflate_device_costs(self):
        idle = DeviceLoad()
        assert idle.compute_scale() == 1.0
        assert idle.transfer_scale() == 1.0
        hot = DeviceLoad(core_utilization=0.5, link_utilization=0.5,
                         reserved_fraction=0.5)
        assert hot.compute_scale() == pytest.approx(3.0)   # 1.5 / 0.5
        assert hot.transfer_scale() == pytest.approx(2.0)
        saturated = DeviceLoad(core_utilization=1.0, link_utilization=1.0)
        cap = 1.0 / (1.0 - MAX_PRICED_UTILIZATION)
        assert saturated.compute_scale() == pytest.approx(cap)
        assert saturated.transfer_scale() == pytest.approx(cap)

    def test_planner_decisions_shift_under_load(self, job_env):
        hot = DeviceLoad(core_utilization=0.94, link_utilization=0.94,
                         reserved_fraction=0.9)
        shifted = 0
        for name in MIX:
            plan = job_env.runner.plan(query(name))
            relaxed = job_env.planner.decide(plan)
            loaded = job_env.planner.decide(
                plan, context=PlanningContext(device_load=hot))
            for label, cost in loaded.estimated_costs.items():
                if label != "host-only" and label in relaxed.estimated_costs:
                    assert cost >= relaxed.estimated_costs[label]
            if (relaxed.strategy is not ExecutionStrategy.HOST_ONLY
                    and loaded.strategy is ExecutionStrategy.HOST_ONLY):
                shifted += 1
        assert shifted > 0   # a near-saturated device repels offloads


class TestFaultyWorkload:
    def test_mid_workload_fallback_keeps_rows(self, job_env, serial_rows):
        faults = FaultPlan(seed=5,
                           commands=CommandFaultModel(fail_first=8))
        result = run_closed(job_env, MIX, clients=4, seed=11,
                            ctx=ExecutionContext(faults=faults))
        assert len(result.completed()) == len(MIX)
        placements = result.placements()
        assert placements.get("host-fallback", 0) > 0
        for job in result.jobs:
            assert (job.report.result.sorted_rows()
                    == serial_rows[job.name]), job.label
            if job.placement == "host-fallback":
                assert job.report.fallback_from is not None
                assert job.report.retries > 0
                assert job.error is not None
        assert job_env.device.reserved_bytes == 0


class TestArrivals:
    def test_open_loop_is_seed_deterministic(self):
        spec = OpenLoopArrivals(rate_qps=100.0, seed=4)
        assert spec.schedule(MIX) == spec.schedule(MIX)
        other = OpenLoopArrivals(rate_qps=100.0, seed=5)
        assert spec.schedule(MIX) != other.schedule(MIX)
        times = [at for at, _ in spec.schedule(MIX)]
        assert times == sorted(times)
        assert all(at > 0 for at in times)

    def test_open_loop_rejects_bad_rate(self):
        with pytest.raises(ReproError):
            OpenLoopArrivals(rate_qps=0.0).schedule(MIX)

    def test_closed_loop_start_times(self):
        assert ClosedLoopArrivals(clients=3).start_times() == [0.0] * 3
        staggered = ClosedLoopArrivals(clients=3, stagger=0.01, seed=2)
        times = staggered.start_times()
        assert times == sorted(times)
        assert all(0.0 <= at <= 0.01 for at in times)
        assert times == staggered.start_times()
        with pytest.raises(ReproError):
            ClosedLoopArrivals(clients=0).start_times()

    def test_assign_clients_round_robin(self):
        queues = assign_clients(["a", "b", "c", "d", "e"], 2)
        assert queues == [["a", "c", "e"], ["b", "d"]]
        with pytest.raises(ReproError):
            assign_clients(["a"], 0)


class TestPercentile:
    def test_interpolates(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_rejects_bad_input(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)
        with pytest.raises(ReproError):
            percentile([1.0], 1.5)


class TestBenchmark:
    def test_summary_shape(self, job_env):
        summary = run_concurrency_benchmark(
            job_env, query_names=FAST, mode="closed", clients=2,
            think_time=0.001, seed=11, include_jobs=False)
        assert summary["schema_version"] == 1
        assert summary["mode"] == "closed"
        assert summary["queries"] == len(FAST)
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert summary["latency"][key] > 0
        assert summary["queries_per_second"] > 0
        assert set(summary["resource_utilization"]) \
            == {"pcie_link", "device_core1", "host_cpu"}
        assert summary["device"]["peak_reserved_bytes"] \
            <= summary["device"]["budget_bytes"]
        assert "jobs" not in summary


class TestDeadlines:
    """Per-job deadlines: queued jobs shed, in-flight offloads cancelled.

    Calibrated against the job's own fault-free makespan so the tests
    hold at any dataset scale.  Deadline handling must keep exact
    reservation accounting — no device DRAM stays reserved and no
    BusyResource stays booked for a cancelled offload.
    """

    def _solo_makespan(self, env, name):
        sched = WorkloadScheduler(env)
        sched.submit(name, at=0.0)
        return sched.run().makespan

    def test_queued_job_shed_at_deadline(self, job_env):
        makespan = self._solo_makespan(job_env, "1a")
        sched = WorkloadScheduler(job_env, max_inflight=1)
        sched.submit("1a", at=0.0)
        sched.submit("1a", at=0.0)
        # Third job can never be admitted before its deadline expires.
        sched.submit("1a", at=0.0, deadline=0.5 * makespan)
        result = sched.run()

        assert len(result.completed()) == 2
        (shed,) = result.shed()
        assert shed.placement == "deadline-shed"
        assert shed.report is None
        assert shed.shed_at == pytest.approx(0.5 * makespan)
        assert "shed" in shed.error
        assert job_env.device.reserved_bytes == 0
        payload = result.to_dict()
        assert payload["schema_version"] == 3
        assert payload["shed_jobs"] == 1

    def test_inflight_offload_cancelled_at_deadline(self, job_env):
        makespan = self._solo_makespan(job_env, "8c")
        # Fault-free premise: 8c offloads (placement Hk, not host-only).
        sched = WorkloadScheduler(job_env)
        sched.submit("8c", at=0.0)
        baseline = sched.run().jobs[0]
        assert baseline.placement.startswith("H"), baseline.placement

        sched = WorkloadScheduler(job_env)
        sched.submit("8c", at=0.0, deadline=0.5 * makespan)
        result = sched.run()

        (job,) = result.jobs
        assert job.shed_at is not None
        assert job.report is None
        assert "offload cancelled" in job.error
        assert result.to_dict()["shed_jobs"] == 1
        # Exact accounting: the cancelled offload released its pipeline
        # reservation and gave back the unserved resource tail.
        assert job_env.device.reserved_bytes == 0
        for resource in sched.kernel.resources():
            assert resource.free_at <= job.shed_at + 1e-9, resource

    def test_context_deadline_is_the_default(self, job_env):
        makespan = self._solo_makespan(job_env, "1a")
        ctx = ExecutionContext(deadline=0.25 * makespan)
        sched = WorkloadScheduler(job_env, ctx=ctx, max_inflight=1)
        sched.submit("1a", at=0.0)
        sched.submit("1a", at=0.0)
        result = sched.run()
        assert result.jobs[0].deadline == 0.25 * makespan
        assert len(result.shed()) >= 1

    def test_generous_deadline_changes_nothing(self, job_env):
        def run_once(deadline):
            sched = WorkloadScheduler(job_env)
            for name in FAST:
                sched.submit(name, at=0.0, deadline=deadline)
            return json.dumps(sched.run().to_dict(), sort_keys=True)

        relaxed = json.loads(run_once(3600.0))
        unbounded = json.loads(run_once(None))
        for job, ref in zip(relaxed["jobs"], unbounded["jobs"]):
            assert job["deadline"] == 3600.0
            job["deadline"] = None
            assert job == ref
