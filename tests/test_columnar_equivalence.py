"""Columnar executor ≡ row-at-a-time reference, counter for counter.

The vectorized :class:`PipelineExecutor` exchanges
:class:`~repro.columns.ColumnBatch` values but must reproduce the
retained :class:`~repro.engine.rowref.RowPipelineExecutor` exactly:
identical result rows (values *and* order) and identical
:class:`WorkCounters` — the invariant that keeps every golden trace,
differential suite and chaos audit byte-identical across the columnar
rewrite (``docs/engine.md``).

Hypothesis samples the sqlgen fuzz corpus (the same seed space the
differential harness sweeps); a JOB sample pins the hand-written
workload too.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columns import ColumnBatch
from repro.engine.counters import WorkCounters
from repro.engine.pipeline import PipelineConfig, PipelineExecutor, finalize
from repro.engine.rowref import RowPipelineExecutor, finalize_rows
from repro.query.ast import conjuncts
from repro.workloads.job_queries import query as job_query
from repro.workloads.sqlgen import RandomSqlGenerator

#: Same corpus seed the differential fuzz harness pins (seed 7); indexes
#: range over the CI sweep's prefix so failures shrink to a corpus slot.
_CORPUS_SEED = 7
_INDEXES = st.integers(min_value=0, max_value=120)

_PROPERTY = settings(max_examples=30, deadline=None,
                     suppress_health_check=[
                         HealthCheck.function_scoped_fixture])


def _run_columnar(catalog, plan):
    counters = WorkCounters()
    executor = PipelineExecutor(catalog, PipelineConfig(), counters)
    batch, _row_bytes = executor.run(
        plan.entries, plan.spec.tables,
        residual_conjuncts=conjuncts(plan.residual))
    assert isinstance(batch, ColumnBatch)
    rows, columns = finalize(batch, plan.select_items, plan.group_by,
                             counters, limit=plan.limit)
    return rows, columns, counters.as_dict()


def _run_reference(catalog, plan):
    counters = WorkCounters()
    executor = RowPipelineExecutor(catalog, PipelineConfig(), counters)
    rows, _row_bytes = executor.run(
        plan.entries, plan.spec.tables,
        residual_conjuncts=conjuncts(plan.residual))
    assert isinstance(rows, list)
    out, columns = finalize_rows(rows, plan.select_items, plan.group_by,
                                 counters, limit=plan.limit)
    return out, columns, counters.as_dict()


def _assert_equivalent(env, sql):
    plan = env.runner.plan(sql)
    got_rows, got_cols, got_counters = _run_columnar(env.catalog, plan)
    ref_rows, ref_cols, ref_counters = _run_reference(env.catalog, plan)
    assert got_cols == ref_cols
    assert got_rows == ref_rows          # values AND order
    assert got_counters == ref_counters  # work accounting, not just rows


@given(index=_INDEXES)
@_PROPERTY
def test_sqlgen_corpus_equivalence(job_env, index):
    query = RandomSqlGenerator(seed=_CORPUS_SEED).generate_one(index)
    _assert_equivalent(job_env, query.sql)


@pytest.mark.parametrize("name", ["1a", "2a", "3b", "6a", "8c", "16b"])
def test_job_sample_equivalence(job_env, name):
    _assert_equivalent(job_env, job_query(name))


def test_result_values_are_plain_python(job_env):
    # rows() must hand back pure-Python scalars so sorted_rows()'s
    # type-name sort keys match the row engine's byte for byte.
    plan = job_env.runner.plan(job_query("1a"))
    rows, _columns, _counters = _run_columnar(job_env.catalog, plan)
    for row in rows:
        for value in row.values():
            assert value is None or type(value) in (int, str), type(value)
