"""Property-based correctness: engine vs a naive reference evaluator.

A brute-force evaluator (nested loops over the raw fixture rows, no
indexes, no LSM) answers randomly generated two-table join queries; the
full engine must agree on every stack.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stacks import Stack, StackRunner
from repro.lsm.column_family import KVDatabase
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema, char_col, int_col
from repro.storage.topology import Topology
from repro.storage.flash import FlashDevice

from tests.conftest import small_lsm_config

T_ROWS = [{"id": i, "grp": i % 5, "val": (i * 7) % 40,
           "tag": f"tag-{i % 3}"} for i in range(60)]
S_ROWS = [{"id": i, "t_ref": (i * 3) % 60, "score": i % 11,
           "label": f"lbl-{i % 4}"} for i in range(90)]


@pytest.fixture(scope="module")
def prop_runner():
    flash = FlashDevice()
    db = KVDatabase(flash=flash, default_config=small_lsm_config())
    catalog = Catalog(db)
    t = catalog.create_table(TableSchema(
        "t_tab", (int_col("id", False), int_col("grp"), int_col("val"),
                  char_col("tag", 8)), "id", ("grp",)))
    s = catalog.create_table(TableSchema(
        "s_tab", (int_col("id", False), int_col("t_ref"), int_col("score"),
                  char_col("label", 8)), "id", ("t_ref",)))
    t.insert_many(T_ROWS)
    s.insert_many(S_ROWS)
    catalog.flush_all()
    device = Topology.single(flash=flash).device
    return StackRunner(catalog, db, device, buffer_scale=0.001)


def reference(val_max, score_min, tag):
    """Brute-force: t JOIN s ON t.id = s.t_ref with the filters."""
    out = []
    for t_row in T_ROWS:
        if t_row["val"] >= val_max or t_row["tag"] != tag:
            continue
        for s_row in S_ROWS:
            if s_row["t_ref"] != t_row["id"]:
                continue
            if s_row["score"] <= score_min:
                continue
            out.append((t_row["id"], s_row["id"]))
    return sorted(out)


@given(val_max=st.integers(min_value=0, max_value=45),
       score_min=st.integers(min_value=-1, max_value=11),
       tag=st.sampled_from(["tag-0", "tag-1", "tag-2", "tag-9"]),
       stack_and_split=st.sampled_from(
           [(Stack.NATIVE, None), (Stack.BLK, None),
            (Stack.HYBRID, 0), (Stack.HYBRID, 1), (Stack.NDP, None)]))
@settings(max_examples=40, deadline=None)
def test_engine_matches_bruteforce(prop_runner, val_max, score_min, tag,
                                   stack_and_split):
    stack, split = stack_and_split
    sql = (f"SELECT t.id, s.id FROM t_tab AS t, s_tab AS s "
           f"WHERE t.val < {val_max} AND t.tag = '{tag}' "
           f"AND s.score > {score_min} AND t.id = s.t_ref")
    report = prop_runner.run(sql, stack, split_index=split)
    got = sorted((row["t.id"], row["s.id"]) for row in report.result.rows)
    assert got == reference(val_max, score_min, tag)


@given(grp=st.integers(min_value=0, max_value=6))
@settings(max_examples=20, deadline=None)
def test_aggregates_match_bruteforce(prop_runner, grp):
    sql = (f"SELECT MIN(t.val) AS lo, MAX(t.val) AS hi, "
           f"COUNT(*) AS n, SUM(t.val) AS s, AVG(t.val) AS a "
           f"FROM t_tab AS t WHERE t.grp = {grp}")
    report = prop_runner.run(sql, Stack.NATIVE)
    values = [r["val"] for r in T_ROWS if r["grp"] == grp]
    row = report.result.rows[0]
    if values:
        assert row["lo"] == min(values)
        assert row["hi"] == max(values)
        assert row["n"] == len(values)
        assert row["s"] == sum(values)
        assert row["a"] == pytest.approx(sum(values) / len(values))
    else:
        assert row["n"] == 0
        assert row["lo"] is None


@given(grp=st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_group_by_matches_bruteforce(prop_runner, grp):
    sql = ("SELECT t.tag, COUNT(*) AS n FROM t_tab AS t "
           f"WHERE t.grp = {grp} GROUP BY t.tag")
    report = prop_runner.run(sql, Stack.NATIVE)
    expected = {}
    for row in T_ROWS:
        if row["grp"] == grp:
            expected[row["tag"]] = expected.get(row["tag"], 0) + 1
    got = {row["t.tag"]: row["n"] for row in report.result.rows}
    assert got == expected
