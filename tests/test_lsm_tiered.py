"""Tests for size-tiered compaction and the strategy trade-off."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LSMError
from repro.lsm.levels import LevelStructure
from repro.lsm.store import LSMConfig, LSMTree, ReadStats
from repro.lsm.tiered import TieredCompactor
from repro.storage.flash import FlashDevice

from tests.conftest import small_lsm_config


def tiered_tree(**overrides):
    config = small_lsm_config(compaction="tiered", tiered_fanout=3,
                              **overrides)
    return LSMTree(config=config, flash=FlashDevice())


def leveled_tree(**overrides):
    return LSMTree(config=small_lsm_config(**overrides),
                   flash=FlashDevice())


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(LSMError):
            LSMConfig(compaction="cosmic")

    def test_compactor_needs_tiered_structure(self):
        with pytest.raises(ValueError):
            TieredCompactor(LevelStructure(tiered=False))


class TestTieredCompaction:
    def _load(self, tree, n=1200, keyspace=400, seed=1):
        rng = random.Random(seed)
        model = {}
        for i in range(n):
            key = f"key-{rng.randrange(keyspace):05d}".encode()
            value = f"v{i}".encode().ljust(30, b".")
            tree.put(key, value)
            model[key] = value
        tree.freeze_and_flush()
        return model

    def test_fanout_bounds_runs_per_tier(self):
        tree = tiered_tree(memtable_size=512)
        self._load(tree)
        for n in range(1, tree.levels.max_levels):
            assert len(tree.levels.level(n)) < tree.compactor.fanout

    def test_reads_correct_after_compaction(self):
        tree = tiered_tree(memtable_size=512)
        model = self._load(tree)
        assert dict(tree.scan()) == model
        for key in list(model)[:40]:
            assert tree.get(key) == model[key]

    def test_deletes_respected(self):
        tree = tiered_tree(memtable_size=512)
        model = self._load(tree)
        victims = list(model)[:50]
        for key in victims:
            tree.delete(key)
            del model[key]
        tree.freeze_and_flush()
        assert dict(tree.scan()) == model

    def test_overlapping_runs_allowed_in_deep_tiers(self):
        tree = tiered_tree(memtable_size=512)
        self._load(tree)
        # The invariant check must tolerate overlap in tiered mode.
        assert tree.levels.check_invariants() is True

    def test_write_amplification_lower_than_leveled(self):
        """The classic trade-off: tiered writes less ...."""
        tiered = tiered_tree(memtable_size=512)
        leveled = leveled_tree(memtable_size=512, level_base_bytes=1024,
                               sst_target_bytes=1024)
        for tree in (tiered, leveled):
            rng = random.Random(2)
            for i in range(3000):
                key = f"key-{rng.randrange(300):05d}".encode()
                tree.put(key, b"x" * 30)
            tree.freeze_and_flush()
        assert (tiered.compactor.stats.bytes_written
                <= leveled.compactor.stats.bytes_written)

    def test_read_amplification_higher_than_leveled(self):
        """... but reads must consult more runs."""
        tiered = tiered_tree(memtable_size=512)
        leveled = leveled_tree(memtable_size=512, level_base_bytes=1024,
                               sst_target_bytes=1024)
        for tree in (tiered, leveled):
            rng = random.Random(2)
            for i in range(3000):
                key = f"key-{rng.randrange(300):05d}".encode()
                tree.put(key, b"x" * 30)
            tree.freeze_and_flush()
        key = b"key-00007"
        assert (tiered.read_amplification(key)
                >= leveled.read_amplification(key))

    @given(st.lists(
        st.tuples(st.sampled_from(["put", "delete"]),
                  st.integers(min_value=0, max_value=40),
                  st.binary(min_size=1, max_size=8)),
        max_size=250))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_dict_model(self, ops):
        tree = tiered_tree(memtable_size=256)
        model = {}
        for op, key_n, value in ops:
            key = f"k{key_n:03d}".encode()
            if op == "put":
                tree.put(key, value)
                model[key] = value
            else:
                tree.delete(key)
                model.pop(key, None)
        tree.freeze_and_flush()
        assert dict(tree.scan()) == model
