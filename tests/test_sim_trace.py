"""Unit tests for the tracing layer (repro.sim.trace)."""

import json

import pytest

from repro.errors import ReproError
from repro.sim import (NULL_TRACER, BusyResource, EventLoop, NullTracer,
                       SimClock, Tracer, as_tracer)


class TestTracerRecords:
    def test_span_ids_are_stable_and_increasing(self):
        tracer = Tracer()
        first = tracer.span("t", "a", 0.0, 1.0)
        second = tracer.span("t", "b", 1.0, 2.0)
        assert first == 1 and second == 2
        assert [s.id for s in tracer.spans] == [1, 2]

    def test_span_fields(self):
        tracer = Tracer()
        tracer.span("host/compute", "batch 0", 1.0, 3.5,
                    category="compute", args={"placement": "HOST"})
        (span,) = tracer.spans
        assert span.track == "host/compute"
        assert span.name == "batch 0"
        assert span.category == "compute"
        assert span.duration == pytest.approx(2.5)
        assert span.args == {"placement": "HOST"}

    def test_negative_duration_rejected(self):
        with pytest.raises(ReproError):
            Tracer().span("t", "bad", 2.0, 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ReproError):
            Tracer().span("t", "bad", -1.0, 1.0)

    def test_begin_end_open_span(self):
        tracer = Tracer()
        root = tracer.begin("exec", "H2", 0.0, category="execution")
        child = tracer.span("host/compute", "a", 0.0, 1.0, parent=root)
        tracer.end(root, 5.0)
        by_id = {span.id: span for span in tracer.spans}
        assert by_id[root].end == 5.0
        assert by_id[child].parent == root

    def test_end_unknown_span_rejected(self):
        with pytest.raises(ReproError):
            Tracer().end(42, 1.0)

    def test_export_with_open_span_rejected(self):
        tracer = Tracer()
        tracer.begin("exec", "dangling", 0.0)
        with pytest.raises(ReproError):
            tracer.to_chrome()

    def test_instants_and_counters(self):
        tracer = Tracer()
        tracer.instant("events", "fire", 1.0, args={"seq": 3})
        tracer.counter("host", "work", 2.0, {"rows": 7})
        assert tracer.instants[0].time == 1.0
        assert tracer.counter_records[0].values == {"rows": 7}


class TestNullTracer:
    def test_disabled_and_inert(self):
        null = NullTracer()
        assert null.enabled is False
        assert null.span("t", "a", 0.0, 1.0) == 0
        assert null.begin("t", "a", 0.0) == 0
        null.end(0, 1.0)
        assert null.instant("t", "a", 0.0) == 0
        assert null.counter("t", "a", 0.0, {}) == 0
        assert null.metrics() == {}

    def test_as_tracer_normalisation(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        root = tracer.begin("exec", "H1", 0.0, category="execution")
        tracer.span("host/compute", "batch 0", 0.5, 1.5,
                    category="compute", parent=root)
        tracer.instant("events", "ready", 0.5)
        tracer.counter("host", "rows", 1.5, {"rows": 10})
        tracer.end(root, 2.0)
        return tracer

    def test_structure(self):
        payload = self._traced().to_chrome()
        assert set(payload) == {"displayTimeUnit", "traceEvents"}
        events = payload["traceEvents"]
        phases = sorted({event["ph"] for event in events})
        assert phases == ["C", "M", "X", "i"]
        for event in events:
            assert {"ph", "pid", "name"} <= set(event)

    def test_timestamps_are_microseconds(self):
        payload = self._traced().to_chrome()
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        batch = next(e for e in complete if e["name"] == "batch 0")
        assert batch["ts"] == pytest.approx(0.5e6)
        assert batch["dur"] == pytest.approx(1.0e6)

    def test_thread_metadata_per_track(self):
        payload = self._traced().to_chrome()
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"exec", "host/compute", "events", "host"}

    def test_parent_ids_exported(self):
        payload = self._traced().to_chrome()
        complete = {e["name"]: e for e in payload["traceEvents"]
                    if e["ph"] == "X"}
        root_id = complete["H1"]["args"]["span_id"]
        assert complete["batch 0"]["args"]["parent_span_id"] == root_id

    def test_dumps_is_canonical_and_loads(self):
        text = self._traced().dumps()
        assert json.loads(text)
        assert self._traced().dumps() == text

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write(path)
        assert json.loads(path.read_text()) == self._traced().to_chrome()


class TestMetrics:
    def test_flat_metrics(self):
        tracer = Tracer()
        tracer.span("host/compute", "a", 0.0, 1.0, category="compute")
        tracer.span("host/compute", "b", 1.0, 3.0, category="compute")
        tracer.span("resource/pcie_link", "x", 0.0, 0.5, category="busy")
        tracer.instant("events", "e", 0.0)
        metrics = tracer.metrics()
        assert metrics["spans"] == 3
        assert metrics["instants"] == 1
        assert metrics["span_time.host/compute"] == pytest.approx(3.0)
        assert metrics["category_time.busy"] == pytest.approx(0.5)


class TestKernelIntegration:
    def test_busy_resource_emits_busy_and_queue_spans(self):
        tracer = Tracer()
        resource = BusyResource("pcie_link", tracer=tracer)
        resource.acquire(0.0, 2.0, label="push 0")
        resource.acquire(1.0, 1.0, label="fetch 0")
        busy = [s for s in tracer.spans if s.category == "busy"]
        queue = [s for s in tracer.spans if s.category == "queue"]
        assert [(s.start, s.end) for s in busy] == [(0.0, 2.0), (2.0, 3.0)]
        assert [(s.start, s.end) for s in queue] == [(1.0, 2.0)]
        assert busy[0].track == "resource/pcie_link"
        assert queue[0].track == "resource/pcie_link/queue"
        assert queue[0].args["wait"] == pytest.approx(1.0)

    def test_event_loop_emits_instants(self):
        tracer = Tracer()
        loop = EventLoop(SimClock(), tracer=tracer)
        loop.schedule_at(1.0, lambda: None, label="tick")
        loop.schedule_at(2.0, lambda: None)
        loop.run()
        assert [(i.name, i.time) for i in tracer.instants] == [
            ("tick", 1.0), ("event", 2.0)]

    def test_untraced_kernel_records_nothing(self):
        resource = BusyResource("core")
        assert resource.tracer is NULL_TRACER
        resource.acquire(0.0, 1.0)
        loop = EventLoop(SimClock())
        loop.schedule_at(0.0, lambda: None)
        loop.run()
        assert loop.tracer is NULL_TRACER
