"""Fault injection and graceful degradation (repro.faults).

Pins down the robustness contract of docs/robustness.md: fault plans are
deterministic and zero-cost when off, transient failures retry with
backoff in simulated time, exhausting the retries falls back to a
correct host-only execution, and every degradation leaves an audit trail
(report resilience fields, "faults" trace track).
"""

import pytest

from repro.bench.chaos import default_split
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import (DeviceOverloadError, ExecutionError, ReproError,
                          RetriesExhaustedError, TransientDeviceError)
from repro.faults import (FAULTS_TRACK, NULL_INJECTOR, NULL_PLAN,
                          CommandFaultModel, CoreFaultModel, DramFaultModel,
                          FaultPlan, FaultWindow, FlashFaultModel,
                          LinkFaultModel, RetryPolicy, as_injector)
from repro.sim import Tracer
from repro.storage.flash import FlashDevice
from repro.workloads.job_queries import query

QUERY = "1a"


def _plan_and_split(job_env):
    plan = job_env.runner.plan(query(QUERY))
    return plan, default_split(job_env.runner, plan)


def _report_dict(report):
    return report.to_dict(include_rows=True, include_timeline=True)


class TestPlanBasics:
    def test_default_plan_is_disabled(self):
        assert not NULL_PLAN.enabled
        assert NULL_PLAN.injector() is NULL_INJECTOR
        assert as_injector(None) is NULL_INJECTOR
        assert as_injector(NULL_PLAN) is NULL_INJECTOR

    def test_enabled_plan_gets_fresh_injectors(self):
        plan = FaultPlan(commands=CommandFaultModel(fail_first=1))
        assert plan.enabled
        assert plan.injector() is not plan.injector()

    def test_error_hierarchy(self):
        assert issubclass(TransientDeviceError, ExecutionError)
        assert issubclass(RetriesExhaustedError, ExecutionError)
        assert issubclass(ExecutionError, ReproError)

    def test_invalid_models_rejected(self):
        with pytest.raises(ReproError):
            CommandFaultModel(probability=1.5)
        with pytest.raises(ReproError):
            FaultWindow(0.5, 0.1)
        with pytest.raises(ReproError):
            LinkFaultModel(slowdown=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0)
        assert policy.backoff(0) == 1e-3
        assert policy.backoff(2) == 4e-3


class TestZeroCostOff:
    def test_disabled_plan_is_byte_identical(self, job_env):
        plan, split = _plan_and_split(job_env)
        bare = job_env.run(plan, Stack.HYBRID, split_index=split)
        nulled = job_env.run(plan, Stack.HYBRID, split_index=split,
                             ctx=ExecutionContext(faults=NULL_PLAN))
        assert _report_dict(bare) == _report_dict(nulled)
        # Schema v2: the resilience block is always present; a clean run
        # reports it as all-zero.
        resilience = _report_dict(bare)["resilience"]
        assert resilience["retries"] == 0
        assert resilience["fallback_from"] is None
        assert resilience["faults_injected"] == {}

    def test_disabled_plan_full_ndp_identical(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        bare = job_env.run(plan, Stack.NDP)
        nulled = job_env.run(plan, Stack.NDP,
                             ctx=ExecutionContext(faults=FaultPlan(seed=99)))
        assert _report_dict(bare) == _report_dict(nulled)


class TestDeterminism:
    def test_same_seed_same_run(self, job_env):
        plan, split = _plan_and_split(job_env)
        faults = FaultPlan(seed=11,
                           commands=CommandFaultModel(probability=0.5),
                           flash=FlashFaultModel(probability=0.1))
        first = job_env.run(plan, Stack.HYBRID, split_index=split,
                            ctx=ExecutionContext(faults=faults))
        second = job_env.run(plan, Stack.HYBRID, split_index=split,
                             ctx=ExecutionContext(faults=faults))
        assert _report_dict(first) == _report_dict(second)

    def test_different_seed_differs(self, job_env):
        plan, split = _plan_and_split(job_env)
        def run(seed):
            return job_env.run(
                plan, Stack.HYBRID, split_index=split,
                ctx=ExecutionContext(faults=FaultPlan(
                    seed=seed,
                    commands=CommandFaultModel(probability=0.5))))
        reports = [run(seed) for seed in range(6)]
        assert len({report.retries for report in reports}) > 1


class TestRetries:
    def test_transient_failures_retry_and_succeed(self, job_env):
        plan, split = _plan_and_split(job_env)
        baseline = job_env.run(plan, Stack.NATIVE)
        faults = FaultPlan(commands=CommandFaultModel(fail_first=2))
        report = job_env.run(plan, Stack.HYBRID, split_index=split,
                             ctx=ExecutionContext(faults=faults))
        assert report.strategy == f"H{split}"
        assert report.fallback_from is None
        assert report.retries == 2
        assert report.faults_injected == {"transient_command": 2}
        assert report.wasted_device_time > 0.0
        assert (report.result.sorted_rows()
                == baseline.result.sorted_rows())

    def test_retries_are_charged_to_the_timeline(self, job_env):
        plan, split = _plan_and_split(job_env)
        clean = job_env.run(plan, Stack.HYBRID, split_index=split)
        faulted = job_env.run(
            plan, Stack.HYBRID, split_index=split,
            ctx=ExecutionContext(
                faults=FaultPlan(commands=CommandFaultModel(fail_first=2))))
        assert faulted.total_time > clean.total_time
        labels = [phase.label for phase in faulted.timeline]
        assert "retry backoff 1" in labels
        assert "retry backoff 2" in labels

    def test_exhaustion_raises_from_the_executor(self, job_env):
        plan, split = _plan_and_split(job_env)
        faults = FaultPlan(commands=CommandFaultModel(fail_first=8))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            job_env.runner._cooperative.run_split(
                plan, split, ExecutionContext(faults=faults))
        failure = excinfo.value
        assert failure.strategy == f"H{split}"
        assert failure.retries == 1 + faults.retry.max_retries
        assert failure.wasted_time > 0.0


class TestFallback:
    def test_exhausted_split_falls_back_to_host(self, job_env):
        plan, split = _plan_and_split(job_env)
        baseline = job_env.run(plan, Stack.NATIVE)
        faults = FaultPlan(commands=CommandFaultModel(fail_first=8))
        report = job_env.run(plan, Stack.HYBRID, split_index=split,
                             ctx=ExecutionContext(faults=faults))
        assert report.strategy == "host-only(fallback)"
        assert report.fallback_from == f"H{split}"
        assert report.retries == 1 + faults.retry.max_retries
        assert report.wasted_device_time > 0.0
        assert report.total_time > baseline.total_time
        assert (report.result.sorted_rows()
                == baseline.result.sorted_rows())
        assert "resilience" in report.to_dict()

    def test_exhausted_full_ndp_falls_back_to_host(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        faults = FaultPlan(commands=CommandFaultModel(fail_first=8))
        baseline = job_env.run(plan, Stack.NATIVE)
        report = job_env.run(plan, Stack.NDP,
                             ctx=ExecutionContext(faults=faults))
        assert report.strategy == "host-only(fallback)"
        assert report.fallback_from == "full-ndp"
        assert (report.result.sorted_rows()
                == baseline.result.sorted_rows())

    def test_full_ndp_retries_and_succeeds(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        report = job_env.run(
            plan, Stack.NDP,
            ctx=ExecutionContext(
                faults=FaultPlan(commands=CommandFaultModel(fail_first=1))))
        assert report.strategy == "full-ndp"
        assert report.retries == 1
        assert report.faults_injected == {"transient_command": 1}


class TestFlashFaults:
    def test_ecc_retries_add_latency(self):
        clean = FlashDevice()
        plan = FaultPlan(flash=FlashFaultModel(probability=1.0,
                                               ecc_retry_latency=150e-6))
        faulty = FlashDevice(fault_injector=plan.injector())
        nbytes = 64 * clean.geometry.page_size
        slow = faulty.internal_read_time(nbytes)
        fast = clean.internal_read_time(nbytes)
        assert slow == pytest.approx(fast + 64 * 150e-6)

    def test_ecc_shows_up_in_run_counts(self, job_env):
        plan, split = _plan_and_split(job_env)
        clean = job_env.run(plan, Stack.HYBRID, split_index=split)
        report = job_env.run(
            plan, Stack.HYBRID, split_index=split,
            ctx=ExecutionContext(
                faults=FaultPlan(flash=FlashFaultModel(probability=1.0))))
        assert report.faults_injected.get("flash_ecc_retry", 0) > 0
        assert report.total_time > clean.total_time
        assert (report.result.sorted_rows()
                == clean.result.sorted_rows())


class TestLinkDramCoreFaults:
    def test_link_windows_scale_transfers(self):
        plan = FaultPlan(link=LinkFaultModel(
            windows=(FaultWindow(1.0, 2.0),), slowdown=4.0))
        injector = plan.injector()
        assert injector.scale_transfer(1.5, 0.01) == 0.04
        assert injector.scale_transfer(2.5, 0.01) == 0.01
        assert injector.faults_injected() == {"link_degraded": 1}

    def test_admission_waits_out_the_pressure_window(self):
        plan = FaultPlan(dram=DramFaultModel(
            windows=(FaultWindow(0.0, 0.002),), shrink_bytes=1 << 40))
        delay = plan.injector().admission_delay(1024, 4096)
        assert delay == 0.002

    def test_admission_times_out_to_overload(self):
        plan = FaultPlan(dram=DramFaultModel(
            windows=(FaultWindow(0.0, 1.0),), shrink_bytes=1 << 40))
        with pytest.raises(DeviceOverloadError):
            plan.injector().admission_delay(1024, 4096)

    def test_admission_wait_appears_in_the_report(self, job_env):
        plan, split = _plan_and_split(job_env)
        report = job_env.run(
            plan, Stack.HYBRID, split_index=split,
            ctx=ExecutionContext(faults=FaultPlan(dram=DramFaultModel(
                windows=(FaultWindow(0.0, 0.001),),
                shrink_bytes=1 << 40))))
        assert report.admission_wait_time == 0.001
        assert report.faults_injected == {"dram_admission_wait": 1}
        labels = [phase.label for phase in report.timeline]
        assert "buffer admission wait" in labels

    def test_core_offline_chains_windows(self):
        plan = FaultPlan(core=CoreFaultModel(
            windows=(FaultWindow(0.0, 0.5), FaultWindow(0.4, 1.0))))
        injector = plan.injector()
        assert injector.core_offline_until(0.1) == 1.0
        assert injector.core_offline_until(2.0) == 2.0

    def test_core_brownout_is_a_device_stall(self, job_env):
        plan, split = _plan_and_split(job_env)
        clean = job_env.run(plan, Stack.HYBRID, split_index=split)
        report = job_env.run(
            plan, Stack.HYBRID, split_index=split,
            ctx=ExecutionContext(faults=FaultPlan(core=CoreFaultModel(
                windows=(FaultWindow(0.0, 0.002),)))))
        assert report.faults_injected.get("core_offline", 0) > 0
        assert report.device_stall_time > clean.device_stall_time


class TestFaultTrace:
    def test_fault_instants_land_on_the_faults_track(self, job_env):
        plan, split = _plan_and_split(job_env)
        tracer = Tracer()
        job_env.run(plan, Stack.HYBRID, split_index=split,
                    ctx=ExecutionContext(
                        tracer=tracer,
                        faults=FaultPlan(
                            commands=CommandFaultModel(fail_first=8))))
        names = [record.name for record in tracer.instants
                 if record.track == FAULTS_TRACK]
        assert names.count("transient-command-failure") == 4
        assert "retries-exhausted" in names
        assert "fallback" in names

    def test_faultless_trace_has_no_faults_track(self, job_env):
        plan, split = _plan_and_split(job_env)
        tracer = Tracer()
        job_env.run(plan, Stack.HYBRID, split_index=split,
                    ctx=ExecutionContext(tracer=tracer))
        assert not [record for record in tracer.instants
                    if record.track == FAULTS_TRACK]
