"""Tests for update-aware, intervention-free NDP (paper §2.1).

The NDP command carries a shared-state snapshot; on-device execution
must (a) see unflushed MemTable updates that existed at command time,
and (b) NOT see host writes issued after the command was prepared.
"""

import pytest

from repro.engine.stacks import Stack, StackRunner
from repro.errors import CatalogError
from repro.lsm.snapshot import SharedState
from repro.query.ast import conjuncts
from repro.relational.scan import ScanRequest
from repro.relational.snapshot_table import SnapshotCatalog, SnapshotTable
from repro.storage.topology import Topology

from tests.conftest import MINI_JOIN_SQL


@pytest.fixture
def runner(mini_catalog, kv_db, flash):
    return StackRunner(mini_catalog, kv_db,
                       Topology.single(flash=flash).device,
                       buffer_scale=0.001)


class TestSnapshotTable:
    def test_sees_unflushed_updates(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        title.insert({"id": 9000, "title": "Unflushed",
                      "production_year": 1970, "kind_id": 1})
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        row = snap.get_by_pk(9000)
        assert row["title"] == "Unflushed"

    def test_blind_to_later_writes(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        title.insert({"id": 9001, "title": "Later",
                      "production_year": 1980, "kind_id": 1})
        assert snap.get_by_pk(9001) is None
        assert title.get_by_pk(9001) is not None

    def test_blind_to_later_deletes(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        title.delete(5)
        assert snap.get_by_pk(5) is not None
        assert title.get_by_pk(5) is None

    def test_scan_matches_live_at_capture_time(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        live = sorted(r["id"] for r in title.scan())
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        assert sorted(r["id"] for r in snap.scan()) == live

    def test_secondary_index_lookup_through_snapshot(self, mini_catalog,
                                                     kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        live = sorted(r["id"] for r in
                      title.index_lookup("production_year", 1999))
        got = sorted(r["id"] for r in
                     snap.index_lookup("production_year", 1999))
        assert got == live and got

    def test_missing_index_rejected(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        with pytest.raises(CatalogError):
            list(snap.index_lookup("kind_id", 1))

    def test_pk_range_scan(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        snap = SnapshotTable(title, state)
        ids = [r["id"] for r in snap.scan(ScanRequest(pk_lo=10, pk_hi=12))]
        assert ids == [10, 11, 12]


class TestSnapshotCatalog:
    def test_resolves_only_command_tables(self, mini_catalog, kv_db):
        title = mini_catalog.table("title")
        state = SharedState.capture(kv_db, title.column_families())
        catalog = SnapshotCatalog(mini_catalog, state, {"title"})
        assert catalog.table("title").name == "title"
        with pytest.raises(CatalogError):
            catalog.table("movie_companies")


class TestEndToEndUpdateAwareness:
    def test_ndp_result_pinned_against_concurrent_writes(self, runner,
                                                         mini_catalog):
        plan = runner.plan(MINI_JOIN_SQL)
        ndp = runner.ndp_engine
        device_residual = [c for c in conjuncts(plan.residual) or []]
        command = ndp.prepare_command(plan, plan.entries,
                                      device_residual,
                                      aggregates_on_device=True)
        # Concurrent host write AFTER the command was prepared: a movie
        # that would change MIN(t.title) if visible.
        mini_catalog.table("title").insert(
            {"id": 9100, "title": "AAA First", "production_year": 1970,
             "kind_id": 0})
        mini_catalog.table("movie_companies").insert(
            {"id": 9100, "movie_id": 9100, "company_type_id": 0,
             "note": "(presents)"})
        execution = ndp.execute(command)
        ndp.release(execution)
        assert execution.result.rows[0]["movie_title"] != "AAA First"
        # A fresh host run DOES see the write.
        host = runner.run(MINI_JOIN_SQL, Stack.NATIVE)
        assert host.result.rows[0]["movie_title"] == "AAA First"

    def test_unflushed_rows_visible_to_ndp(self, runner, mini_catalog):
        # Insert BEFORE preparing the command; it stays in the memtable
        # (no flush) yet must be part of the device result.
        mini_catalog.table("title").insert(
            {"id": 9200, "title": "AAB Unflushed",
             "production_year": 1970, "kind_id": 0})
        mini_catalog.table("movie_companies").insert(
            {"id": 9200, "movie_id": 9200, "company_type_id": 0,
             "note": "(presents)"})
        report = runner.run(MINI_JOIN_SQL, Stack.NDP)
        assert report.result.rows[0]["movie_title"] == "AAB Unflushed"
