"""Tests for the top-level public API surface."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_exposed(self):
        assert repro.Stack.HYBRID.value == "hybrid"
        assert repro.ExecutionStrategy.FULL_NDP.value == "full-ndp"
        assert repro.COSMOS_PLUS.name == "cosmos-plus"

    def test_open_database_builds_environment(self):
        env = repro.open_database(scale=0.0002, seed=3)
        assert env.total_rows > 0
        assert env.catalog.table("title").row_count > 0
        report = env.run(
            "SELECT MIN(t.production_year) AS y FROM title AS t",
            repro.Stack.NATIVE)
        assert report.result.rows[0]["y"] is not None

    def test_open_database_deterministic(self):
        a = repro.open_database(scale=0.0002, seed=3)
        b = repro.open_database(scale=0.0002, seed=3)
        assert a.total_rows == b.total_rows
        sql = "SELECT MIN(t.title) AS x FROM title AS t"
        ra = a.run(sql, repro.Stack.NATIVE)
        rb = b.run(sql, repro.Stack.NATIVE)
        assert ra.result.rows == rb.result.rows
        assert ra.total_time == rb.total_time
