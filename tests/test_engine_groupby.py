"""Tests for GROUP BY execution across stacks (in-situ aggregation)."""

import pytest

from repro.engine.stacks import Stack, StackRunner
from repro.storage.topology import Topology

GROUP_SQL = """SELECT t.kind_id, COUNT(*) AS n, MIN(t.production_year) AS lo
FROM title AS t, movie_companies AS mc
WHERE t.id = mc.movie_id
GROUP BY t.kind_id"""


@pytest.fixture
def runner(mini_catalog, kv_db, flash):
    return StackRunner(mini_catalog, kv_db,
                       Topology.single(flash=flash).device,
                       buffer_scale=0.001)


def reference_groups():
    """Brute-force over the fixture data (movie i has 2 companies)."""
    groups = {}
    for mc_id in range(800):
        movie = mc_id % 400
        kind = movie % 7
        year = 1950 + movie % 70
        count, lo = groups.get(kind, (0, None))
        groups[kind] = (count + 1, year if lo is None else min(lo, year))
    return groups


class TestGroupByAcrossStacks:
    def test_host_matches_reference(self, runner):
        report = runner.run(GROUP_SQL, Stack.NATIVE)
        expected = reference_groups()
        got = {row["t.kind_id"]: (row["n"], row["lo"])
               for row in report.result.rows}
        assert got == expected

    def test_full_ndp_aggregates_on_device(self, runner):
        native = runner.run(GROUP_SQL, Stack.NATIVE)
        ndp = runner.run(GROUP_SQL, Stack.NDP)
        assert ndp.result.sorted_rows() == native.result.sorted_rows()
        assert ndp.host_counters.records_evaluated == 0

    def test_hybrid_aggregates_on_host(self, runner):
        native = runner.run(GROUP_SQL, Stack.NATIVE)
        hybrid = runner.run(GROUP_SQL, Stack.HYBRID, split_index=0)
        assert hybrid.result.sorted_rows() == native.result.sorted_rows()
        assert hybrid.host_counters.records_evaluated > 0

    def test_group_count_matches_distinct_kinds(self, runner):
        report = runner.run(GROUP_SQL, Stack.NATIVE)
        assert len(report.result) == 7
