"""Tests for host/NDP engines, stacks, and cooperative execution.

Correctness anchor: every strategy (BLK, NATIVE, H0..Hn, full NDP) must
produce the same rows.  A hand-computed reference validates the host
engine itself.
"""

import pytest

from repro.engine.stacks import Stack, StackRunner
from repro.engine.timing import ExecutionLocation
from repro.errors import DeviceOverloadError, PlanError
from repro.storage.device import SmartStorageDevice
from repro.storage.topology import Topology

from tests.conftest import MINI_JOIN_SQL


@pytest.fixture
def runner(mini_catalog, kv_db, flash):
    device = Topology.single(flash=flash).device
    return StackRunner(mini_catalog, kv_db, device, buffer_scale=0.001)


def reference_mini_join():
    """Hand-evaluated answer for MINI_JOIN_SQL over the fixture data.

    ct: only id=0 has kind 'production companies'.
    mc: company_type_id == 0 -> ids i with i % 4 == 0; all notes match
    the OR of LIKE patterns.  t: production_year between 1960 and 1980
    -> ids with 1950 + id%70 in [1960, 1980].  Join on movie_id == t.id.
    """
    matches = []
    for i in range(800):
        if i % 4 != 0:
            continue
        movie = i % 400
        year = 1950 + movie % 70
        if 1960 <= year <= 1980:
            matches.append((f"Movie {movie}", year))
    return (min(title for title, _ in matches),
            min(year for _, year in matches))


class TestHostEngine:
    def test_matches_reference(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.NATIVE)
        title, year = reference_mini_join()
        row = report.result.rows[0]
        assert row["movie_title"] == title
        assert row["yr"] == year

    def test_blk_slower_than_native(self, runner):
        blk = runner.run(MINI_JOIN_SQL, Stack.BLK)
        native = runner.run(MINI_JOIN_SQL, Stack.NATIVE)
        assert blk.total_time > native.total_time
        assert blk.result.sorted_rows() == native.result.sorted_rows()

    def test_counters_populated(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.NATIVE)
        assert report.host_counters.records_evaluated > 0
        assert report.host_counters.flash_bytes_read > 0
        assert report.host_breakdown.total == pytest.approx(
            report.total_time)


class TestAllStrategiesAgree:
    def test_results_identical_across_strategies(self, runner):
        reports = runner.run_all_splits(MINI_JOIN_SQL)
        baseline = None
        for name, report in reports.items():
            assert not isinstance(report, Exception), f"{name}: {report}"
            if baseline is None:
                baseline = report.result.sorted_rows()
            assert report.result.sorted_rows() == baseline, name

    def test_strategy_labels(self, runner):
        reports = runner.run_all_splits(MINI_JOIN_SQL)
        assert set(reports) == {"host-only", "H0", "H1", "H2", "full-ndp"}


class TestCooperativeExecution:
    def test_split_index_bounds(self, runner):
        plan = runner.plan(MINI_JOIN_SQL)
        with pytest.raises(PlanError):
            runner.run(plan, Stack.HYBRID, split_index=plan.table_count)
        with pytest.raises(PlanError):
            runner.run(plan, Stack.HYBRID)      # missing split

    def test_report_accounting(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        assert report.strategy == "H1"
        assert report.split_index == 1
        assert report.batches >= 1
        assert report.setup_time > 0
        assert report.device_busy_time > 0
        assert report.transfer_time > 0
        assert report.total_time >= report.device_busy_time

    def test_timeline_is_consistent(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        assert report.timeline
        for phase in report.timeline:
            assert phase.end >= phase.start
            assert phase.actor in ("host", "device")
            assert phase.kind in ("setup", "compute", "transfer", "wait",
                                  "stall")
        last_end = max(phase.end for phase in report.timeline)
        assert last_end == pytest.approx(report.total_time, rel=0.01)

    def test_host_waits_before_first_batch(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        assert report.host_wait_initial > 0

    def test_device_buffers_released_after_run(self, runner):
        device = runner.device
        runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=2)
        assert device.reserved_bytes == 0

    def test_buffers_released_even_on_overload(self, mini_catalog, kv_db,
                                               flash):
        from dataclasses import replace
        from repro.storage.machines import COSMOS_PLUS
        weak_spec = replace(COSMOS_PLUS,
                            temp_storage_bytes=140 * 1024 * 1024)
        weak = SmartStorageDevice(spec=weak_spec, flash=flash)
        runner = StackRunner(mini_catalog, kv_db, weak, buffer_scale=0.001)
        with pytest.raises(DeviceOverloadError):
            runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=2)
        assert weak.reserved_bytes == 0

    def test_stage_shares_sum_close_to_100(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        shares = report.host_stage_shares()
        assert 60 <= sum(shares.values()) <= 140


class TestFullNDP:
    def test_aggregates_computed_on_device(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.NDP)
        assert report.strategy == "full-ndp"
        assert report.device_counters.records_evaluated > 0
        assert report.host_counters.records_evaluated == 0
        title, year = reference_mini_join()
        assert report.result.rows[0]["movie_title"] == title

    def test_pointer_cache_engages_for_three_tables(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.NDP)
        assert report.notes["pointer_cache"] is True

    def test_row_cache_for_two_tables(self, runner):
        sql = ("SELECT MIN(t.title) AS x FROM title AS t, "
               "movie_companies AS mc WHERE t.id = mc.movie_id")
        report = runner.run(sql, Stack.NDP)
        assert report.notes["pointer_cache"] is False


class TestNDPCommand:
    def test_command_carries_shared_state(self, runner):
        plan = runner.plan(MINI_JOIN_SQL)
        ndp = runner.ndp_engine
        command = ndp.prepare_command(plan, plan.entries[:2], [])
        assert command.shared_state is not None
        assert len(command.shared_state) >= 2     # primary CFs + indexes
        assert command.payload_bytes > 256

    def test_pipeline_shape(self, runner):
        plan = runner.plan(MINI_JOIN_SQL)
        ndp = runner.ndp_engine
        command = ndp.prepare_command(plan, plan.entries, [],
                                      aggregates_on_device=False)
        selections, _secondary, joins, group_bys = command.pipeline_shape()
        assert selections == plan.table_count
        assert joins == plan.join_count
        assert group_bys == 0

    def test_can_offload_preflight(self, runner):
        plan = runner.plan(MINI_JOIN_SQL)
        assert runner.ndp_engine.can_offload(plan.entries) is True

    def test_ndp_mode_required(self, runner):
        runner.device.ndp_mode = False
        plan = runner.plan(MINI_JOIN_SQL)
        from repro.errors import OffloadError
        with pytest.raises(OffloadError):
            runner.ndp_engine.prepare_command(plan, plan.entries, [])
        runner.device.ndp_mode = True
