"""Tests for the bloom filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.bloom import BloomFilter


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=100)
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_mostly_rejects_absent_keys(self):
        bloom = BloomFilter(expected_items=1000, bits_per_key=10)
        for i in range(1000):
            bloom.add(f"present-{i}".encode())
        false_positives = sum(
            bloom.might_contain(f"absent-{i}".encode())
            for i in range(1000))
        # Theoretical FPR at 10 bits/key is ~1%; allow generous slack.
        assert false_positives < 60

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(expected_items=10)
        assert not bloom.might_contain(b"anything")

    def test_contains_operator(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add(b"k")
        assert b"k" in bloom

    def test_false_positive_rate_estimate(self):
        bloom = BloomFilter(expected_items=100, bits_per_key=10)
        assert bloom.false_positive_rate() == 0.0
        for i in range(100):
            bloom.add(str(i).encode())
        assert 0.0 < bloom.false_positive_rate() < 0.05

    def test_size_bytes(self):
        bloom = BloomFilter(expected_items=1000, bits_per_key=8)
        assert bloom.size_bytes == (1000 * 8 + 7) // 8

    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1,
                   max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_no_false_negatives(self, keys):
        bloom = BloomFilter(expected_items=len(keys))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)
