"""Invariants of the sim-kernel-backed cooperative timeline.

The cooperative executor builds its Fig-17 timeline on the
:mod:`repro.sim` resources: every interval on the PCIe link must be
serialized, phases must stay inside ``[0, total_time]``, per-resource
stats must be reported unclamped, and none of it may change the
functional result rows.
"""

import pytest

from repro.engine.cooperative import (DEVICE_RESOURCE, HOST_RESOURCE,
                                      LINK_RESOURCE)
from repro.engine.stacks import Stack, StackRunner
from repro.errors import DeviceOverloadError
from repro.storage.topology import Topology

from tests.conftest import MINI_JOIN_SQL

EMPTY_PREFIX_SQL = """SELECT MIN(t.title) AS movie_title
FROM title AS t, movie_companies AS mc
WHERE t.id = mc.movie_id
  AND t.production_year BETWEEN 3000 AND 4000"""


@pytest.fixture
def runner(mini_catalog, kv_db, flash):
    device = Topology.single(flash=flash).device
    return StackRunner(mini_catalog, kv_db, device, buffer_scale=0.001)


def link_intervals(report):
    return sorted(
        ((p.start, p.end) for p in report.timeline
         if p.resource == LINK_RESOURCE),
        key=lambda interval: interval)


class TestTimelineInvariants:
    def test_link_intervals_never_overlap(self, runner):
        plan = runner.plan(MINI_JOIN_SQL)
        for k in range(plan.table_count):
            report = runner.run(plan, Stack.HYBRID, split_index=k)
            intervals = link_intervals(report)
            assert intervals, f"H{k} should use the link"
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12, (
                    f"H{k}: link intervals [{s1}, {e1}) and [{s2}, {e2}) "
                    "overlap")

    def test_phases_non_negative_and_within_total(self, runner):
        for stack, kwargs in ((Stack.HYBRID, {"split_index": 1}),
                              (Stack.NDP, {})):
            report = runner.run(MINI_JOIN_SQL, stack, **kwargs)
            for phase in report.timeline:
                assert phase.start >= 0.0
                assert phase.end >= phase.start
                assert phase.end <= report.total_time + 1e-12

    def test_resource_stats_reported(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        assert set(report.resource_stats) == {
            LINK_RESOURCE, DEVICE_RESOURCE, HOST_RESOURCE}
        for stats in report.resource_stats.values():
            assert 0.0 <= stats["utilization"] <= 1.0
            assert stats["busy_time"] >= 0.0
            assert stats["requests"] >= 1
        link_busy = sum(end - start
                        for start, end in link_intervals(report))
        assert report.resource_stats[LINK_RESOURCE]["busy_time"] == (
            pytest.approx(link_busy))

    def test_resource_stats_in_to_dict(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        payload = report.to_dict()
        assert payload["resource_stats"][LINK_RESOURCE]["utilization"] <= 1.0

    def test_full_ndp_link_serialized(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.NDP)
        intervals = link_intervals(report)
        assert len(intervals) >= 2      # command payload + result push
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-12

    def test_wait_and_stall_accounting_matches_timeline(self, runner):
        report = runner.run(MINI_JOIN_SQL, Stack.HYBRID, split_index=1)
        waits = sum(p.duration for p in report.timeline
                    if p.actor == "host" and p.kind == "wait")
        stalls = sum(p.duration for p in report.timeline
                     if p.actor == "device" and p.kind == "stall")
        assert report.host_wait_total == pytest.approx(waits)
        assert report.device_stall_time == pytest.approx(stalls)


class TestResultsUnchanged:
    def test_splits_row_identical_to_host_only(self, runner):
        reports = runner.run_all_splits(MINI_JOIN_SQL)
        baseline = reports["host-only"].result.sorted_rows()
        for name, report in reports.items():
            assert not isinstance(report, Exception), f"{name}: {report}"
            assert report.result.sorted_rows() == baseline, name


class TestRunAllSplitsBugfixes:
    def test_key_matches_strategy_label(self, runner):
        # Regression: the BLK baseline was stored under "host-only" but
        # labelled "host-only(blk)".
        reports = runner.run_all_splits(MINI_JOIN_SQL)
        for key, report in reports.items():
            if isinstance(report, Exception):
                continue
            assert report.strategy == key

    def test_programming_errors_propagate(self, runner, monkeypatch):
        # Regression: a bare `except Exception` swallowed TypeErrors into
        # the results dict as if the strategy were infeasible.
        def explode(plan, split_index, ctx=None):
            raise TypeError("programming error")
        monkeypatch.setattr(runner._cooperative, "run_split", explode)
        with pytest.raises(TypeError):
            runner.run_all_splits(MINI_JOIN_SQL)

    def test_repro_errors_recorded_as_infeasible(self, runner, monkeypatch):
        def overload(plan, split_index, ctx=None):
            raise DeviceOverloadError("out of buffers")
        monkeypatch.setattr(runner._cooperative, "run_split", overload)
        reports = runner.run_all_splits(MINI_JOIN_SQL)
        assert all(isinstance(reports[key], DeviceOverloadError)
                   for key in reports if key.startswith("H"))


class TestZeroRowBatches:
    def test_empty_device_result_skips_transfer(self, runner):
        # Regression: empty batches used to charge a 64-byte minimum
        # transfer and emit a fetch phase.
        report = runner.run(EMPTY_PREFIX_SQL, Stack.HYBRID, split_index=0)
        assert report.intermediate_rows == 0
        assert report.transfer_time == 0.0
        assert not [p for p in report.timeline if p.kind == "transfer"]
        assert report.result.sorted_rows() == runner.run(
            EMPTY_PREFIX_SQL, Stack.BLK).result.sorted_rows()
