"""Scatter-gather cluster execution: correctness, determinism, faults.

The load-bearing claim of ``repro.cluster`` is that a scatter-gather
run over any device count returns *row-identical* results to
single-device serial execution (docs/cluster.md has the merge
argument).  These tests pin that differentially over the representative
JOB subset, plus the cluster-specific surfaces: the report's ``cluster``
block and per-device resource stats, byte-for-byte determinism,
single-device-failure re-execution, empty partitions, and the
scheduler's cluster placement mode.
"""

import json

import pytest

from repro.cluster import ClusterFaultPlan, DeviceCluster
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.faults import CommandFaultModel, FaultPlan
from repro.sched import ClosedLoopArrivals, WorkloadScheduler
from repro.sim import device_resource_names
from repro.storage.topology import PartitionSpec, Topology
from repro.workloads.job_queries import query

from tests.test_differential_job import REPRESENTATIVE


@pytest.fixture(scope="module")
def cluster2(job_env):
    """Two devices, range partitioning (the sweep's default layout)."""
    return DeviceCluster(job_env, n_devices=2,
                         partitioner=PartitionSpec("range", seed=0))


@pytest.fixture(scope="module")
def cluster4_hash(job_env):
    """Four devices, hash partitioning (logical scatter)."""
    return DeviceCluster(job_env, n_devices=4,
                         partitioner=PartitionSpec("hash", seed=0))


def serial_rows(job_env, name):
    plan = job_env.runner.plan(query(name))
    return plan, job_env.run(plan, Stack.BLK).result.sorted_rows()


class TestDifferential:
    """Cluster rows == serial rows, every representative query."""

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_two_device_range_matches_serial(self, job_env, cluster2,
                                             name):
        plan, baseline = serial_rows(job_env, name)
        report = cluster2.run(plan)
        assert report.result.sorted_rows() == baseline, name
        assert report.cluster["n_devices"] == 2

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_four_device_hash_matches_serial(self, job_env, cluster4_hash,
                                             name):
        plan, baseline = serial_rows(job_env, name)
        report = cluster4_hash.run(plan)
        assert report.result.sorted_rows() == baseline, name
        assert report.cluster["partitioner"]["kind"] == "hash"


class TestSingleDeviceEquivalence:
    """n_devices=1 is byte-for-byte the serial hybrid path."""

    @pytest.mark.parametrize("name", ["1a", "8c"])
    def test_rows_and_total_time_identical(self, job_env, name):
        cluster = DeviceCluster(job_env, n_devices=1)
        plan = job_env.runner.plan(query(name))
        split = plan.table_count - 1
        serial = job_env.run(plan, Stack.HYBRID, split_index=split)
        merged = cluster.run(plan, split_index=split)
        assert merged.result.sorted_rows() == serial.result.sorted_rows()
        assert merged.total_time == serial.total_time


class TestReportShape:
    def test_cluster_block_and_per_device_resources(self, cluster2):
        report = cluster2.run(query("8c"))
        block = report.cluster
        assert block["n_devices"] == 2
        assert block["partitioner"] == {"kind": "range", "seed": 0,
                                        "n_partitions": 2}
        assert block["driving_table"] == "role_type"
        assert len(block["partitions"]) == 2
        assert block["failed_devices"] == []
        for index in range(2):
            link, core = device_resource_names(index)
            assert link in report.resource_stats
            assert core in report.resource_stats
        assert "host_cpu" in report.resource_stats

    def test_utilization_never_exceeds_one(self, cluster4_hash):
        report = cluster4_hash.run(query("8c"))
        for name, stats in report.resource_stats.items():
            assert 0.0 <= stats["utilization"] <= 1.0 + 1e-9, name

    def test_split_pinning_places_every_partition_at_hk(self, cluster2):
        report = cluster2.run(query("1a"), split_index=0)
        for part in report.cluster["partitions"]:
            assert part["placement"].startswith("H0@d"), part
        assert report.split_index == 0

    def test_report_round_trips_to_json(self, cluster2):
        payload = cluster2.run(query("3b")).to_dict(include_timeline=True)
        assert payload["cluster"]["n_devices"] == 2
        assert json.loads(json.dumps(payload)) == payload


class TestDeterminism:
    def test_two_fresh_clusters_byte_identical(self, job_env):
        def run_once():
            cluster = DeviceCluster(
                job_env, n_devices=2,
                partitioner=PartitionSpec("range", seed=0))
            report = cluster.run(query("3b"))
            return json.dumps(report.to_dict(include_timeline=True),
                              sort_keys=True)

        assert run_once() == run_once()

    def test_benchmark_summary_deterministic(self, job_env):
        from repro.bench.cluster import run_cluster_benchmark

        def run_once():
            return json.dumps(
                run_cluster_benchmark(job_env, 2,
                                      query_names=["1a", "3b"],
                                      clients=2),
                sort_keys=True)

        assert run_once() == run_once()


class TestEmptyPartitions:
    def test_more_devices_than_driving_rows(self, job_env):
        # 1a drives from company_type (4 rows at this scale): an 8-way
        # range layout leaves 4 shards empty, which must contribute
        # nothing — not break the merge.
        cluster = DeviceCluster(job_env, n_devices=8,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        report = cluster.run(plan)
        placements = [part["placement"]
                      for part in report.cluster["partitions"]]
        assert placements.count("empty") == 4
        assert report.result.sorted_rows() == baseline


class TestDeviceFailure:
    def test_failed_device_partition_reexecutes_elsewhere(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        faults = ClusterFaultPlan(plans={0: FaultPlan(
            seed=1, commands=CommandFaultModel(fail_first=50))})
        report = cluster.run(plan, ctx=ExecutionContext(faults=faults))

        assert report.result.sorted_rows() == baseline
        assert report.cluster["failed_devices"] == [0]
        (failure,) = report.cluster["failures"]
        assert failure["device"] == 0
        assert failure["retries"] > 0
        part0 = report.cluster["partitions"][0]
        assert part0["attempted_devices"] == [0]
        assert "@d0" not in part0["placement"]
        assert report.retries > 0

    def test_all_devices_failed_falls_back_to_host(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        storm = FaultPlan(seed=1,
                          commands=CommandFaultModel(fail_first=500))
        report = cluster.run(
            plan, ctx=ExecutionContext(faults=ClusterFaultPlan(
                default=storm)))
        assert report.result.sorted_rows() == baseline
        assert report.cluster["failed_devices"] == [0, 1]
        placements = {part["placement"]
                      for part in report.cluster["partitions"]}
        assert placements == {"host-fallback"}

    def test_plan_for_defaults(self):
        plan = FaultPlan(seed=3)
        faults = ClusterFaultPlan(plans={1: plan})
        assert faults.plan_for(1) is plan
        assert faults.plan_for(0) is None
        assert ClusterFaultPlan(default=plan).plan_for(7) is plan


class TestSchedulerClusterMode:
    def test_workload_places_across_devices(self, job_env, cluster2):
        scheduler = WorkloadScheduler(job_env, cluster=cluster2)
        scheduler.submit_closed_loop(
            ["1a", "3b", "8c"], ClosedLoopArrivals(clients=2, seed=0))
        result = scheduler.run()

        assert len(result.completed()) == len(result.jobs)
        assert result.extras["cluster"]["n_devices"] == 2
        offloaded = [p for p in result.placements() if "@d" in p]
        assert offloaded, result.placements()
        baselines = {name: serial_rows(job_env, name)[1]
                     for name in ("1a", "3b", "8c")}
        for job in result.jobs:
            assert (job.report.result.sorted_rows()
                    == baselines[job.name]), job.label


class TestTopologyWiring:
    def test_cluster_topology_round_trip(self, job_env):
        topology = Topology.cluster(3, partitioner="hash",
                                    flash=job_env.device.flash)
        cluster = DeviceCluster(job_env, topology=topology)
        assert cluster.n_devices == 3
        assert cluster.partitioner.describe()["kind"] == "hash"
        # All devices mirror the environment's flash store.
        assert all(device.flash is job_env.device.flash
                   for device in cluster.devices)

    def test_device_count_mismatch_rejected(self, job_env):
        from repro.errors import ReproError

        topology = Topology.cluster(2, flash=job_env.device.flash)
        with pytest.raises(ReproError, match="disagrees"):
            DeviceCluster(job_env, n_devices=4, topology=topology)
