"""Scatter-gather cluster execution: correctness, determinism, faults.

The load-bearing claim of ``repro.cluster`` is that a scatter-gather
run over any device count returns *row-identical* results to
single-device serial execution (docs/cluster.md has the merge
argument).  These tests pin that differentially over the representative
JOB subset, plus the cluster-specific surfaces: the report's ``cluster``
block and per-device resource stats, byte-for-byte determinism,
single-device-failure re-execution, empty partitions, and the
scheduler's cluster placement mode.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterFaultPlan, DeviceCluster, SpeculationPolicy
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import DeadlineExceededError
from repro.faults import (CommandFaultModel, FaultPlan, FaultWindow,
                          RetryPolicy, SlowDeviceModel)
from repro.sched import ClosedLoopArrivals, WorkloadScheduler
from repro.sim import device_resource_names
from repro.storage.topology import PartitionSpec, Topology
from repro.workloads.job_queries import query

from tests.test_differential_job import REPRESENTATIVE


@pytest.fixture(scope="module")
def cluster2(job_env):
    """Two devices, range partitioning (the sweep's default layout)."""
    return DeviceCluster(job_env, n_devices=2,
                         partitioner=PartitionSpec("range", seed=0))


@pytest.fixture(scope="module")
def cluster4_hash(job_env):
    """Four devices, hash partitioning (logical scatter)."""
    return DeviceCluster(job_env, n_devices=4,
                         partitioner=PartitionSpec("hash", seed=0))


def serial_rows(job_env, name):
    plan = job_env.runner.plan(query(name))
    return plan, job_env.run(plan, Stack.BLK).result.sorted_rows()


class TestDifferential:
    """Cluster rows == serial rows, every representative query."""

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_two_device_range_matches_serial(self, job_env, cluster2,
                                             name):
        plan, baseline = serial_rows(job_env, name)
        report = cluster2.run(plan)
        assert report.result.sorted_rows() == baseline, name
        assert report.cluster["n_devices"] == 2

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_four_device_hash_matches_serial(self, job_env, cluster4_hash,
                                             name):
        plan, baseline = serial_rows(job_env, name)
        report = cluster4_hash.run(plan)
        assert report.result.sorted_rows() == baseline, name
        assert report.cluster["partitioner"]["kind"] == "hash"


class TestSingleDeviceEquivalence:
    """n_devices=1 is byte-for-byte the serial hybrid path."""

    @pytest.mark.parametrize("name", ["1a", "8c"])
    def test_rows_and_total_time_identical(self, job_env, name):
        cluster = DeviceCluster(job_env, n_devices=1)
        plan = job_env.runner.plan(query(name))
        split = plan.table_count - 1
        serial = job_env.run(plan, Stack.HYBRID, split_index=split)
        merged = cluster.run(plan, split_index=split)
        assert merged.result.sorted_rows() == serial.result.sorted_rows()
        assert merged.total_time == serial.total_time


class TestReportShape:
    def test_cluster_block_and_per_device_resources(self, cluster2):
        report = cluster2.run(query("8c"))
        block = report.cluster
        assert block["n_devices"] == 2
        assert block["partitioner"] == {"kind": "range", "seed": 0,
                                        "n_partitions": 2}
        assert block["driving_table"] == "role_type"
        assert len(block["partitions"]) == 2
        assert block["failed_devices"] == []
        for index in range(2):
            link, core = device_resource_names(index)
            assert link in report.resource_stats
            assert core in report.resource_stats
        assert "host_cpu" in report.resource_stats

    def test_utilization_never_exceeds_one(self, cluster4_hash):
        report = cluster4_hash.run(query("8c"))
        for name, stats in report.resource_stats.items():
            assert 0.0 <= stats["utilization"] <= 1.0 + 1e-9, name

    def test_split_pinning_places_every_partition_at_hk(self, cluster2):
        report = cluster2.run(query("1a"), split_index=0)
        for part in report.cluster["partitions"]:
            assert part["placement"].startswith("H0@d"), part
        assert report.split_index == 0

    def test_report_round_trips_to_json(self, cluster2):
        payload = cluster2.run(query("3b")).to_dict(include_timeline=True)
        assert payload["cluster"]["n_devices"] == 2
        assert json.loads(json.dumps(payload)) == payload


class TestDeterminism:
    def test_two_fresh_clusters_byte_identical(self, job_env):
        def run_once():
            cluster = DeviceCluster(
                job_env, n_devices=2,
                partitioner=PartitionSpec("range", seed=0))
            report = cluster.run(query("3b"))
            return json.dumps(report.to_dict(include_timeline=True),
                              sort_keys=True)

        assert run_once() == run_once()

    def test_benchmark_summary_deterministic(self, job_env):
        from repro.bench.cluster import run_cluster_benchmark

        def run_once():
            return json.dumps(
                run_cluster_benchmark(job_env, 2,
                                      query_names=["1a", "3b"],
                                      clients=2),
                sort_keys=True)

        assert run_once() == run_once()


class TestEmptyPartitions:
    def test_more_devices_than_driving_rows(self, job_env):
        # 1a drives from company_type (4 rows at this scale): an 8-way
        # range layout leaves 4 shards empty, which must contribute
        # nothing — not break the merge.
        cluster = DeviceCluster(job_env, n_devices=8,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        report = cluster.run(plan)
        placements = [part["placement"]
                      for part in report.cluster["partitions"]]
        assert placements.count("empty") == 4
        assert report.result.sorted_rows() == baseline


class TestDeviceFailure:
    def test_failed_device_partition_reexecutes_elsewhere(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        faults = ClusterFaultPlan(plans={0: FaultPlan(
            seed=1, commands=CommandFaultModel(fail_first=50))})
        report = cluster.run(plan, ctx=ExecutionContext(faults=faults))

        assert report.result.sorted_rows() == baseline
        assert report.cluster["failed_devices"] == [0]
        (failure,) = report.cluster["failures"]
        assert failure["device"] == 0
        assert failure["retries"] > 0
        part0 = report.cluster["partitions"][0]
        assert part0["attempted_devices"] == [0]
        assert "@d0" not in part0["placement"]
        assert report.retries > 0

    def test_all_devices_failed_falls_back_to_host(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        plan, baseline = serial_rows(job_env, "1a")
        storm = FaultPlan(seed=1,
                          commands=CommandFaultModel(fail_first=500))
        report = cluster.run(
            plan, ctx=ExecutionContext(faults=ClusterFaultPlan(
                default=storm)))
        assert report.result.sorted_rows() == baseline
        assert report.cluster["failed_devices"] == [0, 1]
        placements = {part["placement"]
                      for part in report.cluster["partitions"]}
        assert placements == {"host-fallback"}

    def test_plan_for_defaults(self):
        plan = FaultPlan(seed=3)
        faults = ClusterFaultPlan(plans={1: plan})
        assert faults.plan_for(1) is plan
        assert faults.plan_for(0) is None
        assert ClusterFaultPlan(default=plan).plan_for(7) is plan


class TestSchedulerClusterMode:
    def test_workload_places_across_devices(self, job_env, cluster2):
        scheduler = WorkloadScheduler(job_env, cluster=cluster2)
        scheduler.submit_closed_loop(
            ["1a", "3b", "8c"], ClosedLoopArrivals(clients=2, seed=0))
        result = scheduler.run()

        assert len(result.completed()) == len(result.jobs)
        assert result.extras["cluster"]["n_devices"] == 2
        offloaded = [p for p in result.placements() if "@d" in p]
        assert offloaded, result.placements()
        baselines = {name: serial_rows(job_env, name)[1]
                     for name in ("1a", "3b", "8c")}
        for job in result.jobs:
            assert (job.report.result.sorted_rows()
                    == baselines[job.name]), job.label


class TestTopologyWiring:
    def test_cluster_topology_round_trip(self, job_env):
        topology = Topology.cluster(3, partitioner="hash",
                                    flash=job_env.device.flash)
        cluster = DeviceCluster(job_env, topology=topology)
        assert cluster.n_devices == 3
        assert cluster.partitioner.describe()["kind"] == "hash"
        # All devices mirror the environment's flash store.
        assert all(device.flash is job_env.device.flash
                   for device in cluster.devices)

    def test_device_count_mismatch_rejected(self, job_env):
        from repro.errors import ReproError

        topology = Topology.cluster(2, flash=job_env.device.flash)
        with pytest.raises(ReproError, match="disagrees"):
            DeviceCluster(job_env, n_devices=4, topology=topology)


def _straggler_faults(seed=3, slowdown=50.0, device=0):
    """A persistent 50x slowdown on one device, seeded."""
    return ClusterFaultPlan(plans={device: FaultPlan(
        seed=seed, slow=SlowDeviceModel(
            windows=(FaultWindow(0.0, 3600.0),), slowdown=slowdown))})


class TestSpeculation:
    """Straggler cloning: row-identical, audited, bounded makespan."""

    def test_policy_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="factor"):
            SpeculationPolicy(factor=0.5)
        with pytest.raises(ReproError, match="quorum"):
            SpeculationPolicy(quorum=0.0)
        with pytest.raises(ReproError, match="quorum"):
            SpeculationPolicy(quorum=1.5)
        assert SpeculationPolicy().describe() == {"factor": 1.5,
                                                  "quorum": 0.5}

    def test_disabled_by_default_with_null_audit(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=4,
                                partitioner=PartitionSpec("range", seed=0))
        report = cluster.run(query("1a"), split_index=0,
                             ctx=ExecutionContext(
                                 faults=_straggler_faults()))
        block = report.cluster["speculation"]
        assert block == {"policy": None, "clones": 0, "events": [],
                         "wasted_time": 0.0}

    def test_straggler_cloned_rows_identical_and_bounded(self, job_env):
        plan, baseline = serial_rows(job_env, "1a")
        layout = dict(n_devices=4,
                      partitioner=PartitionSpec("range", seed=0),
                      speculation=SpeculationPolicy(factor=1.5))
        reference = DeviceCluster(job_env, **layout).run(
            plan, split_index=0)
        faulted = DeviceCluster(job_env, **layout).run(
            plan, split_index=0,
            ctx=ExecutionContext(faults=_straggler_faults()))

        assert faulted.result.sorted_rows() == baseline
        block = faulted.cluster["speculation"]
        assert block["policy"] == {"factor": 1.5, "quorum": 0.5}
        assert block["clones"] >= 1
        clones = [event for event in block["events"]
                  if "straggler_device" in event]
        assert clones, "clone must be audited"
        for event in clones:
            assert {"partition", "clone", "at", "median",
                    "elapsed"} <= set(event)
        # Speculation waste is audited separately from fault waste.
        assert block["wasted_time"] >= 0.0
        # The clone rescues the makespan: the straggler's 50x partition
        # would otherwise dominate, speculation keeps it within the
        # chaos harness's degradation bound.
        assert faulted.total_time <= 1.5 * reference.total_time

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16))
    def test_speculative_rows_identical_to_serial_any_seed(
            self, job_env, seed):
        plan, baseline = serial_rows(job_env, "1a")
        cluster = DeviceCluster(job_env, n_devices=4,
                                partitioner=PartitionSpec("range", seed=0),
                                speculation=SpeculationPolicy(factor=1.5))
        report = cluster.run(
            plan, split_index=0,
            ctx=ExecutionContext(faults=_straggler_faults(seed=seed)))
        assert report.result.sorted_rows() == baseline
        # And no DRAM reservation is live after cancelled losers.
        assert all(device.reserved_bytes == 0
                   for device in cluster.devices)

    def test_speculative_run_is_deterministic(self, job_env):
        def run_once():
            cluster = DeviceCluster(
                job_env, n_devices=4,
                partitioner=PartitionSpec("range", seed=0),
                speculation=SpeculationPolicy(factor=1.5))
            report = cluster.run(
                query("1a"), split_index=0,
                ctx=ExecutionContext(faults=_straggler_faults()))
            return json.dumps(report.to_dict(include_timeline=True),
                              sort_keys=True)

        assert run_once() == run_once()


class TestMultiFaultDegradation:
    """Any number of failures cascades through survivors to the host."""

    def test_two_of_three_devices_fail(self, job_env):
        plan, baseline = serial_rows(job_env, "1a")
        storm = CommandFaultModel(fail_first=500)
        faults = ClusterFaultPlan(plans={
            0: FaultPlan(seed=1, commands=storm),
            1: FaultPlan(seed=2, commands=storm)})
        cluster = DeviceCluster(job_env, n_devices=3,
                                partitioner=PartitionSpec("range", seed=0))
        report = cluster.run(plan, ctx=ExecutionContext(faults=faults))

        assert report.result.sorted_rows() == baseline
        assert report.cluster["failed_devices"] == [0, 1]
        for part in report.cluster["partitions"]:
            assert "@d0" not in part["placement"], part
            assert "@d1" not in part["placement"], part
        assert len(report.cluster["failures"]) >= 2

    def test_wasted_time_budget_short_circuits_to_host(self, job_env):
        plan, baseline = serial_rows(job_env, "1a")
        storm = FaultPlan(seed=1, commands=CommandFaultModel(
            fail_first=500))
        ctx = ExecutionContext(
            faults=ClusterFaultPlan(default=storm),
            retry_policy=RetryPolicy(wasted_time_budget=1e-9))
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        report = cluster.run(plan, ctx=ctx)
        assert report.result.sorted_rows() == baseline
        placements = {part["placement"]
                      for part in report.cluster["partitions"]}
        assert placements <= {"host-fallback", "empty"}
        # The cap stopped the cascade: no survivor re-execution was
        # attempted after the first device's waste blew the budget.
        attempted = set()
        for part in report.cluster["partitions"]:
            attempted.update(part["attempted_devices"])
        assert attempted <= {0, 1}


class TestClusterDeadline:
    def test_deadline_cancels_and_raises_with_partial_audit(self, job_env):
        plan, _ = serial_rows(job_env, "1a")
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        fault_free = cluster.run(plan)
        deadline = 0.25 * fault_free.total_time

        with pytest.raises(DeadlineExceededError) as excinfo:
            cluster.run(plan, ctx=ExecutionContext(deadline=deadline))
        error = excinfo.value
        assert error.deadline == deadline
        assert isinstance(error.partial["completed_partitions"], list)
        assert error.partial["cancelled"], "in-flight attempts recorded"
        # Cooperative cancellation released every pipeline reservation.
        assert all(device.reserved_bytes == 0
                   for device in cluster.devices)

    def test_generous_deadline_is_byte_identical_to_none(self, job_env):
        def run_once(ctx):
            cluster = DeviceCluster(
                job_env, n_devices=2,
                partitioner=PartitionSpec("range", seed=0))
            report = cluster.run(query("3b"), ctx=ctx)
            return json.dumps(report.to_dict(include_timeline=True),
                              sort_keys=True)

        assert run_once(None) == run_once(ExecutionContext(deadline=60.0))


class TestHeterogeneousCluster:
    def test_mixed_specs_still_row_identical(self, job_env):
        base = job_env.device.spec
        slow = replace(base, name=f"{base.name}-slow",
                       coremark=base.coremark / 4)
        topology = Topology.cluster(
            3, partitioner=PartitionSpec("range", seed=0),
            device_spec=base, flash=job_env.device.flash,
            link=job_env.device.link,
            device_specs=[None, slow, None])
        cluster = DeviceCluster(job_env, topology=topology)
        plan, baseline = serial_rows(job_env, "1a")
        report = cluster.run(plan)
        assert report.result.sorted_rows() == baseline
        assert cluster.devices[1].spec.name.endswith("-slow")
        # The slow device gets its own timing model; the others share
        # the environment's.
        timings = [executor.timing for executor in cluster.executors]
        assert timings[0] is job_env.runner.timing
        assert timings[2] is job_env.runner.timing
        assert timings[1] is not job_env.runner.timing

    def test_spec_list_length_mismatch_rejected(self, job_env):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="device_specs"):
            Topology.cluster(2, flash=job_env.device.flash,
                             device_specs=[None])

    def test_homogeneous_specs_share_timing_model(self, job_env):
        cluster = DeviceCluster(job_env, n_devices=2,
                                partitioner=PartitionSpec("range", seed=0))
        assert all(executor.timing is job_env.runner.timing
                   for executor in cluster.executors)
