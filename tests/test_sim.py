"""Tests for the simulated-time kernel (clock, events, resources)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, ResourceError
from repro.sim import BusyResource, EventLoop, SimClock, Tracer


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ReproError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ReproError):
            clock.advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_never_rewinds(self):
        clock = SimClock(start=10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimClock(start=4.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []
        loop.schedule_at(2.0, lambda: fired.append("b"))
        loop.schedule_at(1.0, lambda: fired.append("a"))
        loop.schedule_at(3.0, lambda: fired.append("c"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop(SimClock())
        fired = []
        for name in "xyz":
            loop.schedule_at(1.0, lambda n=name: fired.append(n))
        loop.run()
        assert fired == ["x", "y", "z"]

    def test_schedule_after_uses_relative_delay(self):
        clock = SimClock(start=5.0)
        loop = EventLoop(clock)
        seen = []
        loop.schedule_after(2.5, lambda: seen.append(clock.now))
        loop.run()
        assert seen == [7.5]

    def test_scheduling_in_the_past_rejected(self):
        clock = SimClock(start=5.0)
        loop = EventLoop(clock)
        with pytest.raises(ReproError):
            loop.schedule_at(1.0, lambda: None)

    def test_actions_may_schedule_more_events(self):
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule_after(1.0, lambda: chain(n + 1))

        loop.schedule_at(0.0, lambda: chain(0))
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert clock.now == 3.0

    def test_runaway_guard(self):
        loop = EventLoop(SimClock())

        def forever():
            loop.schedule_after(1.0, forever)

        loop.schedule_at(0.0, forever)
        with pytest.raises(ReproError):
            loop.run(max_events=100)

    def test_step_returns_none_on_empty_queue(self):
        assert EventLoop(SimClock()).step() is None

    def test_counters(self):
        loop = EventLoop(SimClock())
        loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        assert loop.pending == 2
        loop.run()
        assert loop.fired == 2
        assert loop.pending == 0


class TestBusyResource:
    def test_idle_resource_serves_immediately(self):
        resource = BusyResource("pcie")
        begin, end = resource.acquire(1.0, 0.5)
        assert (begin, end) == (1.0, 1.5)

    def test_queued_request_waits(self):
        resource = BusyResource("pcie")
        resource.acquire(0.0, 2.0)
        begin, end = resource.acquire(1.0, 1.0)
        assert (begin, end) == (2.0, 3.0)
        assert resource.wait_time == 1.0

    def test_busy_time_accumulates(self):
        resource = BusyResource("core")
        resource.acquire(0.0, 1.0)
        resource.acquire(5.0, 2.0)
        assert resource.busy_time == 3.0
        assert resource.requests == 2

    def test_utilization(self):
        resource = BusyResource("core")
        resource.acquire(0.0, 2.0)
        assert resource.utilization(4.0) == 0.5
        assert resource.utilization(0.0) == 0.0

    def test_utilization_not_clamped_oversubscription_raises(self):
        # Regression: the old clamp to 1.0 hid double-booking bugs.
        resource = BusyResource("core")
        resource.acquire(0.0, 10.0)
        with pytest.raises(ResourceError):
            resource.utilization(5.0)

    def test_utilization_full_horizon_is_exactly_one(self):
        resource = BusyResource("core")
        resource.acquire(0.0, 5.0)
        assert resource.utilization(5.0) == 1.0

    def test_stats(self):
        resource = BusyResource("link")
        resource.acquire(0.0, 2.0)
        resource.acquire(1.0, 1.0)
        stats = resource.stats(4.0)
        assert stats["busy_time"] == 3.0
        assert stats["wait_time"] == 1.0
        assert stats["requests"] == 2
        assert stats["utilization"] == pytest.approx(0.75)

    def test_reset(self):
        resource = BusyResource("core")
        resource.acquire(0.0, 2.0)
        resource.reset()
        assert resource.free_at == 0.0
        assert resource.busy_time == 0.0


# Bounded, finite floats: wide enough to exercise queueing and idle
# gaps, narrow enough that float rounding stays far from the 1e-9
# utilization tolerance.
_starts = st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False)
_durations = st.floats(min_value=0.0, max_value=1e3,
                       allow_nan=False, allow_infinity=False)
_workloads = st.lists(st.tuples(_starts, _durations),
                      min_size=1, max_size=30)


class TestBusyResourceProperties:
    @given(workload=_workloads)
    @settings(max_examples=60, deadline=None)
    def test_busy_intervals_never_overlap(self, workload):
        tracer = Tracer()
        resource = BusyResource("res", tracer=tracer)
        for start, duration in workload:
            begin, end = resource.acquire(start, duration)
            assert begin >= start
            assert end == begin + duration
        busy = [s for s in tracer.spans if s.track == "resource/res"]
        assert len(busy) == len(workload)
        for a, b in zip(busy, busy[1:]):
            assert b.start >= a.end

    @given(workload=_workloads)
    @settings(max_examples=60, deadline=None)
    def test_utilization_never_exceeds_one(self, workload):
        resource = BusyResource("res")
        for start, duration in workload:
            resource.acquire(start, duration)
        horizon = resource.free_at
        # Must not raise ResourceError: disjoint busy intervals inside
        # [0, horizon] can never oversubscribe the horizon.
        assert resource.utilization(horizon) <= 1.0 + 1e-9

    @given(workload=_workloads)
    @settings(max_examples=60, deadline=None)
    def test_accounting_matches_requests(self, workload):
        tracer = Tracer()
        resource = BusyResource("res", tracer=tracer)
        waits = 0.0
        for start, duration in workload:
            begin, _ = resource.acquire(start, duration)
            waits += begin - start
        assert resource.busy_time == pytest.approx(
            sum(duration for _, duration in workload))
        assert resource.wait_time == pytest.approx(waits)
        queue = [s for s in tracer.spans
                 if s.track == "resource/res/queue"]
        assert sum(s.duration for s in queue) == pytest.approx(waits)


class TestEventLoopProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False,
                                    allow_infinity=False),
                          min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_drain_order_is_stable_sort_by_time(self, times):
        """Same-timestamp events fire in insertion order, so the drain
        order is exactly a stable sort regardless of schedule order."""
        loop = EventLoop(SimClock())
        fired = []
        for index, time in enumerate(times):
            loop.schedule_at(time, lambda i=index: fired.append(i))
        loop.run()
        expected = [index for index, _ in
                    sorted(enumerate(times), key=lambda item: item[1])]
        assert fired == expected

    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                    allow_nan=False,
                                    allow_infinity=False),
                          min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_clock_ends_at_latest_event(self, times):
        clock = SimClock()
        loop = EventLoop(clock)
        for time in times:
            loop.schedule_at(time, lambda: None)
        loop.run()
        assert clock.now == max(times)
        assert loop.fired == len(times)
