"""Tests for expression evaluation semantics (incl. NULL handling)."""

import pytest

from repro.errors import PlanError
from repro.query.ast import (And, Between, ColumnRef, Comparison, InList,
                             IsNull, Like, Literal, Not, Or, conjuncts,
                             like_to_regex, make_and)


def col(name):
    return ColumnRef("t", name)


ROW = {"t.a": 5, "t.s": "hello world", "t.n": None}


class TestComparisons:
    def test_numeric(self):
        assert Comparison("<", col("a"), Literal(10)).eval(ROW)
        assert not Comparison(">", col("a"), Literal(10)).eval(ROW)

    def test_null_compares_false(self):
        assert not Comparison("=", col("n"), Literal(5)).eval(ROW)
        assert not Comparison("!=", col("n"), Literal(5)).eval(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison("===", col("a"), Literal(1))

    def test_unbound_column_raises(self):
        with pytest.raises(PlanError):
            Comparison("=", ColumnRef("x", "y"), Literal(1)).eval(ROW)


class TestLike:
    def test_percent_wildcard(self):
        assert Like(col("s"), "%world").eval(ROW)
        assert Like(col("s"), "hello%").eval(ROW)
        assert Like(col("s"), "%lo wo%").eval(ROW)

    def test_underscore_wildcard(self):
        assert Like(col("s"), "hell_ world").eval(ROW)
        assert not Like(col("s"), "hell_world").eval(ROW)

    def test_regex_metachars_escaped(self):
        row = {"t.s": "a.b(c)"}
        assert Like(col("s"), "a.b(c)").eval(row)
        assert not Like(col("s"), "axb(c)").eval(row)

    def test_negation(self):
        assert Like(col("s"), "%mars%", negated=True).eval(ROW)
        assert not Like(col("s"), "%world%", negated=True).eval(ROW)

    def test_null_is_false_even_negated(self):
        assert not Like(col("n"), "%x%").eval(ROW)
        assert not Like(col("n"), "%x%", negated=True).eval(ROW)

    def test_like_to_regex(self):
        assert like_to_regex("a%b_c").match("aXXXbYc")


class TestOtherPredicates:
    def test_in_list(self):
        assert InList(col("a"), (1, 5, 9)).eval(ROW)
        assert not InList(col("a"), (2, 3)).eval(ROW)
        assert InList(col("a"), (2, 3), negated=True).eval(ROW)

    def test_in_list_null_false(self):
        assert not InList(col("n"), (1, 2)).eval(ROW)
        assert not InList(col("n"), (1, 2), negated=True).eval(ROW)

    def test_between_inclusive(self):
        assert Between(col("a"), Literal(5), Literal(10)).eval(ROW)
        assert Between(col("a"), Literal(1), Literal(5)).eval(ROW)
        assert not Between(col("a"), Literal(6), Literal(10)).eval(ROW)

    def test_is_null(self):
        assert IsNull(col("n")).eval(ROW)
        assert not IsNull(col("a")).eval(ROW)
        assert IsNull(col("a"), negated=True).eval(ROW)


class TestBooleans:
    def test_and_or_not(self):
        true = Comparison("=", col("a"), Literal(5))
        false = Comparison("=", col("a"), Literal(6))
        assert And((true, true)).eval(ROW)
        assert not And((true, false)).eval(ROW)
        assert Or((false, true)).eval(ROW)
        assert not Or((false, false)).eval(ROW)
        assert Not(false).eval(ROW)

    def test_conjuncts_flattening(self):
        a = Comparison("=", col("a"), Literal(1))
        b = Comparison("=", col("a"), Literal(2))
        c = Comparison("=", col("a"), Literal(3))
        nested = And((a, And((b, c))))
        assert conjuncts(nested) == [a, b, c]
        assert conjuncts(None) == []
        assert conjuncts(a) == [a]

    def test_make_and(self):
        a = Comparison("=", col("a"), Literal(1))
        assert make_and([]) is None
        assert make_and([a]) is a
        assert isinstance(make_and([a, a]), And)


class TestIntrospection:
    def test_column_refs_collected(self):
        expr = And((
            Comparison("=", col("a"), ColumnRef("s", "b")),
            Like(col("s"), "%x%"),
        ))
        refs = expr.column_refs()
        assert {(r.alias, r.column) for r in refs} == {
            ("t", "a"), ("s", "b"), ("t", "s")}

    def test_aliases(self):
        expr = Comparison("=", col("a"), ColumnRef("other", "b"))
        assert expr.aliases() == {"t", "other"}

    def test_str_representations(self):
        assert str(col("a")) == "t.a"
        assert str(Literal("x")) == "'x'"
        assert "LIKE" in str(Like(col("s"), "%q%"))
        assert "BETWEEN" in str(Between(col("a"), Literal(1), Literal(2)))
