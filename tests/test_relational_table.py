"""Tests for relational tables, secondary indexes, and the catalog."""

import pytest

from repro.errors import CatalogError, ReproError, SchemaError
from repro.lsm.store import ReadStats
from repro.relational.catalog import Catalog
from repro.relational.scan import ScanRequest
from repro.relational.schema import TableSchema, char_col, int_col


@pytest.fixture
def people(kv_db):
    catalog = Catalog(kv_db)
    table = catalog.create_table(TableSchema(
        "people",
        (int_col("id", False), char_col("name", 16), int_col("age"),
         char_col("city", 12)),
        "id", ("age", "city")))
    rows = [
        {"id": 1, "name": "alice", "age": 30, "city": "berlin"},
        {"id": 2, "name": "bob", "age": 25, "city": "paris"},
        {"id": 3, "name": "carol", "age": 30, "city": "berlin"},
        {"id": 4, "name": "dave", "age": None, "city": "rome"},
    ]
    table.insert_many(rows)
    table.flush()
    return table


class TestInsertGet:
    def test_get_by_pk(self, people):
        row = people.get_by_pk(2)
        assert row["name"] == "bob" and row["age"] == 25

    def test_get_missing(self, people):
        assert people.get_by_pk(99) is None

    def test_pk_required(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "no-id"})

    def test_row_count(self, people):
        assert people.row_count == 4


class TestScan:
    def test_full_scan(self, people):
        assert len(list(people.scan())) == 4

    def test_scan_predicate(self, people):
        rows = list(people.scan(ScanRequest(
            predicate=lambda r: r["age"] == 30)))
        assert {r["name"] for r in rows} == {"alice", "carol"}

    def test_scan_projection(self, people):
        rows = list(people.scan(ScanRequest(projection=["name"])))
        assert all(set(r) == {"name"} for r in rows)

    def test_pk_range_scan(self, people):
        rows = list(people.scan(ScanRequest(pk_lo=2, pk_hi=3)))
        assert [r["id"] for r in rows] == [2, 3]

    def test_removed_kwargs_name_replacement(self, people):
        with pytest.raises(ReproError, match=r"ScanRequest\(pk_lo=\.\.\.\)"):
            list(people.scan(pk_lo=2))
        with pytest.raises(ReproError,
                           match=r"ScanRequest\(predicate=\.\.\.\)"):
            list(people.scan(predicate=lambda r: True))

    def test_unknown_kwarg_is_type_error(self, people):
        with pytest.raises(TypeError):
            list(people.scan(bogus=1))

    def test_scan_batch_matches_scan(self, people):
        batch = people.scan_batch(ScanRequest())
        assert batch.rows() == list(people.scan())

    def test_scan_batch_pk_range(self, people):
        batch = people.scan_batch(ScanRequest(pk_lo=2, pk_hi=3))
        assert batch.column_list("id") == [2, 3]

    def test_scan_batch_rejects_row_callbacks(self, people):
        with pytest.raises(ReproError):
            people.scan_batch(ScanRequest(predicate=lambda r: True))


class TestSecondaryIndexes:
    def test_index_lookup(self, people):
        rows = list(people.index_lookup("age", 30))
        assert {r["id"] for r in rows} == {1, 3}

    def test_index_lookup_string_column(self, people):
        rows = list(people.index_lookup("city", "berlin"))
        assert {r["id"] for r in rows} == {1, 3}

    def test_null_values_not_indexed(self, people):
        index = people.index_on("age")
        all_keys = list(index.primary_keys_in_range())
        # dave (age NULL) is absent: 3 of 4 rows indexed.
        assert len(all_keys) == 3

    def test_lookup_performs_double_seek(self, people):
        stats = ReadStats()
        list(people.index_lookup("age", 30, stats=stats))
        # Secondary CF scan plus one primary GET per match.
        assert stats.ssts_considered >= 1

    def test_missing_index_rejected(self, people):
        with pytest.raises(CatalogError):
            people.index_on("name")

    def test_has_index_on(self, people):
        assert people.has_index_on("age")
        assert people.has_index_on("id")      # primary key counts
        assert not people.has_index_on("name")

    def test_delete_cleans_indexes(self, people):
        assert people.delete(1) is True
        assert people.get_by_pk(1) is None
        assert {r["id"] for r in people.index_lookup("age", 30)} == {3}

    def test_delete_missing_returns_false(self, people):
        assert people.delete(99) is False

    def test_index_range(self, people):
        index = people.index_on("age")
        keys = list(index.primary_keys_in_range(lo=26, hi=35))
        assert len(keys) == 2


class TestUpdate:
    def test_update_changes_values(self, people):
        new_row = people.update(2, {"age": 26})
        assert new_row["age"] == 26
        assert people.get_by_pk(2)["age"] == 26

    def test_update_maintains_secondary_index(self, people):
        people.update(2, {"age": 30})
        assert {r["id"] for r in people.index_lookup("age", 30)} == {
            1, 2, 3}
        assert not list(people.index_lookup("age", 25))

    def test_update_to_null_deindexes(self, people):
        people.update(1, {"age": None})
        assert {r["id"] for r in people.index_lookup("age", 30)} == {3}

    def test_update_missing_row(self, people):
        assert people.update(999, {"age": 1}) is None

    def test_update_pk_rejected(self, people):
        with pytest.raises(SchemaError):
            people.update(1, {"id": 2})

    def test_update_unknown_column_rejected(self, people):
        with pytest.raises(SchemaError):
            people.update(1, {"ghost": 1})

    def test_update_unindexed_column(self, people):
        people.update(1, {"name": "renamed"})
        assert people.get_by_pk(1)["name"] == "renamed"
        assert {r["id"] for r in people.index_lookup("age", 30)} == {1, 3}


class TestCatalog:
    def test_duplicate_table_rejected(self, kv_db):
        catalog = Catalog(kv_db)
        schema = TableSchema("t", (int_col("id", False),), "id")
        catalog.create_table(schema)
        with pytest.raises(CatalogError):
            catalog.create_table(schema)

    def test_missing_table_rejected(self, kv_db):
        with pytest.raises(CatalogError):
            Catalog(kv_db).table("ghost")

    def test_column_families_per_table(self, people):
        families = people.column_families()
        assert "people" in families
        assert "people.idx_age" in families
        assert "people.idx_city" in families

    def test_totals(self, people):
        assert people.total_bytes == 4 * people.record_bytes


class TestStatistics:
    def test_selectivity_from_sample(self, people):
        stats = people.statistics
        sel = stats.selectivity(lambda r: r["age"] == 30)
        assert 0.2 < sel < 0.8

    def test_column_minmax(self, people):
        col = people.statistics.column("age")
        assert col.min_value == 25 and col.max_value == 30
        assert col.n_nulls == 1

    def test_distinct_estimate(self, people):
        assert people.statistics.column("city").distinct_estimate == 3

    def test_equality_selectivity(self, people):
        assert people.statistics.equality_selectivity("city") == (
            pytest.approx(1 / 3))

    def test_range_selectivity(self, people):
        sel = people.statistics.range_selectivity("age", lo=25, hi=30)
        assert sel == pytest.approx(1.0)
        tiny = people.statistics.range_selectivity("age", lo=40, hi=50)
        assert tiny < 0.5

    def test_estimated_rows_floor(self, people):
        assert people.statistics.estimated_rows(0.0) == 1
