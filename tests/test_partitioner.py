"""Partitioner edge cases: determinism, coverage, skew, empty shards.

The cluster's merge-correctness argument (docs/cluster.md) rests on the
partitioner producing shards that are *disjoint* and *cover* the key
space — every primary key belongs to exactly one shard.  These tests
pin that invariant for both layouts, plus the edge cases the executor
must survive: more devices than rows (empty shards), heavily skewed key
spaces, and the degenerate single-partition layout.
"""

import pytest

from repro.cluster import Partitioner, TableShard
from repro.errors import ReproError
from repro.lsm.column_family import KVDatabase
from repro.relational.catalog import Catalog
from repro.relational.scan import ScanRequest
from repro.relational.schema import int_col, TableSchema

from tests.conftest import small_lsm_config


def owners(partitioner, table, keys):
    """Which shard indexes claim each key (must be exactly one each)."""
    shards = partitioner.shards(table)
    return {key: [shard.index for shard in shards if shard.contains(key)]
            for key in keys}


def table_keys(catalog, name):
    table = catalog.table(name)
    pk = table.schema.primary_key
    return [row[pk] for row in table.scan(ScanRequest(columns=(pk,)))]


@pytest.mark.parametrize("kind", ["hash", "range"])
@pytest.mark.parametrize("n", [1, 3, 4])
class TestDisjointCover:
    def test_every_key_in_exactly_one_shard(self, mini_catalog, kind, n):
        partitioner = Partitioner.fit(kind, n, mini_catalog, seed=0)
        for name in ("title", "movie_companies", "company_type"):
            assignment = owners(partitioner, name,
                                table_keys(mini_catalog, name))
            assert all(len(hits) == 1 for hits in assignment.values()), (
                name, {k: v for k, v in assignment.items()
                       if len(v) != 1})

    def test_assign_agrees_with_contains(self, mini_catalog, kind, n):
        partitioner = Partitioner.fit(kind, n, mini_catalog, seed=0)
        for key in table_keys(mini_catalog, "title"):
            index = partitioner.assign("title", key)
            assert partitioner.shard("title", index).contains(key)


class TestDeterminism:
    def test_same_seed_same_layout(self, mini_catalog):
        keys = table_keys(mini_catalog, "movie_companies")
        first = Partitioner.fit("hash", 4, mini_catalog, seed=11)
        second = Partitioner.fit("hash", 4, mini_catalog, seed=11)
        assert ([first.assign("movie_companies", k) for k in keys]
                == [second.assign("movie_companies", k) for k in keys])

    def test_different_seed_reshuffles_hash_layout(self, mini_catalog):
        keys = table_keys(mini_catalog, "movie_companies")
        a = Partitioner.fit("hash", 4, mini_catalog, seed=0)
        b = Partitioner.fit("hash", 4, mini_catalog, seed=1)
        assert ([a.assign("movie_companies", k) for k in keys]
                != [b.assign("movie_companies", k) for k in keys])

    def test_range_refit_is_stable(self, mini_catalog):
        first = Partitioner.fit("range", 4, mini_catalog)
        second = Partitioner.fit("range", 4, mini_catalog)
        for name in ("title", "movie_companies", "company_type"):
            assert ([(s.pk_lo, s.pk_hi, s.is_empty)
                     for s in first.shards(name)]
                    == [(s.pk_lo, s.pk_hi, s.is_empty)
                        for s in second.shards(name)])


class TestEmptyShards:
    """More devices than rows: surplus shards must be empty, not wrong."""

    def test_small_table_leaves_surplus_shards_empty(self, mini_catalog):
        # company_type has 4 rows; an 8-way range fit leaves 4 empties.
        partitioner = Partitioner.fit("range", 8, mini_catalog)
        shards = partitioner.shards("company_type")
        empty = [shard for shard in shards if shard.is_empty]
        assert len(empty) == 4
        for shard in empty:
            assert not shard.contains(0)
            assert shard.describe().endswith("empty")
        assignment = owners(partitioner, "company_type",
                            table_keys(mini_catalog, "company_type"))
        assert all(len(hits) == 1 for hits in assignment.values())


class TestSkew:
    def test_range_fit_balances_counts_not_key_spans(self):
        # Keys cluster at both ends of a huge span; a naive key-span cut
        # would put everything in one shard.  The fit is count-balanced.
        db = KVDatabase(default_config=small_lsm_config())
        catalog = Catalog(db)
        catalog.create_table(TableSchema(
            "skewed", (int_col("id", False), int_col("v")), "id"))
        table = catalog.table("skewed")
        keys = [0, 1, 2, 3, 1_000_000, 1_000_001, 1_000_002, 1_000_003]
        for key in keys:
            table.insert({"id": key, "v": key % 7})
        catalog.flush_all()

        partitioner = Partitioner.fit("range", 2, catalog)
        shards = partitioner.shards("skewed")
        counts = [sum(shard.contains(k) for k in keys) for shard in shards]
        assert counts == [4, 4]
        assert shards[0].pk_hi < shards[1].pk_lo


class TestSinglePartition:
    def test_one_shard_covers_everything(self, mini_catalog):
        for kind in ("hash", "range"):
            partitioner = Partitioner.fit(kind, 1, mini_catalog, seed=5)
            (shard,) = partitioner.shards("title")
            assert all(shard.contains(k)
                       for k in table_keys(mini_catalog, "title"))
            assert partitioner.assign("title", 123) == 0


class TestShardClamp:
    def test_range_shard_intersects_plan_bounds(self):
        shard = TableShard("t", 0, 2, pk_lo=100, pk_hi=200)
        assert shard.clamp(None, None) == (100, 200)
        assert shard.clamp(150, 500) == (150, 200)
        assert shard.clamp(0, 150) == (100, 150)
        # Disjoint plan bounds produce an inverted (empty) range, which
        # the scan evaluates to zero rows rather than raising.
        lo, hi = shard.clamp(300, 400)
        assert lo > hi

    def test_hash_shard_clamp_is_passthrough(self):
        shard = TableShard("t", 1, 4, seed=3)
        assert shard.clamp(10, 20) == (10, 20)
        assert shard.clamp(None, None) == (None, None)


class TestValidation:
    def test_unknown_kind_rejected(self, mini_catalog):
        with pytest.raises(ReproError, match="unknown partitioner kind"):
            Partitioner("round-robin", 2)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ReproError, match="at least one"):
            Partitioner("hash", 0)

    def test_shard_index_out_of_range(self, mini_catalog):
        partitioner = Partitioner.fit("hash", 2, mini_catalog)
        with pytest.raises(ReproError, match="out of range"):
            partitioner.shard("title", 2)

    def test_unfitted_range_table_rejected(self):
        partitioner = Partitioner("range", 2)
        with pytest.raises(ReproError, match="not fitted"):
            partitioner.shard("title", 0)
