"""Tests for the ExecutionContext API and its compatibility shim."""

import dataclasses

import pytest

from repro.context import NULL_CONTEXT, ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import ReproError
from repro.faults import (NULL_INJECTOR, CommandFaultModel, FaultPlan,
                          RetryPolicy)
from repro.sim import Tracer
from repro.workloads.job_queries import query

QUERY = "1a"


class TestCoerce:
    def test_no_arguments_is_null_context(self):
        assert ExecutionContext.coerce() is NULL_CONTEXT
        assert ExecutionContext.coerce(None) is NULL_CONTEXT

    def test_legacy_kwargs_no_longer_exist(self):
        # coerce() lost its tracer=/faults= shim with the migration.
        with pytest.raises(TypeError):
            ExecutionContext.coerce(tracer=Tracer())
        with pytest.raises(TypeError):
            ExecutionContext.coerce(faults=FaultPlan(seed=1))

    def test_context_passes_through(self):
        ctx = ExecutionContext(tracer=Tracer())
        assert ExecutionContext.coerce(ctx) is ctx

    def test_wrong_type_rejected(self):
        with pytest.raises(ReproError):
            ExecutionContext.coerce(Tracer())   # a tracer is not a ctx


class TestContext:
    def test_frozen(self):
        ctx = ExecutionContext()
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.tracer = Tracer()

    def test_null_context_collaborators(self):
        assert not NULL_CONTEXT.sim_tracer().enabled
        assert NULL_CONTEXT.injector() is NULL_INJECTOR

    def test_fault_plan_yields_fresh_injector_per_call(self):
        ctx = ExecutionContext(faults=FaultPlan(
            seed=3, commands=CommandFaultModel(probability=0.5)))
        first = ctx.injector()
        second = ctx.injector()
        assert first is not second
        assert first.enabled and second.enabled

    def test_retry_policy_overrides_plan_policy(self):
        policy = RetryPolicy(max_retries=9)
        ctx = ExecutionContext(
            faults=FaultPlan(seed=3,
                             commands=CommandFaultModel(probability=0.5)),
            retry_policy=policy)
        assert ctx.injector().retry.max_retries == 9

    def test_with_scheduler_copies(self):
        ctx = ExecutionContext(tracer=Tracer())
        marker = object()
        bound = ctx.with_scheduler(marker)
        assert bound.scheduler is marker
        assert bound.tracer is ctx.tracer
        assert ctx.scheduler is None


class TestRunPaths:
    """ctx= is the only spelling; the legacy kwargs raise by name."""

    @pytest.mark.parametrize("kwargs", [
        {"tracer": None}, {"faults": None},
    ])
    def test_removed_kwargs_raise_with_replacement(self, job_env, kwargs):
        plan = job_env.runner.plan(query(QUERY))
        name = next(iter(kwargs))
        with pytest.raises(ReproError, match=f"no longer accepts {name}="):
            job_env.run(plan, Stack.HYBRID, split_index=0, **kwargs)
        with pytest.raises(ReproError, match="ExecutionContext"):
            job_env.runner.run(plan, Stack.HYBRID, split_index=0, **kwargs)

    def test_unknown_kwarg_is_a_type_error(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        with pytest.raises(TypeError):
            job_env.run(plan, Stack.HYBRID, split_index=0, bogus=1)

    def test_ctx_plus_kwargs_rejected_at_run(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        with pytest.raises(ReproError):
            job_env.run(plan, Stack.HYBRID, split_index=0,
                        ctx=ExecutionContext(), tracer=Tracer())

    def test_run_all_splits_tracer_factory_removed(self, job_env):
        with pytest.raises(ReproError,
                           match="no longer accepts tracer_factory="):
            job_env.runner.run_all_splits(
                query(QUERY), tracer_factory=lambda name: Tracer())

    def test_run_all_splits_ctx_factory(self, job_env):
        tracers = {}

        def ctx_factory(name):
            tracers[name] = Tracer()
            return ExecutionContext(tracer=tracers[name])

        reports = job_env.runner.run_all_splits(query(QUERY),
                                                ctx_factory=ctx_factory)
        assert "host-only" in reports and "full-ndp" in reports
        traced = [name for name, tracer in tracers.items()
                  if tracer.metrics()["spans"] > 0
                  and not isinstance(reports[name], Exception)]
        assert traced   # at least the feasible strategies traced spans

    def test_plan_cache_returns_same_object(self, job_env):
        sql = query(QUERY)
        assert job_env.runner.plan(sql) is job_env.runner.plan(sql)


class TestDeadline:
    """``ctx.deadline`` on the single-device hybrid path."""

    def test_run_split_raises_with_partial_audit(self, job_env):
        from repro.errors import DeadlineExceededError

        plan = job_env.runner.plan(query(QUERY))
        split = plan.table_count - 1
        reference = job_env.run(plan, Stack.HYBRID, split_index=split)
        deadline = 0.4 * reference.total_time
        reserved_before = job_env.device.reserved_bytes

        with pytest.raises(DeadlineExceededError) as excinfo:
            job_env.run(plan, Stack.HYBRID, split_index=split,
                        ctx=ExecutionContext(deadline=deadline))
        error = excinfo.value
        assert error.deadline == deadline
        assert error.partial["strategy"] == f"H{split}"
        assert 0 <= error.partial["batches_consumed"] \
            <= error.partial["batches_total"]
        # Cancellation released the pipeline reservation.
        assert job_env.device.reserved_bytes == reserved_before

    def test_generous_deadline_is_identical_to_none(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        bounded = job_env.run(plan, Stack.HYBRID, split_index=1,
                              ctx=ExecutionContext(deadline=3600.0))
        unbounded = job_env.run(plan, Stack.HYBRID, split_index=1)
        assert bounded.total_time == unbounded.total_time
        assert (bounded.result.sorted_rows()
                == unbounded.result.sorted_rows())

    def test_negative_deadline_rejected(self):
        with pytest.raises(ReproError):
            ExecutionContext(deadline=-1.0)
