"""Tests for the ExecutionContext API and its compatibility shim."""

import dataclasses

import pytest

from repro.context import NULL_CONTEXT, ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import ReproError
from repro.faults import (NULL_INJECTOR, CommandFaultModel, FaultPlan,
                          RetryPolicy)
from repro.sim import Tracer
from repro.workloads.job_queries import query

QUERY = "1a"


class TestCoerce:
    def test_no_arguments_is_null_context(self):
        assert ExecutionContext.coerce() is NULL_CONTEXT
        assert ExecutionContext.coerce(None) is NULL_CONTEXT

    def test_legacy_kwargs_build_a_context(self):
        tracer = Tracer()
        faults = FaultPlan(seed=1)
        ctx = ExecutionContext.coerce(tracer=tracer, faults=faults)
        assert ctx.tracer is tracer
        assert ctx.faults is faults

    def test_context_passes_through(self):
        ctx = ExecutionContext(tracer=Tracer())
        assert ExecutionContext.coerce(ctx) is ctx

    def test_context_plus_kwargs_is_ambiguous(self):
        ctx = ExecutionContext()
        with pytest.raises(ReproError):
            ExecutionContext.coerce(ctx, tracer=Tracer())
        with pytest.raises(ReproError):
            ExecutionContext.coerce(ctx, faults=FaultPlan(seed=1))

    def test_wrong_type_rejected(self):
        with pytest.raises(ReproError):
            ExecutionContext.coerce(Tracer())   # a tracer is not a ctx


class TestContext:
    def test_frozen(self):
        ctx = ExecutionContext()
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.tracer = Tracer()

    def test_null_context_collaborators(self):
        assert not NULL_CONTEXT.sim_tracer().enabled
        assert NULL_CONTEXT.injector() is NULL_INJECTOR

    def test_fault_plan_yields_fresh_injector_per_call(self):
        ctx = ExecutionContext(faults=FaultPlan(
            seed=3, commands=CommandFaultModel(probability=0.5)))
        first = ctx.injector()
        second = ctx.injector()
        assert first is not second
        assert first.enabled and second.enabled

    def test_retry_policy_overrides_plan_policy(self):
        policy = RetryPolicy(max_retries=9)
        ctx = ExecutionContext(
            faults=FaultPlan(seed=3,
                             commands=CommandFaultModel(probability=0.5)),
            retry_policy=policy)
        assert ctx.injector().retry.max_retries == 9

    def test_with_scheduler_copies(self):
        ctx = ExecutionContext(tracer=Tracer())
        marker = object()
        bound = ctx.with_scheduler(marker)
        assert bound.scheduler is marker
        assert bound.tracer is ctx.tracer
        assert ctx.scheduler is None


class TestRunPaths:
    """ctx= and the legacy kwargs must drive runs identically."""

    def test_ctx_equals_legacy_tracer_kwarg(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        legacy_tracer = Tracer()
        ctx_tracer = Tracer()
        legacy = job_env.run(plan, Stack.HYBRID, split_index=0,
                             tracer=legacy_tracer)
        via_ctx = job_env.run(plan, Stack.HYBRID, split_index=0,
                              ctx=ExecutionContext(tracer=ctx_tracer))
        assert legacy.to_dict() == via_ctx.to_dict()
        assert legacy_tracer.to_chrome() == ctx_tracer.to_chrome()

    def test_ctx_plus_kwargs_rejected_at_run(self, job_env):
        plan = job_env.runner.plan(query(QUERY))
        with pytest.raises(ReproError):
            job_env.run(plan, Stack.HYBRID, split_index=0,
                        ctx=ExecutionContext(), tracer=Tracer())

    def test_run_all_splits_ctx_factory(self, job_env):
        tracers = {}

        def ctx_factory(name):
            tracers[name] = Tracer()
            return ExecutionContext(tracer=tracers[name])

        reports = job_env.runner.run_all_splits(query(QUERY),
                                                ctx_factory=ctx_factory)
        assert "host-only" in reports and "full-ndp" in reports
        traced = [name for name, tracer in tracers.items()
                  if tracer.metrics()["spans"] > 0
                  and not isinstance(reports[name], Exception)]
        assert traced   # at least the feasible strategies traced spans

    def test_plan_cache_returns_same_object(self, job_env):
        sql = query(QUERY)
        assert job_env.runner.plan(sql) is job_env.runner.plan(sql)
