#!/usr/bin/env python3
"""Mini Fig-12 survey: which JOB queries benefit from hybridNDP?

Sweeps a sample of JOB query families over host-only, every hybrid
split, and full NDP, then prints the paper-style green/yellow summary
(paper: hybridNDP wins or ties in ~47% of queries, up to 4.2x).

    python examples/offloading_survey.py [query names...]
"""

import sys

from repro import open_database
from repro.bench.experiments import classify_matrix, exp2_job_matrix_fig12
from repro.bench.reporting import render_matrix_summary

DEFAULT_SET = ["1a", "2d", "3b", "6b", "8c", "8d", "11a", "14a",
               "17b", "17e", "21a", "32a"]


def main():
    names = sys.argv[1:] or DEFAULT_SET
    env = open_database(scale=0.0004)
    print(f"surveying {len(names)} queries: {', '.join(names)}")
    print()
    matrix = exp2_job_matrix_fig12(env, query_names=names)
    for name, times in matrix.items():
        host = times["host-only"]
        candidates = {k: v for k, v in times.items()
                      if v is not None and k != "host-only"}
        best = min(candidates, key=lambda k: candidates[k])
        print(f"  Q{name:<4} host={host * 1e3:9.3f} ms  "
              f"best={best:<8} ({candidates[best] * 1e3:9.3f} ms, "
              f"{host / candidates[best]:.2f}x)")
    print()
    print(render_matrix_summary(classify_matrix(matrix)))


if __name__ == "__main__":
    main()
