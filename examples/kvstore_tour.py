#!/usr/bin/env python3
"""Tour of the nKV-style storage substrate (paper §2).

Uses the KV layer directly: column families, LSM flush and compaction,
bloom filters and fence pointers on the read path, the read-amplification
that motivates NDP, and the shared-state snapshot an NDP command ships.

    python examples/kvstore_tour.py
"""

import random

from repro.lsm import KVDatabase, SharedState
from repro.lsm.store import LSMConfig, ReadStats
from repro.storage import FlashDevice


def main():
    flash = FlashDevice()
    config = LSMConfig(memtable_size=8 * 1024,
                       level_base_bytes=32 * 1024,
                       sst_target_bytes=16 * 1024)
    db = KVDatabase(flash=flash, default_config=config)
    cf = db.create_column_family("movies")

    print("writing 5000 skewed updates over 1500 keys...")
    rng = random.Random(42)
    for i in range(5000):
        key = f"movie-{rng.randrange(1500):06d}".encode()
        cf.put(key, f"metadata-{i}".encode().ljust(40, b"."))
    cf.tree.freeze_and_flush()

    print(f"LSM shape: {cf.tree.levels.sst_count()} SSTs over levels "
          f"{[(level, len(ssts)) for level, ssts in cf.tree.levels.levels]}")
    stats = cf.tree.compactor.stats
    print(f"compactions: {stats.compactions}, "
          f"write-amp bytes written: {stats.bytes_written:,}, "
          f"entries dropped: {stats.entries_dropped}")
    print()

    print("point lookup (GET) — bloom filters prune SSTs:")
    read = ReadStats()
    value = cf.get(b"movie-000042", stats=read)
    print(f"  found={value is not None}, SSTs considered="
          f"{read.ssts_considered}, skipped by bloom="
          f"{read.ssts_skipped_bloom}, blocks read={read.data_blocks_read}")
    print()

    print("key-range scan — fence pointers skip SSTs:")
    read = ReadStats()
    rows = list(cf.scan(lo=b"movie-000100", hi=b"movie-000200",
                        stats=read))
    print(f"  {len(rows)} entries, SSTs skipped by fences="
          f"{read.ssts_skipped_fence}, bytes read={read.bytes_read:,}")
    print()

    print("value-predicate scan — must touch everything (the NDP case):")
    read = ReadStats()
    rows = list(cf.scan(value_predicate=lambda v: b"-4999" in v,
                        stats=read))
    print(f"  {len(rows)} match(es) but {read.entries_scanned} entries "
          f"scanned, {read.bytes_read:,} bytes read "
          f"-> exactly the I/O NDP eliminates")
    print()

    print("shared state for an intervention-free NDP invocation:")
    cf.put(b"movie-unflushed", b"still in the memtable")
    state = SharedState.capture(db, ["movies"])
    snapshot = state.family("movies")
    print(f"  {snapshot.memtable_count} unflushed entries, "
          f"{snapshot.sst_count} SST placements, "
          f"payload ~{state.payload_bytes:,} bytes")


if __name__ == "__main__":
    main()
