#!/usr/bin/env python3
"""Split-point exploration for a JOB query (paper Figs 5/6/16).

Shows the cost model's cumulative split-cost curve against c_target,
the planner's pick, and the *measured* simulated time of every split so
the estimate can be judged against reality.

    python examples/split_explorer.py [query-name]   (default: 8c)
"""

import sys

from repro import Stack, open_database
from repro.workloads import query


def bar(value, maximum, width=42):
    filled = int(width * value / maximum) if maximum else 0
    return "#" * filled


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "8c"
    env = open_database(scale=0.0004)
    sql = query(name)
    plan = env.runner.plan(sql)
    decision = env.decide(plan)

    print(f"JOB Q{name}: {plan.table_count} tables, "
          f"{plan.join_count} joins")
    print(f"join order: {' -> '.join(plan.aliases)}")
    print()

    curve = decision.cumulative_costs
    if curve:
        top = max(curve)
        print("Fig 5 — cumulative device-side cost per split point:")
        for k, cost in enumerate(curve):
            marker = " <- closest to c_target" if (
                decision.split_index == k) else ""
            print(f"  H{k}: {cost:10.1f} |{bar(cost, top)}{marker}")
        print(f"  c_target = {decision.c_target:.1f}")
        print()

    print("Fig 16 — measured simulated time per strategy:")
    times = {"block-only": env.run(plan, Stack.BLK).total_time}
    for k in range(plan.table_count):
        try:
            times[f"H{k}"] = env.run(plan, Stack.HYBRID,
                                     split_index=k).total_time
        except Exception as error:
            print(f"  H{k}: infeasible ({error})")
    try:
        times["ndp-only"] = env.run(plan, Stack.NDP).total_time
    except Exception as error:
        print(f"  ndp-only: infeasible ({error})")

    top = max(times.values())
    best = min(times, key=lambda k: times[k])
    for label, value in times.items():
        marker = " <- fastest" if label == best else ""
        print(f"  {label:>10}: {value * 1e3:9.3f} ms "
              f"|{bar(value, top)}{marker}")
    print()
    print(f"planner chose: {decision.strategy_name} ({decision.reason})")
    print(f"empirical best: {best}")


if __name__ == "__main__":
    main()
