#!/usr/bin/env python3
"""Consumer vs enterprise smart storage (paper §7 discussion).

The paper argues the offloading balance depends on the device class:
consumer COSMOS+-grade devices (~150-200 EUR/TB, weak compute) favour
data-movement reduction, enterprise devices (~500-1000 EUR/TB, 16-24
cores) can carry computationally intensive work.  This example runs the
same Q8c split sweep on both profiles.

    python examples/device_classes.py
"""

from repro import Stack
from repro.storage.machines import enterprise_device
from repro.workloads import query
from repro.workloads.loader import build_environment


def sweep(env, sql):
    plan = env.runner.plan(sql)
    times = {"host-only": env.run(plan, Stack.BLK).total_time}
    for k in range(plan.table_count):
        times[f"H{k}"] = env.run(plan, Stack.HYBRID,
                                 split_index=k).total_time
    times["full-ndp"] = env.run(plan, Stack.NDP).total_time
    return times


def main():
    sql = query("8c")
    print("building consumer (COSMOS+) environment...")
    consumer = build_environment(scale=0.0004, seed=7)
    print("building enterprise environment...")
    enterprise = build_environment(scale=0.0004, seed=7,
                                   device_spec=enterprise_device())

    consumer_times = sweep(consumer, sql)
    enterprise_times = sweep(enterprise, sql)

    print()
    print(f"{'strategy':<10} {'COSMOS+ [ms]':>14} {'enterprise [ms]':>16}")
    for name in consumer_times:
        c = consumer_times[name] * 1e3
        e = enterprise_times[name] * 1e3
        print(f"{name:<10} {c:>14.3f} {e:>16.3f}")

    best_c = min((v, k) for k, v in consumer_times.items()
                 if k.startswith("H") or k == "full-ndp")
    best_e = min((v, k) for k, v in enterprise_times.items()
                 if k.startswith("H") or k == "full-ndp")
    print()
    print(f"consumer best offload:   {best_c[1]} "
          f"({consumer_times['host-only'] / best_c[0]:.2f}x vs host)")
    print(f"enterprise best offload: {best_e[1]} "
          f"({enterprise_times['host-only'] / best_e[0]:.2f}x vs host)")
    print()
    print("The stronger device tolerates later splits: its penalty for")
    print("carrying joins shrinks, shifting the optimum to the right —")
    print("exactly the §7 argument about device classes.")


if __name__ == "__main__":
    main()
