#!/usr/bin/env python3
"""Visualize the cooperative execution timeline (paper Figs 7/17).

Runs JOB Q8d at a hybrid split and renders an ASCII Gantt chart of the
host and device lanes: NDP setup, device batch production, host waits,
PCIe transfers, host processing, and device stalls when the shared
buffer slots fill up.

    python examples/cooperative_timeline.py [query] [split]
"""

import sys

from repro import Stack, open_database
from repro.workloads import query

_GLYPH = {"setup": "S", "compute": "#", "transfer": "T", "wait": ".",
          "stall": "x"}


def render_lane(phases, total, width=100):
    lane = [" "] * width
    for phase in phases:
        start = int(width * phase.start / total)
        end = max(start + 1, int(width * phase.end / total))
        for i in range(start, min(end, width)):
            lane[i] = _GLYPH[phase.kind]
    return "".join(lane)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "8d"
    split = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    env = open_database(scale=0.0004)
    report = env.run(query(name), Stack.HYBRID, split_index=split)

    total = report.total_time
    print(f"JOB Q{name} at H{split}: {total * 1e3:.3f} ms simulated, "
          f"{report.batches} result batches, "
          f"{report.intermediate_rows} intermediate rows")
    print(f"legend: S=setup  #=compute  T=transfer  .=wait  x=stall")
    print()
    for actor in ("device", "host"):
        phases = [p for p in report.timeline if p.actor == actor]
        print(f"{actor:>7} |{render_lane(phases, total)}|")
    print()
    shares = report.host_stage_shares()
    print("host stage shares (Table 4 left):")
    for stage, share in shares.items():
        print(f"  {stage:<16} {share:6.2f}%")
    print()
    print("device operation shares (Table 4 right):")
    for op, share in sorted(report.device_operation_shares().items(),
                            key=lambda kv: -kv[1]):
        print(f"  {op:<24} {share:6.2f}%")


if __name__ == "__main__":
    main()
