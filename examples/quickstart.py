#!/usr/bin/env python3
"""Quickstart: load the synthetic JOB dataset, run one query everywhere.

Builds the environment (synthetic IMDB over the nKV-style LSM store on
a simulated COSMOS+ device), runs JOB Q1a on every stack, and shows the
hybridNDP planner's automated offloading decision.

    python examples/quickstart.py
"""

from repro import Stack, open_database
from repro.workloads import query


def main():
    print("Building environment (synthetic JOB, tiny scale)...")
    env = open_database(scale=0.0004)
    print(f"  loaded {env.total_rows:,} rows "
          f"({env.total_bytes / 1e6:.1f} MB) across 21 tables")
    print(f"  device: {env.device.spec.name}, "
          f"compute gap {env.hardware.compute_gap:.1f}x, "
          f"PCIe {env.hardware.hw_ipv}.0 x{env.hardware.hw_ipl}")
    print()

    sql = query("1a")
    plan = env.runner.plan(sql)
    print("JOB Q1a plan:")
    print(plan.describe())
    print()

    print(f"{'strategy':<12} {'time [ms]':>10}  result")
    for stack, split in [(Stack.BLK, None), (Stack.NATIVE, None),
                         (Stack.HYBRID, 1), (Stack.HYBRID, 2),
                         (Stack.NDP, None)]:
        report = env.run(plan, stack, split_index=split)
        row = report.result.rows[0]
        print(f"{report.strategy:<12} {report.total_time * 1e3:>10.3f}  "
              f"{dict(list(row.items())[:2])}")
    print()

    decision = env.decide(plan)
    print("hybridNDP decision:", decision.summary())
    print(f"  preconditions: {decision.preconditions}")
    print(f"  cumulative split costs (Fig 5 curve): "
          f"{[round(c, 1) for c in decision.cumulative_costs]}")
    print(f"  c_target = {decision.c_target:.1f} "
          f"(split_cpu {decision.split_cpu:.2f}%, "
          f"split_mem {decision.split_mem:.2f}%)")


if __name__ == "__main__":
    main()
