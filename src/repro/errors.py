"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """A storage-device operation failed (bad page, out-of-range read...)."""


class LSMError(ReproError):
    """An LSM-tree invariant was violated or an operation was invalid."""


class SchemaError(ReproError):
    """A relational schema is inconsistent or a record does not match it."""


class CatalogError(ReproError):
    """A table, column, or index was not found in the catalog."""


class ParseError(ReproError):
    """The SQL text could not be parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A query plan could not be constructed or is malformed."""


class ExecutionError(ReproError):
    """Query execution failed."""


class ResourceError(ReproError):
    """A simulated resource was used inconsistently (over-subscription)."""


class DeviceOverloadError(ExecutionError):
    """The NDP device ran out of memory or buffer slots for the request."""


class AdmissionTimeoutError(DeviceOverloadError):
    """Admission control gave up waiting for device buffers.

    A :class:`DeviceOverloadError` subclass (existing overload handling —
    host placement, queueing — applies unchanged) that additionally names
    *which* query timed out on *which* device so resilience reporting can
    attribute the fallback.
    """

    def __init__(self, message, query=None, device=None, waited=0.0):
        super().__init__(message)
        self.query = query          # query label, when known
        self.device = device        # device spec name / index, when known
        self.waited = waited        # seconds the admission wait would need


class OffloadError(ReproError):
    """An NDP offload precondition was violated."""


class TransientDeviceError(ExecutionError):
    """A device command failed transiently; retrying may succeed.

    Raised by the fault injector for injected NDP command-submission
    failures.  The cooperative executor retries with exponential backoff
    in simulated time instead of failing the strategy outright.
    """


class DeadlineExceededError(ExecutionError):
    """A query blew its simulated-time deadline and was cancelled.

    Carries a partial audit of the work done before cancellation so
    callers can account the wasted effort: ``deadline`` is the budget,
    ``elapsed`` the simulated time actually consumed, and ``partial`` a
    JSON-ready dict of whatever progress the layer that cancelled could
    observe (completed partitions, retries, wasted time...).
    """

    def __init__(self, message, deadline=None, elapsed=None, retries=0,
                 wasted_time=0.0, faults_injected=None, partial=None):
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed
        self.retries = retries
        self.wasted_time = wasted_time
        self.faults_injected = dict(faults_injected or {})
        self.partial = dict(partial or {})


class ReplanTriggered(ExecutionError):
    """A pipeline-breaker check cancelled the run to re-plan mid-flight.

    Internal control flow of adaptive execution (docs/adaptivity.md):
    the breaker hook observed a cardinality estimate off by more than
    the :class:`~repro.core.planning.ReplanPolicy` threshold and
    cooperatively cancelled the simulation.  ``elapsed`` is the
    cancelled attempt's simulated cost (the price of changing course),
    ``batches_consumed`` how far the host side got.  The adaptive
    driver catches this and restarts the remaining work under the
    revised decision; it escaping to user code is a bug.
    """

    def __init__(self, message, strategy=None, at=0.0, elapsed=0.0,
                 batches_consumed=0, batches_total=0):
        super().__init__(message)
        self.strategy = strategy
        self.at = at
        self.elapsed = elapsed
        self.batches_consumed = batches_consumed
        self.batches_total = batches_total


class RetriesExhaustedError(ExecutionError):
    """An offloaded execution gave up after its bounded retries.

    Carries what the abandoned attempt cost so the caller (``StackRunner``
    mid-query fallback) can account it on the degraded report.
    """

    def __init__(self, message, strategy=None, retries=0, wasted_time=0.0,
                 faults_injected=None):
        super().__init__(message)
        self.strategy = strategy
        self.retries = retries
        self.wasted_time = wasted_time
        self.faults_injected = dict(faults_injected or {})
