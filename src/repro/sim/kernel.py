"""The shared simulation kernel: one clock, one loop, one resource set.

A :class:`SimContext` bundles the handles every simulated execution
needs — the :class:`~repro.sim.SimClock`, the
:class:`~repro.sim.EventLoop`, and the three contended
:class:`~repro.sim.BusyResource`\\ s (PCIe link, NDP core, host CPU).
Single-query runs build a private context implicitly; the concurrent
scheduler (:mod:`repro.sched`) builds one explicitly and admits many
queries onto it, so cross-query contention shows up as queueing delay on
the shared resources instead of being invisible.
"""

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.resources import BusyResource
from repro.sim.trace import as_tracer

#: Resource names used in ``ExecutionReport.resource_stats`` / timelines.
LINK_RESOURCE = "pcie_link"
DEVICE_RESOURCE = "device_core1"
HOST_RESOURCE = "host_cpu"


@dataclass
class SimContext:
    """One simulated machine: clock, event loop, and its busy resources."""

    clock: SimClock
    loop: EventLoop
    link: BusyResource
    core: BusyResource
    cpu: BusyResource

    @classmethod
    def fresh(cls, tracer=None):
        """A new kernel at time zero with the canonical resource names."""
        tracer = as_tracer(tracer)
        clock = SimClock()
        return cls(
            clock=clock,
            loop=EventLoop(clock, tracer=tracer),
            link=BusyResource(LINK_RESOURCE, tracer=tracer),
            core=BusyResource(DEVICE_RESOURCE, tracer=tracer),
            cpu=BusyResource(HOST_RESOURCE, tracer=tracer),
        )

    @property
    def now(self):
        """Current simulated time."""
        return self.clock.now

    @property
    def horizon(self):
        """Latest simulated instant any resource is booked until."""
        return max(self.clock.now, self.link.free_at, self.core.free_at,
                   self.cpu.free_at)

    def resources(self):
        """The busy resources in canonical (link, core, cpu) order."""
        return (self.link, self.core, self.cpu)

    def resource_stats(self, horizon=None):
        """``{name: stats}`` for all resources over ``[0, horizon]``."""
        if horizon is None:
            horizon = self.horizon
        return {resource.name: resource.stats(horizon)
                for resource in self.resources()}


def device_resource_names(index):
    """``(link_name, core_name)`` for device ``index`` of a cluster."""
    return (f"{LINK_RESOURCE}[{index}]", f"{DEVICE_RESOURCE}[{index}]")


@dataclass
class ClusterSimContext:
    """One simulated multi-device machine on a single kernel.

    One clock, one event loop, one shared host CPU — and one PCIe
    link + NDP core pair *per device* (``pcie_link[i]`` /
    ``device_core1[i]``).  :meth:`view` projects the cluster down to a
    per-device :class:`SimContext` so the cooperative executor's
    simulations run unchanged against device ``i``'s resources while
    still sharing the cluster's timeline and host CPU.
    """

    clock: SimClock
    loop: EventLoop
    cpu: BusyResource
    links: list
    cores: list

    @classmethod
    def fresh(cls, n_devices, tracer=None):
        """A new cluster kernel at time zero with ``n_devices`` devices."""
        if n_devices < 1:
            raise ValueError("a cluster needs at least one device")
        tracer = as_tracer(tracer)
        clock = SimClock()
        links, cores = [], []
        for index in range(n_devices):
            link_name, core_name = device_resource_names(index)
            links.append(BusyResource(link_name, tracer=tracer))
            cores.append(BusyResource(core_name, tracer=tracer))
        return cls(
            clock=clock,
            loop=EventLoop(clock, tracer=tracer),
            cpu=BusyResource(HOST_RESOURCE, tracer=tracer),
            links=links,
            cores=cores,
        )

    @property
    def n_devices(self):
        """How many devices share this kernel."""
        return len(self.links)

    def view(self, index):
        """Device ``index``'s slice of the kernel as a :class:`SimContext`.

        The view shares the cluster's clock, loop and host CPU; its link
        and core are the device's own resources, so per-device
        contention and utilization fall out of the one shared timeline.
        """
        return SimContext(clock=self.clock, loop=self.loop,
                          link=self.links[index], core=self.cores[index],
                          cpu=self.cpu)

    @property
    def now(self):
        """Current simulated time."""
        return self.clock.now

    def resources(self):
        """All busy resources: per-device pairs, then the host CPU."""
        out = []
        for link, core in zip(self.links, self.cores):
            out.extend((link, core))
        out.append(self.cpu)
        return tuple(out)

    @property
    def horizon(self):
        """Latest simulated instant any resource is booked until."""
        return max(self.clock.now,
                   *(resource.free_at for resource in self.resources()))

    def resource_stats(self, horizon=None):
        """``{name: stats}`` for all resources over ``[0, horizon]``."""
        if horizon is None:
            horizon = self.horizon
        return {resource.name: resource.stats(horizon)
                for resource in self.resources()}
