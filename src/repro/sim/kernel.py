"""The shared simulation kernel: one clock, one loop, one resource set.

A :class:`SimContext` bundles the handles every simulated execution
needs — the :class:`~repro.sim.SimClock`, the
:class:`~repro.sim.EventLoop`, and the three contended
:class:`~repro.sim.BusyResource`\\ s (PCIe link, NDP core, host CPU).
Single-query runs build a private context implicitly; the concurrent
scheduler (:mod:`repro.sched`) builds one explicitly and admits many
queries onto it, so cross-query contention shows up as queueing delay on
the shared resources instead of being invisible.
"""

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.resources import BusyResource
from repro.sim.trace import as_tracer

#: Resource names used in ``ExecutionReport.resource_stats`` / timelines.
LINK_RESOURCE = "pcie_link"
DEVICE_RESOURCE = "device_core1"
HOST_RESOURCE = "host_cpu"


@dataclass
class SimContext:
    """One simulated machine: clock, event loop, and its busy resources."""

    clock: SimClock
    loop: EventLoop
    link: BusyResource
    core: BusyResource
    cpu: BusyResource

    @classmethod
    def fresh(cls, tracer=None):
        """A new kernel at time zero with the canonical resource names."""
        tracer = as_tracer(tracer)
        clock = SimClock()
        return cls(
            clock=clock,
            loop=EventLoop(clock, tracer=tracer),
            link=BusyResource(LINK_RESOURCE, tracer=tracer),
            core=BusyResource(DEVICE_RESOURCE, tracer=tracer),
            cpu=BusyResource(HOST_RESOURCE, tracer=tracer),
        )

    @property
    def now(self):
        """Current simulated time."""
        return self.clock.now

    @property
    def horizon(self):
        """Latest simulated instant any resource is booked until."""
        return max(self.clock.now, self.link.free_at, self.core.free_at,
                   self.cpu.free_at)

    def resources(self):
        """The busy resources in canonical (link, core, cpu) order."""
        return (self.link, self.core, self.cpu)

    def resource_stats(self, horizon=None):
        """``{name: stats}`` for all resources over ``[0, horizon]``."""
        if horizon is None:
            horizon = self.horizon
        return {resource.name: resource.stats(horizon)
                for resource in self.resources()}
