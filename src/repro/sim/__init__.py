"""Deterministic simulated-time kernel.

The cooperative execution model (paper §4) overlaps host and device work.
Rather than measuring Python wall-clock time (which cannot reflect the
COSMOS+ / host hardware gap), execution engines count physical work and the
kernel here advances a simulated clock.  Everything is deterministic.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventLoop
from repro.sim.kernel import (DEVICE_RESOURCE, HOST_RESOURCE, LINK_RESOURCE,
                              ClusterSimContext, SimContext,
                              device_resource_names)
from repro.sim.resources import BusyResource
from repro.sim.trace import (NULL_TRACER, CounterRecord, InstantRecord,
                             NullTracer, SpanRecord, Tracer, as_tracer)

__all__ = ["SimClock", "Event", "EventLoop", "BusyResource", "SimContext",
           "ClusterSimContext", "device_resource_names",
           "LINK_RESOURCE", "DEVICE_RESOURCE", "HOST_RESOURCE", "Tracer",
           "NullTracer", "NULL_TRACER", "SpanRecord", "InstantRecord",
           "CounterRecord", "as_tracer"]
