"""Busy-until resources.

A :class:`BusyResource` models a serially-used component (a device core, a
PCIe link) on the simulated timeline: requests queue FIFO and each holds the
resource for its duration.  :class:`~repro.engine.cooperative.\
CooperativeExecutor` builds its timelines on these — the NDP command
payload, batch transfers, and result pushes all acquire the link resource,
so contention shows up as queuing delay instead of silently overlapping.
"""

from repro.errors import ResourceError
from repro.sim.trace import as_tracer

#: Relative slack allowed before ``utilization`` calls over-subscription.
_UTILIZATION_TOLERANCE = 1e-9


class BusyResource:
    """A resource that serves one request at a time.

    ``acquire(start, duration)`` returns ``(begin, end)``: the request
    begins at ``max(start, free_at)`` and ends ``duration`` later.  Total
    busy and wait times are tracked for reporting.

    With a :class:`~repro.sim.trace.Tracer` attached, every acquisition
    is recorded as a busy span on track ``resource/<name>`` (whose end is
    the release) and any queueing delay in front of it as a span on
    ``resource/<name>/queue``.
    """

    def __init__(self, name, tracer=None):
        self.name = name
        self.tracer = as_tracer(tracer)
        self._free_at = 0.0
        self._busy_time = 0.0
        self._wait_time = 0.0
        self._requests = 0
        self._last_begin = 0.0

    @property
    def free_at(self):
        """Earliest simulated time the next request could begin."""
        return self._free_at

    @property
    def busy_time(self):
        """Total simulated seconds spent serving requests."""
        return self._busy_time

    @property
    def wait_time(self):
        """Total simulated seconds requests spent queued."""
        return self._wait_time

    @property
    def requests(self):
        """Number of requests served."""
        return self._requests

    def acquire(self, start, duration, label=""):
        """Serve a request arriving at ``start`` needing ``duration`` seconds.

        ``label`` only names the trace spans; it does not change timing.
        """
        begin = max(start, self._free_at)
        end = begin + duration
        self._wait_time += begin - start
        self._busy_time += duration
        self._free_at = end
        self._requests += 1
        self._last_begin = begin
        if self.tracer.enabled:
            if begin > start:
                self.tracer.span(f"resource/{self.name}/queue",
                                 label or "request", start, begin,
                                 category="queue",
                                 args={"resource": self.name,
                                       "wait": begin - start})
            self.tracer.span(f"resource/{self.name}", label or "busy",
                             begin, end, category="busy",
                             args={"resource": self.name,
                                   "request": self._requests})
        return begin, end

    def truncate(self, now):
        """Give back the unserved tail of the last booking.

        Cooperative cancellation interrupts whatever request is in
        flight at ``now``: if ``now`` falls *inside* the most recent
        booking, the resource frees at ``now`` and the reclaimed tail is
        removed from busy time (the part already served stays, the
        honest wasted cost).  Any other shape — the booking already
        ended, or a later caller booked behind it — is left untouched,
        so a shared resource can never lose another request's interval.
        Returns the reclaimed seconds (0.0 when nothing was cut).
        """
        if now >= self._free_at or now < self._last_begin:
            return 0.0
        reclaimed = self._free_at - now
        self._busy_time -= reclaimed
        self._free_at = now
        if self.tracer.enabled:
            self.tracer.instant(f"resource/{self.name}",
                                "cancelled: booking truncated", now,
                                args={"resource": self.name,
                                      "reclaimed": reclaimed})
        return reclaimed

    def utilization(self, horizon):
        """Fraction of ``[0, horizon]`` the resource was busy.

        A serially-used resource can never be busy longer than the horizon
        it ran in; if it is, some caller double-booked it, so the value is
        NOT clamped — over-subscription raises :class:`ResourceError`.
        """
        if horizon <= 0:
            return 0.0
        utilization = self._busy_time / horizon
        if utilization > 1.0 + _UTILIZATION_TOLERANCE:
            raise ResourceError(
                f"resource {self.name!r} busy for {self._busy_time:.9f}s "
                f"inside a {horizon:.9f}s horizon (utilization "
                f"{utilization:.3f} > 1); requests were double-booked")
        return utilization

    def stats(self, horizon):
        """Busy/wait/request/utilization summary for reporting."""
        return {
            "busy_time": self._busy_time,
            "wait_time": self._wait_time,
            "requests": self._requests,
            "utilization": self.utilization(horizon),
        }

    def reset(self):
        """Forget all history; the resource becomes free at time zero."""
        self._free_at = 0.0
        self._busy_time = 0.0
        self._wait_time = 0.0
        self._requests = 0
        self._last_begin = 0.0

    def __repr__(self):
        return (
            f"BusyResource({self.name!r}, free_at={self._free_at:.6f}, "
            f"busy={self._busy_time:.6f})"
        )
