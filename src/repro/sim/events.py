"""A small discrete-event loop.

Used by the cooperative executor to interleave host- and device-side
progress.  Events fire in timestamp order; ties break by insertion order so
runs are fully deterministic.
"""

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sim.trace import as_tracer


@dataclass(order=True)
class Event:
    """An event scheduled at a simulated timestamp."""

    time: float
    seq: int
    action: object = field(compare=False)
    label: str = field(compare=False, default="")


class EventLoop:
    """Timestamp-ordered event loop over a shared :class:`SimClock`.

    Actions are callables invoked with no arguments; they may schedule
    further events.  ``run()`` drains the queue and returns the final time.

    With a :class:`~repro.sim.trace.Tracer` attached, every fired event
    is recorded as an instant on the ``events`` track.
    """

    def __init__(self, clock, tracer=None):
        self._clock = clock
        self.tracer = as_tracer(tracer)
        self._queue = []
        self._counter = itertools.count()
        self._fired = 0

    @property
    def fired(self):
        """Number of events executed so far."""
        return self._fired

    @property
    def pending(self):
        """Number of events still queued."""
        return len(self._queue)

    def schedule_at(self, time, action, label=""):
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._clock.now:
            raise ReproError(
                f"cannot schedule event at {time} before now={self._clock.now}"
            )
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay, action, label=""):
        """Schedule ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ReproError(f"negative delay {delay}")
        return self.schedule_at(self._clock.now + delay, action, label=label)

    def step(self):
        """Execute the next event; return it, or None if the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._clock.advance_to(event.time)
        self._fired += 1
        if self.tracer.enabled:
            self.tracer.instant("events", event.label or "event", event.time,
                                args={"seq": event.seq})
        event.action()
        return event

    def run(self, max_events=1_000_000):
        """Drain the queue. ``max_events`` guards against runaway loops."""
        while self._queue:
            if self._fired >= max_events:
                raise ReproError(f"event loop exceeded {max_events} events")
            self.step()
        return self._clock.now
