"""Simulated clock.

All simulated durations in this package are expressed in *seconds* as
floats.  The clock is monotonic: it can only be advanced, never rewound.
"""

from repro.errors import ReproError


class SimClock:
    """A monotonic simulated clock.

    >>> clock = SimClock()
    >>> clock.advance(1.5)
    1.5
    >>> clock.advance_to(2.0)
    2.0
    >>> clock.now
    2.0
    """

    def __init__(self, start=0.0):
        if start < 0:
            raise ReproError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta):
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ReproError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp):
        """Advance the clock to ``timestamp``; no-op if already past it."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self):
        """Reset the clock to time zero."""
        self._now = 0.0

    def __repr__(self):
        return f"SimClock(now={self._now:.9f})"
