"""Execution tracing: structured spans/instants over the simulated clock.

A :class:`Tracer` records what the sim kernel actually scheduled — every
resource acquisition (and the queueing wait in front of it), every event
the loop fired, and every executor-level phase — as flat, stable-id
records on named *tracks*.  Records are pure data; nothing here advances
time or owns behaviour, so a tracer can be attached to any combination of
:class:`~repro.sim.SimClock` / :class:`~repro.sim.EventLoop` /
:class:`~repro.sim.BusyResource` users without changing what they compute.

Tracks are free-form strings; the conventions used by the cooperative
executor are documented in ``docs/observability.md``:

- ``exec``                     — one root span per execution (H2, full-ndp, ...)
- ``host/<kind>``              — host-side phases (setup/wait/transfer/compute)
- ``device/<kind>``            — device-side phases (compute/transfer/stall)
- ``resource/<name>``          — busy intervals of one :class:`BusyResource`
- ``resource/<name>/queue``    — the queueing delay before a busy interval
- ``events``                   — instants for every fired sim event

Tracing is zero-cost when off: the default collaborator is the singleton
:data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled`` flag
lets hot paths skip building argument dicts entirely.

Exports: :meth:`Tracer.to_chrome` produces a Chrome ``trace_event`` JSON
object (the format ui.perfetto.dev opens directly); :meth:`Tracer.dumps`
serialises it canonically (sorted keys, compact separators) so identical
runs produce byte-identical trace files; :meth:`Tracer.metrics` reduces
the records to a flat dict that :class:`~repro.engine.results.\
ExecutionReport.to_dict` carries as ``trace_metrics``.
"""

import itertools
import json
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Simulated seconds -> Chrome trace_event microseconds.
_MICROSECONDS = 1e6


@dataclass(frozen=True)
class SpanRecord:
    """One closed interval on one track."""

    id: int
    track: str
    name: str
    category: str
    start: float
    end: float
    parent: int = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self):
        """Length of the span."""
        return self.end - self.start


@dataclass(frozen=True)
class InstantRecord:
    """One zero-duration moment on one track."""

    id: int
    track: str
    name: str
    time: float
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CounterRecord:
    """A named set of numeric values sampled at one moment."""

    id: int
    track: str
    name: str
    time: float
    values: dict = field(default_factory=dict)


class NullTracer:
    """The do-nothing tracer: the default everywhere tracing is optional.

    ``enabled`` is False so instrumented code can skip building argument
    payloads; every recording method accepts anything and returns a dummy
    id.  ``metrics()`` is an empty dict, keeping report serialisation
    uniform whether or not a run was traced.
    """

    __slots__ = ()
    enabled = False

    def span(self, *args, **kwargs):
        """Record nothing; return a dummy span id."""
        return 0

    def begin(self, *args, **kwargs):
        """Open nothing; return a dummy span id."""
        return 0

    def end(self, *args, **kwargs):
        """Close nothing."""

    def instant(self, *args, **kwargs):
        """Record nothing; return a dummy record id."""
        return 0

    def counter(self, *args, **kwargs):
        """Record nothing; return a dummy record id."""
        return 0

    def metrics(self):
        """No trace, no metrics."""
        return {}


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the idiom.
NULL_TRACER = NullTracer()


def as_tracer(tracer):
    """Normalise an optional tracer argument to a usable collaborator."""
    return NULL_TRACER if tracer is None else tracer


class Tracer:
    """Collects span/instant/counter records with stable ids.

    Ids are handed out from a single monotonically increasing counter in
    recording order, so a deterministic simulation produces a
    deterministic trace — the property the golden-trace regression test
    pins down.
    """

    enabled = True

    def __init__(self):
        self._ids = itertools.count(1)
        self._spans = []
        self._instants = []
        self._counters = []
        self._open = {}

    # -- recording ------------------------------------------------------
    @property
    def spans(self):
        """All closed spans, in recording order."""
        return list(self._spans)

    @property
    def instants(self):
        """All instants, in recording order."""
        return list(self._instants)

    @property
    def counter_records(self):
        """All counter samples, in recording order."""
        return list(self._counters)

    def span(self, track, name, start, end, category="", parent=None,
             args=None):
        """Record a closed interval; returns its stable id."""
        if end < start:
            raise ReproError(
                f"span {name!r} on {track!r} ends at {end} before its "
                f"start {start}")
        if start < 0:
            raise ReproError(f"span {name!r} starts at negative time {start}")
        record = SpanRecord(id=next(self._ids), track=track, name=name,
                            category=category, start=float(start),
                            end=float(end), parent=parent,
                            args=dict(args or {}))
        self._spans.append(record)
        return record.id

    def begin(self, track, name, start, category="", parent=None, args=None):
        """Open a span whose end is not known yet; returns its id.

        Used for the root execution span: children need the parent id
        before the total time exists.  Every opened span must be closed
        with :meth:`end` before export.
        """
        if start < 0:
            raise ReproError(f"span {name!r} starts at negative time {start}")
        span_id = next(self._ids)
        self._open[span_id] = (track, name, float(start), category, parent,
                               dict(args or {}))
        return span_id

    def end(self, span_id, end):
        """Close a span previously opened with :meth:`begin`."""
        if span_id not in self._open:
            raise ReproError(f"span id {span_id} is not open")
        track, name, start, category, parent, args = self._open.pop(span_id)
        if end < start:
            raise ReproError(
                f"span {name!r} on {track!r} ends at {end} before its "
                f"start {start}")
        self._spans.append(SpanRecord(
            id=span_id, track=track, name=name, category=category,
            start=start, end=float(end), parent=parent, args=args))

    def instant(self, track, name, time, args=None):
        """Record a zero-duration moment; returns its stable id."""
        record = InstantRecord(id=next(self._ids), track=track, name=name,
                               time=float(time), args=dict(args or {}))
        self._instants.append(record)
        return record.id

    def counter(self, track, name, time, values):
        """Record a numeric sample set; returns its stable id."""
        record = CounterRecord(id=next(self._ids), track=track, name=name,
                               time=float(time), values=dict(values))
        self._counters.append(record)
        return record.id

    # -- reduction ------------------------------------------------------
    def metrics(self):
        """Flat ``{metric_name: number}`` summary of the trace.

        Per-track span time, per-category span time, and record counts —
        the dict ``ExecutionReport.to_dict()`` exposes as
        ``trace_metrics``.
        """
        track_time = {}
        category_time = {}
        for span in self._spans:
            track_time[span.track] = (track_time.get(span.track, 0.0)
                                      + span.duration)
            if span.category:
                category_time[span.category] = (
                    category_time.get(span.category, 0.0) + span.duration)
        flat = {
            "spans": len(self._spans),
            "instants": len(self._instants),
            "counter_samples": len(self._counters),
        }
        for track in sorted(track_time):
            flat[f"span_time.{track}"] = track_time[track]
        for category in sorted(category_time):
            flat[f"category_time.{category}"] = category_time[category]
        return flat

    # -- export ---------------------------------------------------------
    def _track_ids(self):
        """Deterministic track -> tid mapping (first-use order)."""
        tids = {}
        for record in itertools.chain(self._spans, self._instants,
                                      self._counters):
            if record.track not in tids:
                tids[record.track] = len(tids) + 1
        return tids

    def to_chrome(self, process_name="hybridNDP-sim"):
        """The trace as a Chrome ``trace_event`` JSON object.

        Spans become complete (``ph="X"``) events, instants become
        thread-scoped instant (``ph="i"``) events and counter samples
        become ``ph="C"`` events; timestamps are microseconds.  The
        object loads directly in ``ui.perfetto.dev`` or
        ``chrome://tracing``.
        """
        if self._open:
            names = sorted(record[1] for record in self._open.values())
            raise ReproError(f"cannot export with open spans: {names}")
        tids = self._track_ids()
        events = [{
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        }]
        for track, tid in tids.items():
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_name", "args": {"name": track}})
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_sort_index",
                           "args": {"sort_index": tid}})
        records = []
        for span in self._spans:
            args = dict(span.args)
            args["span_id"] = span.id
            if span.parent is not None:
                args["parent_span_id"] = span.parent
            records.append((span.start, tids[span.track], span.id, {
                "ph": "X", "pid": 1, "tid": tids[span.track],
                "ts": span.start * _MICROSECONDS,
                "dur": span.duration * _MICROSECONDS,
                "name": span.name, "cat": span.category or "span",
                "args": args,
            }))
        for instant in self._instants:
            args = dict(instant.args)
            args["record_id"] = instant.id
            records.append((instant.time, tids[instant.track], instant.id, {
                "ph": "i", "pid": 1, "tid": tids[instant.track],
                "ts": instant.time * _MICROSECONDS, "s": "t",
                "name": instant.name, "args": args,
            }))
        for sample in self._counters:
            records.append((sample.time, tids[sample.track], sample.id, {
                "ph": "C", "pid": 1, "tid": tids[sample.track],
                "ts": sample.time * _MICROSECONDS,
                "name": sample.name, "args": dict(sample.values),
            }))
        records.sort(key=lambda item: (item[0], item[1], item[2]))
        events.extend(event for _ts, _tid, _rid, event in records)
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def dumps(self, process_name="hybridNDP-sim"):
        """Canonical JSON text of :meth:`to_chrome`.

        Sorted keys and compact separators: two identical simulations
        serialise to byte-identical text.
        """
        return json.dumps(self.to_chrome(process_name=process_name),
                          sort_keys=True, separators=(",", ":"))

    def write(self, path, process_name="hybridNDP-sim"):
        """Write the canonical Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps(process_name=process_name))
            handle.write("\n")
        return path

    def __repr__(self):
        return (f"Tracer(spans={len(self._spans)}, "
                f"instants={len(self._instants)}, "
                f"counters={len(self._counters)}, open={len(self._open)})")
