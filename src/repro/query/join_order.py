"""Greedy left-deep join ordering with sampled statistics.

Mirrors the MySQL/MyRocks behaviour the paper relies on (§3.2 "Join"):
estimate the best access path per table, pick a cheap driving table, then
repeatedly attach the connected table that keeps the running intermediate
cardinality lowest.  Join selectivity uses the classical 1/max(NDV)
formula over index-sample distinct counts.
"""

from repro.errors import PlanError


def qualify_row(alias, row):
    """Present a sample row under its qualified column names."""
    return {f"{alias}.{name}": value for name, value in row.items()}


def filtered_cardinality(spec, catalog, alias):
    """(selectivity, rows) of one table after its local filter."""
    table = catalog.table(spec.tables[alias])
    stats = table.statistics
    expr = spec.filter_for(alias)
    if expr is None:
        return 1.0, max(1, stats.row_count)
    selectivity = stats.selectivity(
        lambda row: expr.eval(qualify_row(alias, row)))
    return selectivity, stats.estimated_rows(selectivity)


def join_selectivity(spec, catalog, edge):
    """1/max(NDV) selectivity for one equi-join edge."""
    left_table = catalog.table(spec.tables[edge.left_alias])
    right_table = catalog.table(spec.tables[edge.right_alias])
    left_ndv = left_table.statistics.column(edge.left_column).distinct_estimate
    right_ndv = right_table.statistics.column(
        edge.right_column).distinct_estimate
    ndv = max(left_ndv, right_ndv, 1)
    return 1.0 / ndv


def order_tables(spec, catalog):
    """Compute a left-deep join order.

    Returns ``(ordered_aliases, base_cards, cumulative_cards)`` where
    ``base_cards[alias]`` is the filtered cardinality of each table and
    ``cumulative_cards[i]`` estimates the intermediate result after
    joining the first ``i+1`` tables.
    """
    aliases = spec.aliases
    if not aliases:
        raise PlanError("query references no tables")

    base = {}
    for alias in aliases:
        _selectivity, rows = filtered_cardinality(spec, catalog, alias)
        base[alias] = rows

    if len(aliases) == 1:
        return aliases, base, [base[aliases[0]]]

    remaining = set(aliases)
    # Driving table: the connected table with the smallest filtered
    # cardinality (prefer one that has at least one join edge).
    connected = {alias for alias in aliases if spec.edges_for(alias)}
    candidates = connected or remaining
    driving = min(sorted(candidates), key=lambda alias: base[alias])
    order = [driving]
    remaining.discard(driving)
    cumulative = [base[driving]]
    current = float(base[driving])

    while remaining:
        best = None
        best_rows = None
        for alias in sorted(remaining):
            edges = [edge for edge in spec.edges_for(alias)
                     if edge.other(alias)[0] in order]
            if not edges:
                continue
            rows = current * base[alias]
            for edge in edges:
                rows *= join_selectivity(spec, catalog, edge)
            if best is None or rows < best_rows:
                best, best_rows = alias, rows
        if best is None:
            # Disconnected subgraph: fall back to a cartesian step with
            # the smallest table (JOB has none, but users might).
            best = min(sorted(remaining), key=lambda alias: base[alias])
            best_rows = current * base[best]
        order.append(best)
        remaining.discard(best)
        current = max(1.0, best_rows)
        cumulative.append(int(round(current)))

    return order, base, cumulative
