"""Vectorized predicate evaluation over :class:`~repro.columns.ColumnBatch`.

:func:`eval_mask` maps an expression tree from :mod:`repro.query.ast`
onto a boolean numpy mask, one slot per batch row, with semantics
identical to evaluating ``expr.eval(row)`` on every dict row: SQL
three-valued logic collapses NULL comparisons to False, ``NOT LIKE`` /
``NOT IN`` over NULL stay False, and ``IS [NOT] NULL`` reads the null
mask directly.  Null slots hold filler values (``0`` / ``""``) in the
value arrays; every node masks them out with the column's null mask
before they can influence the result.
"""

import numpy as np

from repro.errors import PlanError
from repro.query.ast import (And, Between, ColumnRef, Comparison, InList,
                             IsNull, Like, Literal, Not, Or, _COMPARATORS)


def _operand(expr, batch):
    """``(values, null_mask)`` for a comparison operand.

    Values are an array for a :class:`ColumnRef`, a Python scalar for a
    :class:`Literal` (``None`` meaning NULL everywhere).
    """
    if isinstance(expr, ColumnRef):
        return batch.column(expr.qualified)
    if isinstance(expr, Literal):
        return expr.value, None
    raise PlanError(
        f"unsupported operand in vectorized predicate: {expr!r}")


def _valid(n, *operands):
    """Mask of rows where every operand is non-null."""
    valid = np.ones(n, dtype=bool)
    for values, mask in operands:
        if values is None:
            return np.zeros(n, dtype=bool)
        if mask is not None:
            valid &= ~mask
    return valid


def _broadcast(raw, n):
    """Normalize a comparator result to an ``(n,)`` bool array.

    Numpy collapses comparisons between incompatible dtypes (an int64
    column against a string literal) to a scalar ``False`` — the same
    outcome Python's ``==`` gives per row — so scalars broadcast.
    """
    arr = np.asarray(raw, dtype=bool)
    if arr.shape != (n,):
        arr = np.broadcast_to(arr, (n,)).copy()
    return arr


def _in_list(values, candidates):
    """Elementwise ``value in candidates`` with Python equality."""
    if values.dtype.kind == "i":
        typed = [v for v in candidates
                 if isinstance(v, int) and not isinstance(v, bool)]
        if not typed:
            return np.zeros(len(values), dtype=bool)
        return np.isin(values, np.array(typed, dtype=np.int64))
    if values.dtype.kind in ("U", "S"):
        typed = [v for v in candidates if isinstance(v, str)]
        if not typed:
            return np.zeros(len(values), dtype=bool)
        return np.isin(values, np.array(typed))
    return np.array([value in candidates for value in values.tolist()],
                    dtype=bool)


def eval_mask(expr, batch):
    """Evaluate ``expr`` over every row of ``batch`` at once.

    Returns a boolean array of ``len(batch)`` slots, identical to
    ``[bool(expr.eval(row)) for row in batch.rows()]``.
    """
    n = len(batch)

    if isinstance(expr, Comparison):
        left = _operand(expr.left, batch)
        right = _operand(expr.right, batch)
        valid = _valid(n, left, right)
        if not valid.any():
            return valid
        raw = _COMPARATORS[expr.op](left[0], right[0])
        return valid & _broadcast(raw, n)

    if isinstance(expr, Like):
        values, mask = _operand(expr.operand, batch)
        if values is None:
            return np.zeros(n, dtype=bool)
        match = expr._regex.match
        matched = np.array(
            [match(str(value)) is not None for value in values.tolist()],
            dtype=bool)
        if expr.negated:
            matched = ~matched
        return matched if mask is None else matched & ~mask

    if isinstance(expr, InList):
        values, mask = _operand(expr.operand, batch)
        if values is None:
            return np.zeros(n, dtype=bool)
        matched = _in_list(values, expr.values)
        if expr.negated:
            matched = ~matched
        return matched if mask is None else matched & ~mask

    if isinstance(expr, Between):
        operand = _operand(expr.operand, batch)
        low = _operand(expr.low, batch)
        high = _operand(expr.high, batch)
        valid = _valid(n, operand, low, high)
        if not valid.any():
            return valid
        return (valid & _broadcast(low[0] <= operand[0], n)
                & _broadcast(operand[0] <= high[0], n))

    if isinstance(expr, IsNull):
        values, mask = _operand(expr.operand, batch)
        if values is None:
            is_null = np.ones(n, dtype=bool)
        elif mask is None:
            is_null = np.zeros(n, dtype=bool)
        else:
            is_null = mask.copy()
        return ~is_null if expr.negated else is_null

    if isinstance(expr, Not):
        return ~eval_mask(expr.operand, batch)

    if isinstance(expr, And):
        result = np.ones(n, dtype=bool)
        for item in expr.items:
            result &= eval_mask(item, batch)
        return result

    if isinstance(expr, Or):
        result = np.zeros(n, dtype=bool)
        for item in expr.items:
            result |= eval_mask(item, batch)
        return result

    raise PlanError(
        f"unsupported expression in vectorized predicate: {expr!r}")
