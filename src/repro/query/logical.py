"""Logical analysis: from a parsed query to a :class:`QuerySpec`.

Binds unqualified columns to their tables, splits the WHERE conjunction
into per-table filters, equi-join edges, and residual predicates (e.g. OR
terms spanning several tables), and derives the per-table projection —
the columns that must survive each table's early projection.
"""

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.query.ast import (ColumnRef, Comparison, conjuncts, make_and)


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join condition ``left_alias.left_col = right_alias.right_col``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def touches(self, alias):
        """Whether this edge involves the alias."""
        return alias in (self.left_alias, self.right_alias)

    def other(self, alias):
        """(alias, column) of the end that is not ``alias``."""
        if alias == self.left_alias:
            return self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.left_alias, self.left_column
        raise PlanError(f"edge {self} does not touch {alias}")

    def column_of(self, alias):
        """Column name on the given side."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise PlanError(f"edge {self} does not touch {alias}")

    def __str__(self):
        return (f"{self.left_alias}.{self.left_column} = "
                f"{self.right_alias}.{self.right_column}")


@dataclass
class QuerySpec:
    """A fully analysed query, ready for join ordering."""

    sql: str
    select_items: list
    tables: dict                      # alias -> table name
    filters: dict                     # alias -> Expr or None
    join_edges: list                  # [JoinEdge]
    residual: object                  # Expr spanning >1 table, or None
    group_by: list
    limit: int
    projections: dict = field(default_factory=dict)  # alias -> [columns]

    @property
    def aliases(self):
        """All table aliases in FROM order."""
        return list(self.tables)

    @property
    def table_count(self):
        """Number of tables joined."""
        return len(self.tables)

    def edges_for(self, alias):
        """Join edges touching one alias."""
        return [edge for edge in self.join_edges if edge.touches(alias)]

    def filter_for(self, alias):
        """The conjunction of single-table predicates for one alias."""
        return self.filters.get(alias)


def _bind(expr, alias_columns):
    """Qualify unqualified ColumnRefs; returns a rewritten expression."""
    if isinstance(expr, ColumnRef):
        if expr.alias:
            return expr
        owners = [alias for alias, columns in alias_columns.items()
                  if expr.column in columns]
        if not owners:
            raise PlanError(f"unknown column {expr.column!r}")
        if len(owners) > 1:
            raise PlanError(
                f"ambiguous column {expr.column!r} (in {sorted(owners)})")
        return ColumnRef(owners[0], expr.column)
    # Rebuild container nodes generically.
    from repro.query import ast as _ast
    if isinstance(expr, _ast.Comparison):
        return _ast.Comparison(expr.op, _bind(expr.left, alias_columns),
                               _bind(expr.right, alias_columns))
    if isinstance(expr, _ast.Like):
        return _ast.Like(_bind(expr.operand, alias_columns), expr.pattern,
                         expr.negated)
    if isinstance(expr, _ast.InList):
        return _ast.InList(_bind(expr.operand, alias_columns), expr.values,
                           expr.negated)
    if isinstance(expr, _ast.Between):
        return _ast.Between(_bind(expr.operand, alias_columns),
                            _bind(expr.low, alias_columns),
                            _bind(expr.high, alias_columns))
    if isinstance(expr, _ast.IsNull):
        return _ast.IsNull(_bind(expr.operand, alias_columns), expr.negated)
    if isinstance(expr, _ast.And):
        return _ast.And(tuple(_bind(i, alias_columns) for i in expr.items))
    if isinstance(expr, _ast.Or):
        return _ast.Or(tuple(_bind(i, alias_columns) for i in expr.items))
    if isinstance(expr, _ast.Not):
        return _ast.Not(_bind(expr.operand, alias_columns))
    if isinstance(expr, _ast.Literal):
        return expr
    raise PlanError(f"cannot bind expression of type {type(expr)}")


def _is_join_conjunct(conjunct):
    """Detects ``a.x = b.y`` with distinct aliases."""
    return (isinstance(conjunct, Comparison) and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
            and conjunct.left.alias != conjunct.right.alias)


def analyze(parsed, catalog, sql=""):
    """Turn a :class:`ParsedQuery` into a :class:`QuerySpec`.

    ``catalog`` resolves table schemas so unqualified columns can be
    bound and per-table projections computed.
    """
    tables = {}
    alias_columns = {}
    for name, alias in parsed.tables:
        if alias in tables:
            raise PlanError(f"duplicate alias {alias!r}")
        table = catalog.table(name)
        tables[alias] = name
        alias_columns[alias] = set(table.schema.column_names)

    where = parsed.where
    if where is not None:
        where = _bind(where, alias_columns)

    select_items = []
    for item in parsed.select_items:
        if item.expr == "*":
            select_items.append(item)
            continue
        bound = _bind(item.expr, alias_columns)
        item.expr = bound
        select_items.append(item)

    group_by = [_bind(col, alias_columns) for col in parsed.group_by]

    filters = {alias: [] for alias in tables}
    join_edges = []
    residual = []
    for conjunct in conjuncts(where):
        if _is_join_conjunct(conjunct):
            join_edges.append(JoinEdge(
                conjunct.left.alias, conjunct.left.column,
                conjunct.right.alias, conjunct.right.column))
            continue
        aliases = conjunct.aliases()
        if len(aliases) == 1:
            filters[next(iter(aliases))].append(conjunct)
        elif len(aliases) == 0:
            residual.append(conjunct)   # constant predicate
        else:
            residual.append(conjunct)

    spec = QuerySpec(
        sql=sql,
        select_items=select_items,
        tables=tables,
        filters={alias: make_and(items) for alias, items in filters.items()},
        join_edges=join_edges,
        residual=make_and(residual),
        group_by=group_by,
        limit=parsed.limit,
    )
    spec.projections = _projections(spec, catalog)
    return spec


def _projections(spec, catalog):
    """Columns each table must deliver (SELECT + joins + residual)."""
    needed = {alias: set() for alias in spec.tables}
    for item in spec.select_items:
        if item.expr == "*":
            for alias, name in spec.tables.items():
                needed[alias].update(
                    catalog.table(name).schema.column_names)
            continue
        ref = item.expr
        needed[ref.alias].add(ref.column)
    for edge in spec.join_edges:
        needed[edge.left_alias].add(edge.left_column)
        needed[edge.right_alias].add(edge.right_column)
    if spec.residual is not None:
        for ref in spec.residual.column_refs():
            needed[ref.alias].add(ref.column)
    for col in spec.group_by:
        needed[col.alias].add(col.column)
    # Filters are applied before projection, but a filtered column still
    # has to be read; it does not have to be *shipped* unless needed above.
    return {alias: sorted(columns) for alias, columns in needed.items()}
