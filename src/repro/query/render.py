"""SQL rendering: the inverse of :mod:`repro.query.parser`.

``render_query`` turns a :class:`~repro.query.parser.ParsedQuery` back
into SQL text that parses to an equal ``ParsedQuery`` — the fixpoint the
workload generator's property tests pin (``parse(render(parse(sql)))
== parse(sql)``).  The renderer is deliberately canonical rather than
source-preserving: redundant parentheses disappear, keywords come out
upper-case, and string literals are re-escaped (quotes doubled,
backslashes doubled), so rendering twice is byte-stable.

The random SQL generator (:mod:`repro.workloads.sqlgen`) and the fuzz
shrinker (:mod:`repro.bench.fuzz`) both build/transform queries at the
``ParsedQuery`` level and rely on this module for the final text.
"""

from repro.errors import ReproError
from repro.query.ast import (And, Between, ColumnRef, Comparison, InList,
                             IsNull, Like, Literal, Not, Or)


def render_string(value):
    """A SQL string literal with quotes and backslashes escaped."""
    body = value.replace("\\", "\\\\").replace("'", "''")
    return f"'{body}'"


def render_value(value):
    """A SQL literal for a python constant (int, float, or str)."""
    if isinstance(value, bool):
        raise ReproError("boolean literals are not part of the grammar")
    if isinstance(value, str):
        return render_string(value)
    if isinstance(value, float):
        # repr keeps the decimal point, so it re-parses as a float.
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise ReproError(f"cannot render literal {value!r}")


def render_expr(expr, parenthesize=False):
    """Render one predicate expression.

    ``parenthesize`` wraps OR groups so they survive embedding in an
    AND conjunction; all other nodes bind tighter than AND and never
    need parentheses.
    """
    if isinstance(expr, ColumnRef):
        return expr.qualified
    if isinstance(expr, Literal):
        return render_value(expr.value)
    if isinstance(expr, Comparison):
        return (f"{render_expr(expr.left)} {expr.op} "
                f"{render_expr(expr.right)}")
    if isinstance(expr, Like):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return (f"{render_expr(expr.operand)} {op} "
                f"{render_string(expr.pattern)}")
    if isinstance(expr, InList):
        op = "NOT IN" if expr.negated else "IN"
        values = ", ".join(render_value(v) for v in expr.values)
        return f"{render_expr(expr.operand)} {op} ({values})"
    if isinstance(expr, Between):
        return (f"{render_expr(expr.operand)} BETWEEN "
                f"{render_expr(expr.low)} AND {render_expr(expr.high)}")
    if isinstance(expr, IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_expr(expr.operand)} {op}"
    if isinstance(expr, Not):
        return f"NOT ({render_expr(expr.operand)})"
    if isinstance(expr, And):
        rendered = " AND ".join(render_expr(item, parenthesize=True)
                                for item in expr.items)
        return f"({rendered})" if parenthesize else rendered
    if isinstance(expr, Or):
        rendered = " OR ".join(render_expr(item) for item in expr.items)
        return f"({rendered})"
    raise ReproError(f"cannot render expression of type {type(expr)}")


def render_select_item(item):
    """Render one SELECT-list entry."""
    if item.aggregate:
        inner = "*" if item.expr == "*" else render_expr(item.expr)
        text = f"{item.aggregate.upper()}({inner})"
    elif item.expr == "*":
        return "*"
    else:
        text = render_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def render_query(parsed):
    """Render a :class:`~repro.query.parser.ParsedQuery` as SQL text."""
    select = ", ".join(render_select_item(item)
                       for item in parsed.select_items)
    tables = ", ".join(f"{name} AS {alias}"
                       for name, alias in parsed.tables)
    parts = [f"SELECT {select}", f"FROM {tables}"]
    if parsed.where is not None:
        parts.append(f"WHERE {render_expr(parsed.where)}")
    if parsed.group_by:
        cols = ", ".join(render_expr(col) for col in parsed.group_by)
        parts.append(f"GROUP BY {cols}")
    if parsed.limit is not None:
        parts.append(f"LIMIT {parsed.limit}")
    return "\n".join(parts)


__all__ = ["render_expr", "render_query", "render_select_item",
           "render_string", "render_value"]
