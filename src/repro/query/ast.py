"""Expression AST and evaluator.

Rows at evaluation time are dicts keyed by qualified column names
(``alias.column``).  Comparisons follow SQL three-valued logic where it
matters for JOB: any comparison with NULL is false, NOT LIKE over NULL is
false, and IS [NOT] NULL tests nullness explicitly.
"""

import re
from dataclasses import dataclass, field

from repro.errors import PlanError


class Expr:
    """Base class for expressions."""

    def eval(self, row):
        """Evaluate against a row dict; subclasses override."""
        raise NotImplementedError

    def column_refs(self):
        """All :class:`ColumnRef` nodes in this subtree."""
        refs = []
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, refs):
        raise NotImplementedError

    def aliases(self):
        """Set of table aliases referenced."""
        return {ref.alias for ref in self.column_refs() if ref.alias}


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to ``alias.column``."""

    alias: str
    column: str

    @property
    def qualified(self):
        """The key used in row dicts."""
        return f"{self.alias}.{self.column}" if self.alias else self.column

    def eval(self, row):
        try:
            return row[self.qualified]
        except KeyError:
            raise PlanError(
                f"column {self.qualified!r} not bound in row") from None

    def _collect_refs(self, refs):
        refs.append(self)

    def __str__(self):
        return self.qualified


@dataclass(frozen=True)
class Literal(Expr):
    """A constant."""

    value: object

    def eval(self, row):
        return self.value

    def _collect_refs(self, refs):
        pass

    def __str__(self):
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def eval(self, row):
        left = self.left.eval(row)
        right = self.right.eval(row)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.op](left, right)

    def _collect_refs(self, refs):
        self.left._collect_refs(refs)
        self.right._collect_refs(refs)

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


def like_to_regex(pattern):
    """Compile a SQL LIKE pattern to a regex (``%`` -> ``.*``, ``_`` -> ``.``)."""
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    operand: Expr
    pattern: str
    negated: bool = False
    _regex: re.Pattern = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "_regex", like_to_regex(self.pattern))

    def eval(self, row):
        value = self.operand.eval(row)
        if value is None:
            return False
        matched = self._regex.match(str(value)) is not None
        return (not matched) if self.negated else matched

    def _collect_refs(self, refs):
        self.operand._collect_refs(refs)

    def __str__(self):
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand} {op} '{self.pattern}'"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    values: tuple
    negated: bool = False

    def eval(self, row):
        value = self.operand.eval(row)
        if value is None:
            return False
        matched = value in self.values
        return (not matched) if self.negated else matched

    def _collect_refs(self, refs):
        self.operand._collect_refs(refs)

    def __str__(self):
        op = "NOT IN" if self.negated else "IN"
        values = ", ".join(repr(v) for v in self.values)
        return f"{self.operand} {op} ({values})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive, as in SQL)."""

    operand: Expr
    low: Expr
    high: Expr

    def eval(self, row):
        value = self.operand.eval(row)
        low = self.low.eval(row)
        high = self.high.eval(row)
        if value is None or low is None or high is None:
            return False
        return low <= value <= high

    def _collect_refs(self, refs):
        self.operand._collect_refs(refs)
        self.low._collect_refs(refs)
        self.high._collect_refs(refs)

    def __str__(self):
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def eval(self, row):
        is_null = self.operand.eval(row) is None
        return (not is_null) if self.negated else is_null

    def _collect_refs(self, refs):
        self.operand._collect_refs(refs)

    def __str__(self):
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {op}"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction."""

    items: tuple

    def eval(self, row):
        return all(item.eval(row) for item in self.items)

    def _collect_refs(self, refs):
        for item in self.items:
            item._collect_refs(refs)

    def __str__(self):
        return "(" + " AND ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction."""

    items: tuple

    def eval(self, row):
        return any(item.eval(row) for item in self.items)

    def _collect_refs(self, refs):
        for item in self.items:
            item._collect_refs(refs)

    def __str__(self):
        return "(" + " OR ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    operand: Expr

    def eval(self, row):
        return not self.operand.eval(row)

    def _collect_refs(self, refs):
        self.operand._collect_refs(refs)

    def __str__(self):
        return f"NOT ({self.operand})"


def conjuncts(expr):
    """Flatten nested ANDs into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        result = []
        for item in expr.items:
            result.extend(conjuncts(item))
        return result
    return [expr]


def make_and(items):
    """Build the smallest AND expression over ``items``."""
    items = [item for item in items if item is not None]
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(tuple(items))
