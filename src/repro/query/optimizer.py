"""The baseline optimizer: SQL -> left-deep physical plan.

Combines parsing, logical analysis, join ordering, access-path selection
and join-algorithm selection.  hybridNDP (repro.core) then extends the
resulting plan with offloading decisions; this module is deliberately the
"vanilla MyRocks" part of the stack.
"""

from repro.query.ast import ColumnRef, Comparison, InList, conjuncts
from repro.query.join_order import (filtered_cardinality, join_selectivity,
                                    order_tables)
from repro.query.logical import analyze
from repro.query.parser import parse_query
from repro.query.physical import (AccessPath, JoinAlgorithm, QueryPlan,
                                  TableAccess)


def _equality_constant_columns(expr, alias):
    """Columns of ``alias`` constrained by ``col = const`` (or small IN)."""
    columns = []
    for conjunct in conjuncts(expr):
        if (isinstance(conjunct, Comparison) and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and conjunct.left.alias == alias
                and not conjunct.right.column_refs()):
            columns.append(conjunct.left.column)
        elif (isinstance(conjunct, InList) and not conjunct.negated
                and isinstance(conjunct.operand, ColumnRef)
                and conjunct.operand.alias == alias
                and len(conjunct.values) <= 8):
            columns.append(conjunct.operand.column)
    return columns


def _choose_access_path(table, local_filter, alias):
    """Pick FULL_SCAN / PK_RANGE / SECONDARY_LOOKUP for a driving table."""
    if local_filter is None:
        return AccessPath.FULL_SCAN, None
    eq_columns = _equality_constant_columns(local_filter, alias)
    for column in eq_columns:
        if column in table.indexes:
            return AccessPath.SECONDARY_LOOKUP, column
    pk = table.schema.primary_key
    for conjunct in conjuncts(local_filter):
        refs = conjunct.column_refs()
        if (len(refs) == 1 and refs[0].column == pk
                and isinstance(conjunct, Comparison)):
            return AccessPath.PK_RANGE, pk
    return AccessPath.FULL_SCAN, None


def build_plan(sql_or_spec, catalog):
    """Build a physical plan from SQL text or an analysed QuerySpec."""
    if isinstance(sql_or_spec, str):
        parsed = parse_query(sql_or_spec)
        spec = analyze(parsed, catalog, sql=sql_or_spec)
    else:
        spec = sql_or_spec

    order, base_cards, cumulative = order_tables(spec, catalog)

    entries = []
    placed = []
    for position, alias in enumerate(order):
        table = catalog.table(spec.tables[alias])
        local_filter = spec.filter_for(alias)
        selectivity, rows = filtered_cardinality(spec, catalog, alias)
        projection = spec.projections.get(alias, [])
        entry = TableAccess(
            alias=alias,
            table_name=table.name,
            local_filter=local_filter,
            projection=projection,
            estimated_selectivity=selectivity,
            estimated_rows=rows,
            estimated_output_rows=cumulative[position],
            table_rows=max(1, table.row_count),
            record_bytes=table.record_bytes,
            projection_bytes=table.schema.projection_bytes(projection),
            field_count=table.schema.field_count,
            projection_field_count=len(projection),
        )
        if position == 0:
            path, index_column = _choose_access_path(
                table, local_filter, alias)
            entry.access_path = path
            entry.index_column = index_column
        else:
            edges = [edge for edge in spec.join_edges
                     if edge.touches(alias)
                     and edge.other(alias)[0] in placed]
            if not edges:
                entry.join_algorithm = JoinAlgorithm.BNLJ
            else:
                entry.join_edges = edges
                index_column = _indexed_join_column(table, edges, alias)
                if index_column is not None:
                    entry.join_algorithm = JoinAlgorithm.BNLJI
                    entry.index_column = index_column
                    entry.access_path = (
                        AccessPath.PK_RANGE
                        if index_column == table.schema.primary_key
                        else AccessPath.SECONDARY_LOOKUP)
                else:
                    entry.join_algorithm = JoinAlgorithm.BNLJ
                    # A local equality filter on an indexed column still
                    # narrows the scan used to build the join side.
                    path, filter_index = _choose_access_path(
                        table, local_filter, alias)
                    entry.access_path = path
                    if filter_index is not None:
                        entry.index_column = filter_index
        entries.append(entry)
        placed.append(alias)

    return QueryPlan(
        spec=spec,
        entries=entries,
        residual=spec.residual,
        group_by=spec.group_by,
        select_items=spec.select_items,
        limit=spec.limit,
    )


def _indexed_join_column(table, edges, alias):
    """A join column of ``alias`` backed by the PK or a secondary index."""
    for edge in edges:
        column = edge.column_of(alias)
        if column == table.schema.primary_key:
            return column
    for edge in edges:
        column = edge.column_of(alias)
        if column in table.indexes:
            return column
    return None


def estimate_join_output(spec, catalog, prefix_rows, entry):
    """Cardinality after joining the prefix with one more entry."""
    rows = prefix_rows * entry.estimated_rows
    for edge in entry.join_edges:
        rows *= join_selectivity(spec, catalog, edge)
    return max(1, int(round(rows)))


__all__ = ["build_plan", "estimate_join_output"]
