"""Physical plans: left-deep join pipelines.

A :class:`QueryPlan` is an ordered list of :class:`TableAccess` entries.
Entry 0 is the driving table; each later entry joins the running
intermediate result with one more table using the chosen join algorithm
and access path.  This left-deep list is precisely the structure the
hybridNDP splitter cuts: split point Hk keeps entries ``0..k`` (and their
joins) on the device, the rest on the host (paper §3.3/Fig 6).
"""

import enum
from dataclasses import dataclass, field

from repro.errors import PlanError


class AccessPath(enum.Enum):
    """How a table's rows are obtained."""

    FULL_SCAN = "full_scan"               # primary LSM scan
    PK_RANGE = "pk_range"                 # primary index range
    SECONDARY_LOOKUP = "secondary_lookup"  # secondary index + PK fetch


class JoinAlgorithm(enum.Enum):
    """Join operators available on host and device (paper §2.1)."""

    NLJ = "nlj"        # nested loop
    BNLJ = "bnlj"      # block nested loop (hash build in the buffer)
    BNLJI = "bnlji"    # block nested loop using an index on the inner
    GHJ = "ghj"        # grace hash join


@dataclass
class TableAccess:
    """One pipeline stage: access a table and join it with the prefix."""

    alias: str
    table_name: str
    access_path: AccessPath = AccessPath.FULL_SCAN
    index_column: str = None              # for SECONDARY_LOOKUP / BNLJI
    local_filter: object = None           # Expr over this table only
    projection: list = field(default_factory=list)
    join_edges: list = field(default_factory=list)   # edges to the prefix
    join_algorithm: JoinAlgorithm = None  # None for the driving table
    # Optimizer estimates (fed to the cost model):
    estimated_selectivity: float = 1.0
    estimated_rows: int = 0               # rows after the local filter
    estimated_output_rows: int = 0        # rows after joining with prefix
    # Table metadata snapshot:
    table_rows: int = 0
    record_bytes: int = 0
    projection_bytes: int = 0
    field_count: int = 0
    projection_field_count: int = 0

    @property
    def is_driving(self):
        """Whether this is the pipeline's first (driving) table."""
        return self.join_algorithm is None

    @property
    def uses_secondary_index(self):
        """Whether this stage reads through a secondary index."""
        return (self.access_path is AccessPath.SECONDARY_LOOKUP
                or (self.join_algorithm is JoinAlgorithm.BNLJI
                    and self.index_column is not None))

    def describe(self):
        """One-line, EXPLAIN-style description."""
        parts = [f"{self.alias}({self.table_name})",
                 self.access_path.value]
        if self.index_column:
            parts.append(f"idx:{self.index_column}")
        if self.join_algorithm:
            parts.append(self.join_algorithm.value)
        parts.append(f"~{self.estimated_rows} rows")
        return " ".join(parts)


@dataclass
class QueryPlan:
    """A complete left-deep physical plan."""

    spec: object                          # the QuerySpec
    entries: list                         # ordered TableAccess list
    residual: object = None               # cross-table predicate
    group_by: list = field(default_factory=list)
    select_items: list = field(default_factory=list)
    limit: int = None

    def __post_init__(self):
        if not self.entries:
            raise PlanError("a plan needs at least one table")
        if self.entries[0].join_algorithm is not None:
            raise PlanError("the driving table cannot have a join algorithm")
        for entry in self.entries[1:]:
            if entry.join_algorithm is None:
                raise PlanError(
                    f"non-driving entry {entry.alias} needs a join algorithm")

    @property
    def table_count(self):
        """Number of tables in the pipeline."""
        return len(self.entries)

    @property
    def join_count(self):
        """Number of join operators."""
        return len(self.entries) - 1

    @property
    def aliases(self):
        """Aliases in pipeline order."""
        return [entry.alias for entry in self.entries]

    def entry(self, alias):
        """Look up the entry for one alias."""
        for entry in self.entries:
            if entry.alias == alias:
                return entry
        raise PlanError(f"alias {alias!r} not in plan")

    def prefix(self, k):
        """Entries 0..k (inclusive) — the NDP side of split point Hk."""
        if not 0 <= k < len(self.entries):
            raise PlanError(f"split index {k} out of range")
        return self.entries[:k + 1]

    def suffix(self, k):
        """Entries after split point Hk — the host side."""
        return self.entries[k + 1:]

    def secondary_index_stages(self):
        """Entries that read through a secondary index."""
        return [entry for entry in self.entries if entry.uses_secondary_index]

    def describe(self):
        """Multi-line EXPLAIN-style description."""
        lines = [f"plan over {self.table_count} table(s):"]
        for i, entry in enumerate(self.entries):
            prefix = "  -> " if i else "  driving "
            lines.append(prefix + entry.describe())
        if self.residual is not None:
            lines.append(f"  residual: {self.residual}")
        if self.group_by:
            cols = ", ".join(str(c) for c in self.group_by)
            lines.append(f"  group by: {cols}")
        return "\n".join(lines)
