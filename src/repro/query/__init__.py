"""MySQL-style query stack for the JOB subset.

SQL text -> tokens -> expression AST -> :class:`QuerySpec` (logical) ->
left-deep :class:`QueryPlan` (physical) via greedy join ordering with
index-sample statistics, mirroring the MyRocks optimizer behaviour the
paper builds on.
"""

from repro.query.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.query.parser import parse_query
from repro.query.render import render_expr, render_query
from repro.query.logical import JoinEdge, QuerySpec, analyze
from repro.query.physical import AccessPath, JoinAlgorithm, QueryPlan, TableAccess
from repro.query.optimizer import build_plan

__all__ = [
    "And",
    "Between",
    "ColumnRef",
    "Comparison",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "Not",
    "Or",
    "parse_query",
    "render_expr",
    "render_query",
    "QuerySpec",
    "JoinEdge",
    "analyze",
    "AccessPath",
    "JoinAlgorithm",
    "QueryPlan",
    "TableAccess",
    "build_plan",
]
