"""SQL parser for the JOB subset.

Supported grammar (case-insensitive keywords):

    SELECT item [, item]*           item := agg(expr) [AS name] | col | *
    FROM table [AS] alias [, ...]
    [WHERE or_expr]
    [GROUP BY col [, col]*]
    [LIMIT n]

with predicates =, !=, <>, <, <=, >, >=, [NOT] LIKE, [NOT] IN (...),
BETWEEN ... AND ..., IS [NOT] NULL, combined via AND/OR/NOT and
parentheses — exactly what the Join-Order Benchmark needs.
"""

import re
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.query.ast import (Between, ColumnRef, Comparison, InList,
                             IsNull, Like, Literal, Not, Or, make_and)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "like", "in", "between",
    "is", "null", "as", "group", "by", "limit", "min", "max", "count",
    "sum", "avg",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),;*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    position: int


def tokenize(sql):
    """Tokenize SQL text; raises :class:`ParseError` on junk."""
    tokens = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(f"unexpected character {sql[position]!r}",
                             position)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        kind = match.lastgroup
        if kind == "ident" and text.lower() in _KEYWORDS and "." not in text:
            kind = "keyword"
            text = text.lower()
        tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


@dataclass
class SelectItem:
    """One entry of the SELECT list."""

    expr: object                  # ColumnRef or "*"
    aggregate: str = None         # 'min' | 'max' | 'count' | 'sum' | 'avg'
    alias: str = None

    @property
    def output_name(self):
        """Column name of this item in the result."""
        if self.alias:
            return self.alias
        if self.aggregate:
            inner = "*" if self.expr == "*" else str(self.expr)
            return f"{self.aggregate}({inner})"
        return str(self.expr)


@dataclass
class ParsedQuery:
    """Raw parse result, before logical analysis."""

    select_items: list
    tables: list                  # [(table_name, alias)]
    where: object = None          # Expr or None
    group_by: list = field(default_factory=list)
    limit: int = None


class _Parser:
    def __init__(self, sql):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind, text=None):
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {token.text!r}", token.position)
        return self._advance()

    def _accept(self, kind, text=None):
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse(self):
        self._expect("keyword", "select")
        items = self._select_list()
        self._expect("keyword", "from")
        tables = self._table_list()
        where = None
        if self._accept("keyword", "where"):
            where = self._or_expr()
        group_by = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._column_ref())
            while self._accept("punct", ","):
                group_by.append(self._column_ref())
        limit = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            if "." in token.text:
                raise ParseError(
                    f"LIMIT must be an integer, found {token.text!r}",
                    token.position)
            limit = int(token.text)
            if limit < 0:
                raise ParseError(
                    f"LIMIT must be non-negative, found {token.text!r}",
                    token.position)
        self._accept("punct", ";")
        self._expect("eof")
        return ParsedQuery(items, tables, where, group_by, limit)

    def _select_list(self):
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        token = self._peek()
        if token.kind == "keyword" and token.text in (
                "min", "max", "count", "sum", "avg"):
            aggregate = self._advance().text
            self._expect("punct", "(")
            if self._accept("punct", "*"):
                expr = "*"
            else:
                expr = self._column_ref()
            self._expect("punct", ")")
            alias = None
            if self._accept("keyword", "as"):
                alias = self._expect("ident").text
            return SelectItem(expr, aggregate=aggregate, alias=alias)
        if self._accept("punct", "*"):
            return SelectItem("*")
        expr = self._column_ref()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        return SelectItem(expr, alias=alias)

    def _table_list(self):
        tables = [self._table_item()]
        while self._accept("punct", ","):
            tables.append(self._table_item())
        return tables

    def _table_item(self):
        name = self._expect("ident").text
        if "." in name:
            raise ParseError(f"qualified table name {name!r} not supported")
        alias = name
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._peek().kind == "ident" and "." not in self._peek().text:
            alias = self._advance().text
        return name, alias

    def _or_expr(self):
        items = [self._and_expr()]
        while self._accept("keyword", "or"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return Or(tuple(items))

    def _and_expr(self):
        items = [self._not_expr()]
        while self._accept("keyword", "and"):
            items.append(self._not_expr())
        return make_and(items)

    def _not_expr(self):
        if self._accept("keyword", "not"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self):
        if self._accept("punct", "("):
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        operand = self._operand()
        token = self._peek()
        negated = False
        if token.kind == "keyword" and token.text == "not":
            self._advance()
            negated = True
            token = self._peek()
        if token.kind == "keyword" and token.text == "like":
            self._advance()
            pattern = self._string_value()
            return Like(operand, pattern, negated=negated)
        if token.kind == "keyword" and token.text == "in":
            self._advance()
            self._expect("punct", "(")
            values = [self._literal_value()]
            while self._accept("punct", ","):
                values.append(self._literal_value())
            self._expect("punct", ")")
            return InList(operand, tuple(values), negated=negated)
        if token.kind == "keyword" and token.text == "between":
            if negated:
                self._advance()
                low = self._operand()
                self._expect("keyword", "and")
                high = self._operand()
                return Not(Between(operand, low, high))
            self._advance()
            low = self._operand()
            self._expect("keyword", "and")
            high = self._operand()
            return Between(operand, low, high)
        if negated:
            raise ParseError("NOT must precede LIKE/IN/BETWEEN here",
                             token.position)
        if token.kind == "keyword" and token.text == "is":
            self._advance()
            is_negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNull(operand, negated=is_negated)
        op_token = self._expect("op")
        right = self._operand()
        return Comparison(op_token.text, operand, right)

    def _operand(self):
        token = self._peek()
        if token.kind == "ident":
            return self._column_ref()
        if token.kind in ("number", "string"):
            return Literal(self._literal_value())
        raise ParseError(f"expected operand, found {token.text!r}",
                         token.position)

    def _column_ref(self):
        token = self._expect("ident")
        if "." in token.text:
            alias, column = token.text.split(".", 1)
            return ColumnRef(alias, column)
        return ColumnRef("", token.text)

    def _literal_value(self):
        token = self._advance()
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            return self._unquote(token.text)
        raise ParseError(f"expected literal, found {token.text!r}",
                         token.position)

    def _string_value(self):
        token = self._expect("string")
        return self._unquote(token.text)

    @staticmethod
    def _unquote(text):
        """Decode a quoted string literal body in one left-to-right pass.

        ``''`` and ``\\'`` decode to a quote and ``\\\\`` to one
        backslash — sequentially, so escapes never overlap (the old
        chained ``str.replace`` mangled a quote preceded by an escaped
        backslash).
        """
        body = text[1:-1]
        out = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "'" and i + 1 < len(body) and body[i + 1] == "'":
                out.append("'")
                i += 2
            elif ch == "\\" and i + 1 < len(body):
                out.append(body[i + 1])
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)


def parse_query(sql):
    """Parse SQL text into a :class:`ParsedQuery`."""
    return _Parser(sql).parse()
