"""Deterministic fault injection and the graceful-degradation policy.

A :class:`FaultPlan` composes the fault models that the COSMOS+
substitution makes meaningful — transient NDP command failures, flash
read errors recovered by ECC retries, PCIe lane down-shifts, device DRAM
pressure, and device-core unavailability windows — plus the
:class:`RetryPolicy` the executor degrades under.  Plans are pure data;
all randomness comes from ``random.Random(seed)`` drawn in simulation
order, never from the wall clock, so a seeded chaos run reproduces the
same fault sequence byte-for-byte.

A plan is activated per execution as a :class:`FaultInjector`: the
injector owns the run's RNG and fault counts, and the executor / flash
model consult it at well-defined points (command submission, flash read
pricing, transfer pricing, buffer admission, device-core dispatch).
Like tracing, fault injection is zero-cost when off — the default
collaborator is the singleton :data:`NULL_INJECTOR` whose ``enabled``
flag lets hot paths skip the fault checks entirely, and a disabled plan
produces byte-identical reports and traces to a run with no plan at all.

See ``docs/robustness.md`` for the model catalogue, the retry/backoff
and admission-control semantics, and the chaos-scenario harness built on
top (:mod:`repro.bench.chaos`).
"""

import random
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (AdmissionTimeoutError, ReproError,
                          TransientDeviceError)

#: Trace track carrying fault/degradation instants (see observability doc).
FAULTS_TRACK = "faults"


def _check_probability(name, value):
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"{name} must be a probability in [0, 1], "
                         f"got {value}")


@dataclass(frozen=True)
class FaultWindow:
    """A half-open interval ``[start, end)`` of simulated seconds."""

    start: float
    end: float

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise ReproError(
                f"fault window [{self.start}, {self.end}) is not a "
                f"non-negative, ordered interval")

    def contains(self, now):
        """Whether ``now`` falls inside the window."""
        return self.start <= now < self.end


def _sorted_windows(windows):
    return sorted(windows, key=lambda window: (window.start, window.end))


@dataclass(frozen=True)
class CommandFaultModel:
    """Transient NDP command-submission failures.

    The first ``fail_first`` submissions of a run fail deterministically
    (the repeatable "exhaust the retries" scenario); after those, each
    submission fails independently with ``probability``.
    """

    probability: float = 0.0
    fail_first: int = 0

    def __post_init__(self):
        _check_probability("command fault probability", self.probability)
        if self.fail_first < 0:
            raise ReproError("fail_first must be non-negative")

    @property
    def active(self):
        """Whether this model can inject anything."""
        return self.probability > 0.0 or self.fail_first > 0


@dataclass(frozen=True)
class FlashFaultModel:
    """Flash read errors recovered by ECC retries (latency only).

    Each read page independently needs an ECC retry with
    ``probability``; every retried page adds ``ecc_retry_latency`` of
    re-sense/decode time to the read.  Data is always recovered — the
    model degrades timing, never correctness.
    """

    probability: float = 0.0
    ecc_retry_latency: float = 150e-6

    def __post_init__(self):
        _check_probability("flash fault probability", self.probability)
        if self.ecc_retry_latency < 0:
            raise ReproError("ECC retry latency must be non-negative")

    @property
    def active(self):
        """Whether this model can inject anything."""
        return self.probability > 0.0 and self.ecc_retry_latency > 0.0


@dataclass(frozen=True)
class LinkFaultModel:
    """PCIe link degradation: lane down-shift over windows.

    Inside each window the link is retrained at reduced width, so every
    transfer priced there takes ``slowdown`` times longer.
    """

    windows: tuple = ()
    slowdown: float = 1.0

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ReproError("link slowdown must be >= 1.0")

    @property
    def active(self):
        """Whether this model can inject anything."""
        return bool(self.windows) and self.slowdown > 1.0


@dataclass(frozen=True)
class DramFaultModel:
    """Device DRAM pressure: the buffer budget shrinks inside windows.

    Admission control waits (bounded by the retry policy's
    ``admission_timeout``) for a pressure window to pass instead of
    instantly raising :class:`~repro.errors.DeviceOverloadError`.
    """

    windows: tuple = ()
    shrink_bytes: int = 0

    def __post_init__(self):
        if self.shrink_bytes < 0:
            raise ReproError("DRAM shrink must be non-negative")

    @property
    def active(self):
        """Whether this model can inject anything."""
        return bool(self.windows) and self.shrink_bytes > 0


@dataclass(frozen=True)
class CoreFaultModel:
    """Device-core unavailability windows (firmware busy, relay storms).

    While a window is open the NDP core cannot start new work; the lost
    time surfaces as extra ``device_stall`` time in the simulation.
    """

    windows: tuple = ()

    @property
    def active(self):
        """Whether this model can inject anything."""
        return bool(self.windows)


@dataclass(frozen=True)
class SlowDeviceModel:
    """A straggler device: persistent compute-throughput degradation.

    Distinct from hard failure (:class:`CommandFaultModel` storms) and
    from core brownouts (:class:`CoreFaultModel`, which *block* the core):
    inside each window the NDP core still makes progress, just
    ``slowdown`` times slower — the classic sick-but-alive storage node
    that stalls a scatter-gather indefinitely unless the cluster
    speculates (docs/robustness.md, "Stragglers, speculation, and
    deadlines").
    """

    windows: tuple = ()
    slowdown: float = 1.0

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ReproError("device slowdown must be >= 1.0")

    @property
    def active(self):
        """Whether this model can inject anything."""
        return bool(self.windows) and self.slowdown > 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor degrades under transient faults.

    ``max_retries`` bounds re-submissions after the first attempt;
    attempt ``n`` (0-based) backs off ``backoff_base * backoff_factor**n``
    simulated seconds before retrying.  ``admission_timeout`` bounds how
    long admission control may wait for device buffers.
    ``wasted_time_budget`` caps the *total* simulated seconds one query
    may burn on abandoned device attempts across any number of cluster
    re-executions — once exceeded, the partition short-circuits to the
    host fallback instead of trying another survivor (``None`` =
    unbounded, the pre-budget behaviour).
    """

    max_retries: int = 3
    backoff_base: float = 5e-4
    backoff_factor: float = 2.0
    admission_timeout: float = 0.05
    wasted_time_budget: float = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ReproError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ReproError("backoff must be non-negative and "
                             "non-decreasing")
        if self.admission_timeout < 0:
            raise ReproError("admission timeout must be non-negative")
        if (self.wasted_time_budget is not None
                and self.wasted_time_budget < 0):
            raise ReproError("wasted-time budget must be non-negative")

    def backoff(self, attempt):
        """Backoff before re-submitting after failed attempt ``attempt``."""
        return self.backoff_base * self.backoff_factor ** attempt


@dataclass(frozen=True)
class FaultPlan:
    """A seeded composition of fault models plus the retry policy.

    The default plan injects nothing (``enabled`` is False) and costs
    nothing — executions given a disabled plan are byte-identical to
    executions given no plan at all.
    """

    seed: int = 0
    commands: CommandFaultModel = field(default_factory=CommandFaultModel)
    flash: FlashFaultModel = field(default_factory=FlashFaultModel)
    link: LinkFaultModel = field(default_factory=LinkFaultModel)
    dram: DramFaultModel = field(default_factory=DramFaultModel)
    core: CoreFaultModel = field(default_factory=CoreFaultModel)
    slow: SlowDeviceModel = field(default_factory=SlowDeviceModel)
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def enabled(self):
        """Whether any fault model can inject anything."""
        return (self.commands.active or self.flash.active
                or self.link.active or self.dram.active or self.core.active
                or self.slow.active)

    def injector(self):
        """A fresh per-run injector (its own RNG seeded from the plan)."""
        if not self.enabled:
            return NULL_INJECTOR
        return FaultInjector(self)


#: The inject-nothing plan, for explicitness at call sites.
NULL_PLAN = FaultPlan()


class NullFaultInjector:
    """The inject-nothing injector: the default wherever faults are optional.

    ``enabled`` is False so instrumented hot paths skip fault checks
    entirely; the identity-returning methods keep the rare unguarded call
    site exact (no ``+ 0.0`` drift anywhere that matters).
    """

    __slots__ = ()
    enabled = False
    retry = RetryPolicy()

    def check_submission(self, attempt):
        """Never fails a submission."""

    def flash_read_penalty(self, pages):
        """No ECC retries."""
        return 0.0

    def scale_transfer(self, now, seconds):
        """No link degradation."""
        return seconds

    def scale_compute(self, now, seconds):
        """No device slowdown."""
        return seconds

    def core_offline_until(self, now):
        """The core is always available."""
        return now

    def admission_delay(self, needed_bytes, available_bytes, query=None,
                        device=None):
        """No DRAM pressure."""
        return 0.0

    def faults_injected(self):
        """No faults, no counts."""
        return {}

    @contextmanager
    def attached(self, device):
        """Nothing to attach."""
        yield self


#: Shared no-op injector; ``as_injector(None)`` returns it.
NULL_INJECTOR = NullFaultInjector()


def as_injector(faults):
    """Normalise an optional faults argument to a usable injector.

    Accepts ``None``, a :class:`FaultPlan` (a fresh injector is created)
    or an already-active injector (passed through, so one injector's
    counts can span retry + fallback).
    """
    if faults is None:
        return NULL_INJECTOR
    if isinstance(faults, FaultPlan):
        return faults.injector()
    return faults


class FaultInjector:
    """Active state of one :class:`FaultPlan` during one execution.

    Owns the run's ``random.Random(plan.seed)`` — draws happen in
    simulation order, which is deterministic, so the injected fault
    sequence is a pure function of (plan, execution).  Counts every
    injected fault per model for ``ExecutionReport.faults_injected``.
    """

    enabled = True

    def __init__(self, plan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._counts = {}

    @property
    def retry(self):
        """The plan's retry/backoff/admission policy."""
        return self.plan.retry

    def _count(self, kind, n=1):
        self._counts[kind] = self._counts.get(kind, 0) + n

    def faults_injected(self):
        """``{fault_kind: count}`` injected so far, sorted by kind."""
        return {kind: self._counts[kind] for kind in sorted(self._counts)}

    # -- transient NDP command failures --------------------------------
    def check_submission(self, attempt):
        """Raise :class:`TransientDeviceError` if this submission fails.

        ``attempt`` is 0-based; the first ``fail_first`` attempts fail
        deterministically, later ones with the model's probability.
        """
        model = self.plan.commands
        fails = attempt < model.fail_first
        if not fails and model.probability > 0.0:
            fails = self._rng.random() < model.probability
        if fails:
            self._count("transient_command")
            raise TransientDeviceError(
                f"device NACKed NDP command submission "
                f"(attempt {attempt + 1})")

    # -- flash read errors (ECC retry latency) -------------------------
    def flash_read_penalty(self, pages):
        """Extra seconds of ECC retries for a ``pages``-page flash read.

        The expected retried-page count is taken deterministically; only
        the fractional remainder is resolved with one RNG draw, keeping
        draw counts independent of read sizes.
        """
        model = self.plan.flash
        if not model.active:
            return 0.0
        expected = pages * model.probability
        retried = int(expected)
        if self._rng.random() < expected - retried:
            retried += 1
        if retried == 0:
            return 0.0
        self._count("flash_ecc_retry", retried)
        return retried * model.ecc_retry_latency

    # -- PCIe link degradation -----------------------------------------
    def scale_transfer(self, now, seconds):
        """Transfer duration for a transfer starting at ``now``."""
        model = self.plan.link
        if model.active and any(window.contains(now)
                                for window in model.windows):
            self._count("link_degraded")
            return seconds * model.slowdown
        return seconds

    # -- straggler device (compute slowdown) ---------------------------
    def scale_compute(self, now, seconds):
        """Device-compute duration for work starting at ``now``.

        Inside a :class:`SlowDeviceModel` window the NDP core runs
        ``slowdown`` times slower; the work still completes (unlike a
        :class:`CoreFaultModel` outage, which blocks it entirely).
        """
        model = self.plan.slow
        if model.active and any(window.contains(now)
                                for window in model.windows):
            self._count("slow_device")
            return seconds * model.slowdown
        return seconds

    # -- device DRAM pressure (admission control) ----------------------
    def admission_delay(self, needed_bytes, available_bytes, query=None,
                        device=None):
        """Seconds admission control must wait before reserving buffers.

        Walks the pressure windows from time zero: while the shrunk
        budget cannot host the pipeline, admission moves to the window's
        end.  Raises :class:`AdmissionTimeoutError` (a
        :class:`DeviceOverloadError`) naming the query and device when
        the wait would exceed the retry policy's ``admission_timeout``.
        """
        model = self.plan.dram
        if not model.active:
            return 0.0
        now = 0.0
        for window in _sorted_windows(model.windows):
            if not window.contains(now):
                continue
            if needed_bytes <= available_bytes - model.shrink_bytes:
                break
            now = window.end
        if now > self.retry.admission_timeout:
            who = f"{query}: " if query else ""
            where = f" on {device}" if device else ""
            raise AdmissionTimeoutError(
                f"{who}device DRAM pressure{where} holds "
                f"{model.shrink_bytes} bytes until t={now:.6f}s, past the "
                f"{self.retry.admission_timeout}s admission timeout",
                query=query, device=device, waited=now)
        if now > 0.0:
            self._count("dram_admission_wait")
        return now

    # -- device-core unavailability ------------------------------------
    def core_offline_until(self, now):
        """Earliest time >= ``now`` the NDP core can start new work."""
        model = self.plan.core
        until = now
        for window in _sorted_windows(model.windows):
            if window.contains(until):
                until = window.end
        if until > now:
            self._count("core_offline")
        return until

    # -- attachment ----------------------------------------------------
    @contextmanager
    def attached(self, device):
        """Attach to ``device``'s flash for one run, restoring on exit.

        Flash read pricing flows through
        :meth:`~repro.storage.flash.FlashDevice.internal_read_time` /
        ``external_read_time``; attaching the injector there makes ECC
        retry latency show up in both device- and host-side charges.
        """
        flash = device.flash
        previous = flash.fault_injector
        flash.fault_injector = self
        try:
            yield self
        finally:
            flash.fault_injector = previous

    def __repr__(self):
        return (f"FaultInjector(seed={self.plan.seed}, "
                f"injected={self.faults_injected()})")
