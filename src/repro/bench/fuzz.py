"""Differential fuzzing harness over generated SQL workloads.

Every query from :class:`~repro.workloads.sqlgen.RandomSqlGenerator` is
executed under each configured mode and its rows diffed against the
host-BLK baseline:

``host``
    Host NVMe execution (``Stack.NATIVE``) — same engine family,
    different IO path.
``split``
    Cooperative execution (``Stack.HYBRID``) at the default split point
    (deepest offloadable Hk at or below the pipeline middle, the same
    split the chaos harness degrades).
``scheduler``
    All corpus queries submitted as one closed-loop workload on a shared
    :class:`~repro.sched.WorkloadScheduler` kernel — queries contend for
    the link, NDP core, host CPU, and device DRAM; every job's report
    rows must still match its serial baseline.
``cluster2`` / ``cluster4``
    2- and 4-device :class:`~repro.cluster.ScatterGatherExecutor`
    scatter-gather; the merged report's rows must match, and every
    resource's utilization must stay ``<= 1``.

Failures shrink automatically (:func:`shrink_sql`: drop tables while the
join graph stays connected, drop non-join conjuncts, shrink OR groups
and IN lists, drop GROUP BY — greedily, while the failure reproduces)
and land in ``failures.jsonl`` next to the full ``corpus.jsonl`` for
replay (``repro fuzz --replay``).  Outcomes are plain dicts with stable
ordering, so two runs of the same seed serialize byte-for-byte equal —
the determinism contract ``scripts/fuzz_job_matrix.py`` self-checks.
"""

import json
import os
from dataclasses import dataclass, field, replace

from repro.bench.chaos import default_split
from repro.cluster import DeviceCluster
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import DeviceOverloadError, OffloadError, ReproError
from repro.query.ast import ColumnRef, Comparison, InList, Or, conjuncts, \
    make_and
from repro.query.parser import SelectItem, parse_query
from repro.query.render import render_query
from repro.sched import WorkloadScheduler
from repro.sched.arrivals import ClosedLoopArrivals
from repro.storage.topology import PartitionSpec
from repro.workloads.sqlgen import RandomSqlGenerator, SqlGenConfig

#: The documented infeasibility exceptions: a fragment that exceeds the
#: device join cap or an operator the NDP engine cannot run.  Anything
#: else raised during a mode is a failure.
INFEASIBLE = (DeviceOverloadError, OffloadError)

#: All differential modes, in execution order.
MODES = ("host", "split", "scheduler", "cluster2", "cluster4")

#: Utilization tolerance (mirrors the cluster test suite).
_UTIL_EPS = 1e-9


@dataclass(frozen=True)
class FuzzFailure:
    """One (query, mode) divergence, with its shrunk reproduction."""

    name: str
    seed: int
    index: int
    mode: str
    kind: str          # "mismatch" | "error" | "utilization"
    detail: str
    sql: str
    shrunk_sql: str = None

    def to_dict(self):
        return {"name": self.name, "seed": self.seed, "index": self.index,
                "mode": self.mode, "kind": self.kind, "detail": self.detail,
                "sql": self.sql, "shrunk_sql": self.shrunk_sql}


@dataclass
class FuzzReport:
    """The outcome of one differential fuzz sweep."""

    seed: int
    queries: int
    modes: tuple
    checks: int = 0            # (query, mode) comparisons that ran
    infeasible: int = 0        # split attempts the device cannot run
    failures: list = field(default_factory=list)
    corpus: list = field(default_factory=list)   # GeneratedQuery list

    @property
    def ok(self):
        return not self.failures

    def to_dict(self):
        """JSON-ready, stable ordering — the determinism artifact."""
        return {
            "schema_version": 1,
            "seed": self.seed,
            "queries": self.queries,
            "modes": list(self.modes),
            "checks": self.checks,
            "infeasible": self.infeasible,
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }


class FuzzHarness:
    """Runs a generated corpus differentially across execution modes."""

    def __init__(self, env, seed=0, config=None, modes=MODES, ctx=None,
                 scheduler_batch=25):
        unknown = set(modes) - set(MODES)
        if unknown:
            raise ReproError(
                f"unknown fuzz modes {sorted(unknown)}; known: {MODES}")
        self.env = env
        self.seed = seed
        self.modes = tuple(mode for mode in MODES if mode in modes)
        self.ctx = ExecutionContext.coerce(ctx)
        self.generator = RandomSqlGenerator(seed=seed, config=config)
        self.scheduler_batch = scheduler_batch
        self._clusters = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, count):
        """Fuzz the first ``count`` queries of the seed."""
        corpus = self.generator.generate(count)
        return self.run_corpus(corpus)

    def run_corpus(self, corpus):
        """Differentially execute an explicit corpus."""
        report = FuzzReport(seed=self.seed, queries=len(corpus),
                            modes=self.modes, corpus=list(corpus))
        baselines = {}
        for query in corpus:
            plan = self.env.runner.plan(query.sql)
            baselines[query.name] = (
                plan, self.env.run(plan, Stack.BLK).result.sorted_rows())
        for query in corpus:
            plan, baseline = baselines[query.name]
            for mode in self.modes:
                if mode == "scheduler":
                    continue       # batched below
                self._check_mode(report, query, plan, baseline, mode)
        if "scheduler" in self.modes:
            self._check_scheduler(report, corpus, baselines)
        return report

    # ------------------------------------------------------------------
    # Per-mode execution
    # ------------------------------------------------------------------
    def _check_mode(self, report, query, plan, baseline, mode):
        try:
            if mode == "host":
                run = self.env.run(plan, Stack.NATIVE)
                rows = run.result.sorted_rows()
                stats = getattr(run, "resource_stats", None)
            elif mode == "split":
                split = default_split(self.env.runner, plan)
                run = self.env.run(plan, Stack.HYBRID, split_index=split)
                rows = run.result.sorted_rows()
                stats = getattr(run, "resource_stats", None)
            elif mode in ("cluster2", "cluster4"):
                run = self._cluster(mode).run(plan)
                rows = run.result.sorted_rows()
                stats = run.resource_stats
            else:                   # pragma: no cover - guarded in __init__
                raise ReproError(f"unhandled mode {mode!r}")
        except INFEASIBLE:
            report.infeasible += 1
            return
        except ReproError as exc:
            self._fail(report, query, mode, "error",
                       f"{type(exc).__name__}: {exc}")
            return
        report.checks += 1
        if rows != baseline:
            self._fail(report, query, mode, "mismatch",
                       self._diff_detail(baseline, rows))
            return
        self._check_utilization(report, query, mode, stats)

    def _check_scheduler(self, report, corpus, baselines):
        """Run the corpus as closed-loop workloads on shared kernels.

        Batches keep each simulated timeline (and its event heap) small;
        every batch gets a fresh scheduler, so one corpus's results are
        independent of any other fuzz sweep.
        """
        for start in range(0, len(corpus), self.scheduler_batch):
            batch = corpus[start:start + self.scheduler_batch]
            scheduler = WorkloadScheduler(
                self.env, ctx=self.ctx,
                queries={query.name: query.sql for query in batch})
            try:
                scheduler.submit_closed_loop(
                    [query.name for query in batch],
                    ClosedLoopArrivals(clients=4, seed=self.seed))
                result = scheduler.run()
            except ReproError as exc:
                for query in batch:
                    self._fail(report, query, "scheduler", "error",
                               f"{type(exc).__name__}: {exc}")
                continue
            by_name = {query.name: query for query in batch}
            for job in result.jobs:
                query = by_name[job.name]
                report.checks += 1
                if job.report is None or job.report.result is None:
                    self._fail(report, query, "scheduler", "error",
                               f"no result (error={job.error!r})")
                    continue
                rows = job.report.result.sorted_rows()
                baseline = baselines[job.name][1]
                if rows != baseline:
                    self._fail(report, query, "scheduler", "mismatch",
                               self._diff_detail(baseline, rows))
            for name, stats in result.resource_stats.items():
                if stats["utilization"] > 1.0 + _UTIL_EPS:
                    self._fail(
                        report, batch[0], "scheduler", "utilization",
                        f"{name} utilization {stats['utilization']:.6f} > 1"
                        f" (batch at query {batch[0].name})")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _cluster(self, mode):
        if mode not in self._clusters:
            n_devices = 2 if mode == "cluster2" else 4
            kind = "range" if mode == "cluster2" else "hash"
            self._clusters[mode] = DeviceCluster(
                self.env, n_devices=n_devices,
                partitioner=PartitionSpec(kind, seed=0))
        return self._clusters[mode]

    def _check_utilization(self, report, query, mode, stats):
        for name, entry in (stats or {}).items():
            utilization = entry.get("utilization")
            if utilization is not None and utilization > 1.0 + _UTIL_EPS:
                self._fail(report, query, mode, "utilization",
                           f"{name} utilization {utilization:.6f} > 1")

    def _fail(self, report, query, mode, kind, detail):
        shrunk = self._shrink_for(query, mode, kind)
        report.failures.append(FuzzFailure(
            name=query.name, seed=query.seed, index=query.index,
            mode=mode, kind=kind, detail=detail, sql=query.sql,
            shrunk_sql=shrunk))

    def _shrink_for(self, query, mode, kind):
        """Shrink a failing query while the same (mode, kind) fails."""
        if mode == "scheduler" or kind == "utilization":
            # Scheduler failures are workload-level (contention on the
            # shared kernel), not single-query-reducible.
            return None

        def still_fails(sql):
            try:
                plan = self.env.runner.plan(sql)
                baseline = self.env.run(plan, Stack.BLK).result.sorted_rows()
                if mode == "host":
                    rows = self.env.run(
                        plan, Stack.NATIVE).result.sorted_rows()
                elif mode == "split":
                    split = default_split(self.env.runner, plan)
                    rows = self.env.run(
                        plan, Stack.HYBRID,
                        split_index=split).result.sorted_rows()
                else:
                    rows = self._cluster(mode).run(plan).result.sorted_rows()
            except INFEASIBLE:
                return False
            except ReproError:
                return kind == "error"
            return kind == "mismatch" and rows != baseline

        try:
            return shrink_sql(query.sql, still_fails)
        except ReproError:     # never let shrinking mask the real failure
            return None

    @staticmethod
    def _diff_detail(baseline, rows):
        missing = [row for row in baseline if row not in rows]
        extra = [row for row in rows if row not in baseline]
        return (f"{len(baseline)} baseline vs {len(rows)} rows; "
                f"missing={missing[:3]!r} extra={extra[:3]!r}")


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _is_join_conjunct(expr):
    """``a.x = b.y`` between two different aliases."""
    return (isinstance(expr, Comparison) and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
            and expr.left.alias != expr.right.alias)


def _connected(aliases, where):
    """Do the join conjuncts connect all ``aliases``?"""
    if len(aliases) <= 1:
        return True
    adjacency = {alias: set() for alias in aliases}
    for conjunct in conjuncts(where):
        if _is_join_conjunct(conjunct):
            left = conjunct.left.alias
            right = conjunct.right.alias
            if left in adjacency and right in adjacency:
                adjacency[left].add(right)
                adjacency[right].add(left)
    seen = set()
    stack = [next(iter(sorted(aliases)))]
    while stack:
        alias = stack.pop()
        if alias in seen:
            continue
        seen.add(alias)
        stack.extend(adjacency[alias] - seen)
    return seen == set(aliases)


def _drop_table(parsed, victim_alias):
    """``parsed`` without table ``victim_alias``, or None if impossible."""
    tables = [(name, alias) for name, alias in parsed.tables
              if alias != victim_alias]
    if not tables:
        return None
    remaining = {alias for _name, alias in tables}
    kept = [conjunct for conjunct in conjuncts(parsed.where)
            if victim_alias not in conjunct.aliases()]
    where = make_and(kept)
    if not _connected(remaining, where):
        return None
    select_items = [item for item in parsed.select_items
                    if item.expr == "*"
                    or not (hasattr(item.expr, "aliases")
                            and victim_alias in item.expr.aliases())]
    if not select_items:
        select_items = [SelectItem("*", aggregate="count", alias="c0")]
    group_by = [column for column in parsed.group_by
                if victim_alias not in column.aliases()]
    return replace(parsed, select_items=select_items, tables=tables,
                   where=where, group_by=group_by)


def _candidates(parsed):
    """Strictly-smaller variants of ``parsed``, most aggressive first."""
    for _name, alias in parsed.tables:
        smaller = _drop_table(parsed, alias)
        if smaller is not None:
            yield smaller
    parts = conjuncts(parsed.where)
    for position, conjunct in enumerate(parts):
        if _is_join_conjunct(conjunct):
            continue
        kept = parts[:position] + parts[position + 1:]
        yield replace(parsed, where=make_and(kept))
    for position, conjunct in enumerate(parts):
        if isinstance(conjunct, Or):
            for item in conjunct.items:
                kept = list(parts)
                kept[position] = item
                yield replace(parsed, where=make_and(kept))
        elif isinstance(conjunct, InList) and len(conjunct.values) > 1:
            kept = list(parts)
            kept[position] = replace(
                conjunct, values=conjunct.values[:len(conjunct.values) // 2
                                                 or 1])
            yield replace(parsed, where=make_and(kept))
    if parsed.group_by:
        yield replace(parsed, group_by=[])


def shrink_sql(sql, still_fails, max_rounds=64):
    """Greedily shrink ``sql`` while ``still_fails(smaller_sql)``.

    Transforms, in order of aggressiveness: drop a table (only when the
    join graph stays connected, pruning its predicates/projections),
    drop a non-join conjunct, collapse an OR group to one branch, halve
    an IN list, drop GROUP BY.  The returned SQL is the smallest variant
    reached; it always still fails, and is ``sql`` itself when nothing
    smaller reproduces.
    """
    best = parse_query(sql)
    for _round in range(max_rounds):
        for candidate in _candidates(best):
            candidate_sql = render_query(candidate)
            if still_fails(candidate_sql):
                best = parse_query(candidate_sql)
                break
        else:
            break
    return render_query(best)


# ----------------------------------------------------------------------
# Corpus persistence + replay
# ----------------------------------------------------------------------

def write_corpus(report, directory):
    """Write ``corpus.jsonl`` (+ ``failures.jsonl`` if any) for replay."""
    os.makedirs(directory, exist_ok=True)
    corpus_path = os.path.join(directory, "corpus.jsonl")
    with open(corpus_path, "w") as handle:
        for query in report.corpus:
            handle.write(json.dumps(query.to_dict(), sort_keys=True) + "\n")
    paths = {"corpus": corpus_path}
    if report.failures:
        failures_path = os.path.join(directory, "failures.jsonl")
        with open(failures_path, "w") as handle:
            for failure in report.failures:
                handle.write(
                    json.dumps(failure.to_dict(), sort_keys=True) + "\n")
        paths["failures"] = failures_path
    return paths


def load_failures(path):
    """Parse a ``failures.jsonl`` (or ``corpus.jsonl``) back into dicts."""
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def replay_failures(env, path, modes=MODES, ctx=None):
    """Re-run every ``(seed, index)`` recorded in a jsonl file.

    Each entry is regenerated from its seed (verifying the generator
    still produces the recorded SQL) and fuzzed under ``modes``; returns
    one :class:`FuzzReport` per distinct seed.
    """
    entries = load_failures(path)
    by_seed = {}
    for entry in entries:
        by_seed.setdefault(entry["seed"], set()).add(entry["index"])
    reports = []
    for seed in sorted(by_seed):
        generator = RandomSqlGenerator(seed=seed)
        corpus = [generator.generate_one(index)
                  for index in sorted(by_seed[seed])]
        recorded = {entry["index"]: entry["sql"] for entry in entries
                    if entry["seed"] == seed}
        for query in corpus:
            if recorded.get(query.index) != query.sql:
                raise ReproError(
                    f"generator drift: seed {seed} index {query.index} "
                    f"no longer reproduces the recorded SQL")
        harness = FuzzHarness(env, seed=seed, modes=modes, ctx=ctx)
        reports.append(harness.run_corpus(corpus))
    return reports


__all__ = ["FuzzFailure", "FuzzHarness", "FuzzReport", "INFEASIBLE",
           "MODES", "load_failures", "replay_failures", "shrink_sql",
           "write_corpus", "SqlGenConfig"]
