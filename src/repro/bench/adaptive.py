"""Adaptive re-planning regret bench (docs/adaptivity.md).

Measures how fast the mid-query re-planning loop recovers from
*misestimated* statistics.  Each query's correction store is primed with
a wrong prior (``skew``× the true intermediate-result cardinality — the
stale-statistics regime after, say, a bulk delete the planner has not
re-sampled), then the same workload runs for ``rounds`` rounds under
three policies:

* **oracle** — the fastest measured strategy per query (host-native,
  every feasible Hk, full NDP), a constant lower bound;
* **static** — the planner's one-shot decision under the skewed
  estimate, re-executed unchanged every round (no feedback);
* **adaptive** — :class:`~repro.engine.adaptive.AdaptiveRunner` from
  the same skewed prior: pipeline-breaker feedback revises the plan
  mid-flight (the cancelled attempt's time is charged), and the EWMA
  correction washes the prior out across rounds.

Per-round *regret* is the summed time above oracle.  The bench asserts
the adaptive loop's two promises — total adaptive regret below static,
and last-round regret no worse than first-round (the loop must not
oscillate) — and the whole run is a deterministic pure simulation, so
two invocations produce byte-identical JSON.
"""

from repro.core import (CostCorrection, PlanningContext, ReplanPolicy)
from repro.engine import Stack
from repro.engine.adaptive import AdaptiveRunner
from repro.errors import ReproError
from repro.workloads.job_queries import query as job_query

#: Queries whose skewed-prior placement measurably diverges from the
#: oracle at the bench scale — the regime adaptivity exists for.
DEFAULT_QUERIES = ["1a", "2a", "11a", "21b"]
DEFAULT_SKEW = 50.0
DEFAULT_ROUNDS = 16
#: The dataset scale the default workload was calibrated at: placement
#: gaps are cardinality-driven, so which strategy wins shifts with scale.
DEFAULT_SCALE = 0.0004


def strategy_sweep(env, plan):
    """Measured ``{strategy: total_time}`` over every feasible strategy."""
    times = {"host-only": env.runner.run(plan, Stack.NATIVE).total_time}
    for k in range(plan.table_count):
        try:
            report = env.runner.run(plan, Stack.HYBRID, split_index=k)
        except ReproError:
            continue
        times[f"H{k}"] = report.total_time
    try:
        times["full-ndp"] = env.runner.run(plan, Stack.NDP).total_time
    except ReproError:
        pass
    return times


def adaptive_matrix(env, query_names=None, rounds=DEFAULT_ROUNDS,
                    skew=DEFAULT_SKEW, alpha=0.5, error_threshold=2.0,
                    min_batches=1, max_replans=1, on_round=None):
    """Run the regret experiment; returns a JSON-ready summary.

    ``on_round(round_index, row)`` — when given — is called after each
    round with the row that ends up in the summary's ``rounds`` list.
    """
    names = list(query_names or DEFAULT_QUERIES)
    if rounds < 2:
        raise ReproError("the regret trend needs at least 2 rounds")
    policy = ReplanPolicy(error_threshold=error_threshold,
                          min_batches=min_batches,
                          max_replans=max_replans)

    queries = {}
    for name in names:
        sql = job_query(name)
        plan = env.runner.plan(sql)
        times = strategy_sweep(env, plan)
        oracle_strategy = min(times, key=times.get)
        static = env.planner.decide(
            plan, context=PlanningContext(factor_override=skew))
        static_time = times.get(static.strategy_name)
        if static_time is None:
            # The skewed choice was not in the sweep (infeasible Hk);
            # measure it directly.
            static_time = env.runner.run(
                plan, Stack.HYBRID,
                split_index=static.split_index).total_time
        queries[name] = {
            "oracle_strategy": oracle_strategy,
            "oracle_time": times[oracle_strategy],
            "static_strategy": static.strategy_name,
            "static_time": static_time,
            "sweep": times,
        }

    correction = CostCorrection(alpha=alpha)
    for name in names:
        correction.prime(job_query(name), skew)
    runner = AdaptiveRunner(env, policy=policy, correction=correction)

    static_round_regret = sum(queries[name]["static_time"]
                              - queries[name]["oracle_time"]
                              for name in names)
    round_rows = []
    for round_index in range(rounds):
        per_query = {}
        adaptive_regret = 0.0
        for name in names:
            sql = job_query(name)
            report = runner.run(sql)
            adaptive_regret += (report.total_time
                                - queries[name]["oracle_time"])
            per_query[name] = {
                "strategy": report.strategy,
                "time": report.total_time,
                "replans": report.adaptivity["replans"],
                "wasted_time": report.adaptivity["wasted_time"],
                "correction_factor": correction.factor(sql),
            }
        row = {
            "round": round_index,
            "static_regret": static_round_regret,
            "adaptive_regret": adaptive_regret,
            "per_query": per_query,
        }
        round_rows.append(row)
        if on_round is not None:
            on_round(round_index, row)

    total_static = static_round_regret * rounds
    total_adaptive = sum(row["adaptive_regret"] for row in round_rows)
    first = round_rows[0]["adaptive_regret"]
    last = round_rows[-1]["adaptive_regret"]
    return {
        "schema_version": 1,
        "queries": queries,
        "config": {
            "rounds": rounds,
            "skew": skew,
            "alpha": alpha,
            "error_threshold": error_threshold,
            "min_batches": min_batches,
            "max_replans": max_replans,
        },
        "rounds": round_rows,
        "totals": {
            "static_regret": total_static,
            "adaptive_regret": total_adaptive,
            "first_round_regret": first,
            "last_round_regret": last,
            "adaptive_beats_static": total_adaptive < total_static,
            "regret_converged": last <= first,
        },
    }
