"""Benchmark harness: one experiment per paper figure/table.

Each ``exp*`` function reproduces a concrete artifact of the paper's
evaluation (§5) and returns plain data structures; ``reporting`` renders
them as the paper-style tables the benchmarks print.
"""

from repro.bench.adaptive import adaptive_matrix, strategy_sweep
from repro.bench.chaos import (SCENARIOS, chaos_matrix, run_chaos,
                               scenario_plan)
from repro.bench.cluster import cluster_matrix, run_cluster_benchmark
from repro.bench.concurrency import (concurrency_matrix, percentile,
                                     run_concurrency_benchmark)
from repro.bench.fuzz import (FuzzFailure, FuzzHarness, FuzzReport,
                              replay_failures, shrink_sql, write_corpus)
from repro.bench.experiments import (
    classify_matrix,
    exp_intro_fig2,
    exp1_stacks_fig11,
    exp1_table3,
    exp2_job_matrix_fig12,
    exp3_decisions_fig13,
    exp4_nonindexed_fig14,
    exp5_insitu_index_fig15,
    exp6_split_sweep_fig16,
    exp6_timeline_fig17,
    exp6_table4,
    profiler_compute_gap,
)
from repro.bench.parallel import (default_workers, strategy_times,
                                  sweep_job_matrix)
from repro.bench.reporting import format_table, render_matrix_summary

__all__ = [
    "adaptive_matrix",
    "strategy_sweep",
    "default_workers",
    "strategy_times",
    "sweep_job_matrix",
    "SCENARIOS",
    "scenario_plan",
    "run_chaos",
    "chaos_matrix",
    "run_concurrency_benchmark",
    "concurrency_matrix",
    "run_cluster_benchmark",
    "cluster_matrix",
    "FuzzFailure",
    "FuzzHarness",
    "FuzzReport",
    "replay_failures",
    "shrink_sql",
    "write_corpus",
    "percentile",
    "exp_intro_fig2",
    "exp1_stacks_fig11",
    "exp1_table3",
    "exp2_job_matrix_fig12",
    "exp3_decisions_fig13",
    "exp4_nonindexed_fig14",
    "exp5_insitu_index_fig15",
    "exp6_split_sweep_fig16",
    "exp6_timeline_fig17",
    "exp6_table4",
    "profiler_compute_gap",
    "classify_matrix",
    "format_table",
    "render_matrix_summary",
]
