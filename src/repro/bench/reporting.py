"""Plain-text rendering of experiment results."""

from repro.errors import ReproError


def format_table(headers, rows, title=None):
    """Render an aligned text table."""
    columns = [str(h) for h in headers]
    text_rows = [[("" if cell is None else str(cell)) for cell in row]
                 for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ms(seconds):
    """Format simulated seconds as milliseconds."""
    return f"{seconds * 1e3:.3f}"


def render_family_grid(per_query, legend=None):
    """Render the Fig-12/13 grid: 33 family columns, variant rows.

    ``per_query`` maps query names like ``'8c'`` to a class string;
    the first letter of the class is printed in the cell (``g``reen,
    ``y``ellow, ``r``ed / ``b``est, ``a``cceptable, ``m``iss).
    """
    families = {}
    for name, outcome in per_query.items():
        digits = "".join(ch for ch in name if ch.isdigit())
        if not digits:
            raise ReproError(
                f"query name {name!r} has no family number; JOB query "
                "names look like '8c' (family digits + variant letter)")
        number = int(digits)
        letter = "".join(ch for ch in name if ch.isalpha())
        families.setdefault(number, {})[letter] = outcome
    if not families:
        return "(empty grid)"
    numbers = sorted(families)
    variants = sorted({letter for cells in families.values()
                       for letter in cells})
    lines = []
    header = "    " + " ".join(f"{n:>2}" for n in numbers)
    lines.append(header)
    for letter in variants:
        cells = []
        for number in numbers:
            outcome = families[number].get(letter)
            cells.append(f" {outcome[0]}" if outcome else "  ")
        lines.append(f"  {letter} " + " ".join(cells))
    if legend:
        lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def render_matrix_summary(summary):
    """Render the Fig-12-style aggregate summary."""
    lines = [
        f"queries evaluated:        {summary['total']}",
        f"hybrid better (green):    {summary['green']} "
        f"({summary['green_pct']:.1f}%)",
        f"hybrid on par (yellow):   {summary['yellow']} "
        f"({summary['yellow_pct']:.1f}%)",
        f"host-only better:         {summary['red']} "
        f"({summary['red_pct']:.1f}%)",
        f"green+yellow:             {summary['green_yellow_pct']:.1f}% "
        f"(paper: ~47%)",
        f"full-NDP best:            {summary['full_ndp_best_pct']:.1f}% "
        f"(paper: ~1.7%)",
        f"leaf-only (H0) best:      {summary['h0_best_pct']:.1f}% "
        f"(paper: ~7%)",
        f"max speedup over host:    {summary['max_speedup']:.2f}x "
        f"(paper: up to 4.2x)",
    ]
    return "\n".join(lines)
