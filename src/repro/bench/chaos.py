"""Chaos harness: JOB queries under deterministic fault scenarios.

Each named scenario is a seeded :class:`~repro.faults.FaultPlan` probing
one degradation path — transient command NACKs that retry, a command
storm that exhausts the retries and forces the mid-query host fallback,
flash ECC-retry latency, PCIe lane down-shifts, device DRAM pressure
(admission control waits), and NDP-core brownouts (device stalls).

A chaos run executes the query three times: fault-free on the host
(the correctness baseline), fault-free hybrid at the chosen split (the
timing reference), and hybrid under the scenario's plan.  It then checks
the paper-level robustness contract: the degraded run returns *exactly*
the baseline rows, within a bounded slowdown — graceful degradation,
never wrong answers.  Everything is seeded, so a chaos matrix is
byte-for-byte reproducible.
"""

import os
from dataclasses import replace

from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import ReproError
from repro.faults import (CommandFaultModel, CoreFaultModel, DramFaultModel,
                          FaultPlan, FaultWindow, FlashFaultModel,
                          LinkFaultModel)
from repro.sim import Tracer
from repro.workloads.job_queries import query

#: Degraded runs must finish within ``LIMIT * reference + SLACK`` seconds,
#: where the reference is the slower of the fault-free host baseline and
#: the fault-free hybrid run.  The factor is deliberately loose — chaos
#: verifies *bounded* degradation, not performance.
SLOWDOWN_LIMIT = 10.0
SLOWDOWN_SLACK = 0.25

#: {scenario name: one-line description} — the chaos catalogue.
SCENARIOS = {
    "transient-commands": ("first two NDP command submissions NACKed; "
                           "retries with backoff succeed"),
    "command-storm": ("every submission NACKed; retries exhaust and the "
                      "query falls back to host-only execution"),
    "flash-ecc": "flash read pages need ECC retries (latency only)",
    "link-degraded": "PCIe lane down-shift window; transfers run 4x slower",
    "dram-pressure": ("device DRAM pressure at t=0; admission control "
                      "waits for the window instead of overloading"),
    "core-brownout": "NDP core unavailability windows; device stalls",
    "perfect-storm": "all fault models at once, mildly",
}


def scenario_plan(name, seed=0):
    """The seeded :class:`FaultPlan` for a named chaos scenario."""
    if name == "transient-commands":
        return FaultPlan(seed=seed,
                         commands=CommandFaultModel(fail_first=2))
    if name == "command-storm":
        # More deterministic failures than the policy has attempts
        # (1 + max_retries), so the offload always abandons.
        return FaultPlan(seed=seed,
                         commands=CommandFaultModel(fail_first=8))
    if name == "flash-ecc":
        # High per-page probability so the scenario still injects on the
        # tiny CI scales, where reads are only a handful of pages.
        return FaultPlan(seed=seed,
                         flash=FlashFaultModel(probability=0.5))
    if name == "link-degraded":
        return FaultPlan(seed=seed,
                         link=LinkFaultModel(
                             windows=(FaultWindow(0.0, 0.005),),
                             slowdown=4.0))
    if name == "dram-pressure":
        # Shrink past any budget for 1 ms: admission always waits the
        # full window, comfortably inside the 50 ms admission timeout.
        return FaultPlan(seed=seed,
                         dram=DramFaultModel(
                             windows=(FaultWindow(0.0, 0.001),),
                             shrink_bytes=1 << 40))
    if name == "core-brownout":
        return FaultPlan(seed=seed,
                         core=CoreFaultModel(
                             windows=(FaultWindow(0.0, 0.002),
                                      FaultWindow(0.004, 0.005))))
    if name == "perfect-storm":
        return FaultPlan(
            seed=seed,
            commands=CommandFaultModel(fail_first=1),
            flash=FlashFaultModel(probability=0.01),
            link=LinkFaultModel(windows=(FaultWindow(0.0, 0.002),),
                                slowdown=2.0),
            core=CoreFaultModel(windows=(FaultWindow(0.001, 0.002),)),
        )
    raise ReproError(
        f"unknown chaos scenario {name!r}; "
        f"known: {', '.join(sorted(SCENARIOS))}")


def default_split(runner, plan):
    """The split point chaos runs degrade: the deepest offloadable Hk
    at or below the middle of the pipeline."""
    k = plan.table_count // 2
    while k > 0 and not runner.ndp_engine.can_offload(plan.prefix(k)):
        k -= 1
    return k


def run_chaos(env, query_name, scenario, seed=0, ctx=None):
    """Run one JOB query under one chaos scenario.

    ``ctx`` (an :class:`~repro.context.ExecutionContext`) supplies the
    degraded run's tracer/retry policy; its fault plan is replaced by
    the scenario's.  Returns a plain summary dict: the three run times,
    the split point, whether the degraded rows match the fault-free host
    baseline (``rows_match``), whether the slowdown stayed bounded
    (``bounded``), and the degraded report's resilience fields.
    """
    ctx = ExecutionContext.coerce(ctx)
    plan = env.runner.plan(query(query_name))
    split = default_split(env.runner, plan)
    baseline = env.run(plan, Stack.NATIVE)
    reference = env.run(plan, Stack.HYBRID, split_index=split)
    faults = scenario_plan(scenario, seed=seed)
    faulted = env.run(plan, Stack.HYBRID, split_index=split,
                      ctx=replace(ctx, faults=faults))

    rows_match = (faulted.result.sorted_rows()
                  == baseline.result.sorted_rows())
    bound = (SLOWDOWN_LIMIT * max(baseline.total_time, reference.total_time)
             + SLOWDOWN_SLACK)
    return {
        "query": query_name,
        "scenario": scenario,
        "seed": seed,
        "split_index": split,
        "strategy": faulted.strategy,
        "rows": len(faulted.result),
        "rows_match": rows_match,
        "bounded": faulted.total_time <= bound,
        "ok": rows_match and faulted.total_time <= bound,
        "baseline_time": baseline.total_time,
        "reference_time": reference.total_time,
        "faulted_time": faulted.total_time,
        "fallback_from": faulted.fallback_from,
        "retries": faulted.retries,
        "faults_injected": dict(faulted.faults_injected),
        "wasted_device_time": faulted.wasted_device_time,
        "admission_wait_time": faulted.admission_wait_time,
    }


def chaos_matrix(env, query_names, scenarios=None, seed=0, trace_dir=None,
                 on_result=None):
    """``{query: {scenario: summary}}`` over a query/scenario grid.

    Queries and scenarios run in sorted order, so two matrices with the
    same environment and seed serialize to identical JSON.  With
    ``trace_dir`` set each degraded run is traced and written as
    ``<trace_dir>/<query>-<scenario>.json`` (fault instants included).
    ``on_result(summary)`` fires as each cell completes.
    """
    names = sorted(scenarios) if scenarios else sorted(SCENARIOS)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
    matrix = {}
    for query_name in sorted(query_names):
        row = {}
        for scenario in names:
            tracer = Tracer() if trace_dir else None
            summary = run_chaos(env, query_name, scenario, seed=seed,
                                ctx=ExecutionContext(tracer=tracer))
            if trace_dir:
                tracer.write(os.path.join(
                    trace_dir, f"{query_name}-{scenario}.json"))
            row[scenario] = summary
            if on_result is not None:
                on_result(summary)
        matrix[query_name] = row
    return matrix
