"""Chaos harness: JOB queries under deterministic fault scenarios.

Each named scenario is a seeded :class:`~repro.faults.FaultPlan` probing
one degradation path — transient command NACKs that retry, a command
storm that exhausts the retries and forces the mid-query host fallback,
flash ECC-retry latency, PCIe lane down-shifts, device DRAM pressure
(admission control waits), and NDP-core brownouts (device stalls).

A chaos run executes the query three times: fault-free on the host
(the correctness baseline), fault-free hybrid at the chosen split (the
timing reference), and hybrid under the scenario's plan.  It then checks
the paper-level robustness contract: the degraded run returns *exactly*
the baseline rows, within a bounded slowdown — graceful degradation,
never wrong answers.  Everything is seeded, so a chaos matrix is
byte-for-byte reproducible.
"""

import os
from dataclasses import replace

from repro.cluster import ClusterFaultPlan, DeviceCluster, SpeculationPolicy
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import DeviceOverloadError, OffloadError, ReproError
from repro.faults import (CommandFaultModel, CoreFaultModel, DramFaultModel,
                          FaultPlan, FaultWindow, FlashFaultModel,
                          LinkFaultModel, SlowDeviceModel)
from repro.sched import WorkloadScheduler
from repro.sim import Tracer
from repro.workloads.job_queries import query
from repro.workloads.sqlgen import RandomSqlGenerator

#: Degraded runs must finish within ``LIMIT * reference + SLACK`` seconds,
#: where the reference is the slower of the fault-free host baseline and
#: the fault-free hybrid run.  The factor is deliberately loose — chaos
#: verifies *bounded* degradation, not performance.
SLOWDOWN_LIMIT = 10.0
SLOWDOWN_SLACK = 0.25

#: {scenario name: one-line description} — the chaos catalogue.
SCENARIOS = {
    "transient-commands": ("first two NDP command submissions NACKed; "
                           "retries with backoff succeed"),
    "command-storm": ("every submission NACKed; retries exhaust and the "
                      "query falls back to host-only execution"),
    "flash-ecc": "flash read pages need ECC retries (latency only)",
    "link-degraded": "PCIe lane down-shift window; transfers run 4x slower",
    "dram-pressure": ("device DRAM pressure at t=0; admission control "
                      "waits for the window instead of overloading"),
    "core-brownout": "NDP core unavailability windows; device stalls",
    "perfect-storm": "all fault models at once, mildly",
}

#: Scale-out robustness scenarios (stragglers, cascading failures,
#: deadlines).  These run a :class:`~repro.cluster.DeviceCluster` or a
#: :class:`~repro.sched.WorkloadScheduler` instead of a single device,
#: so they are selected by name (``--scenario``), never part of the
#: default single-device matrix.
ROBUSTNESS_SCENARIOS = {
    "straggler_device": ("4-device scatter-gather with one slow device; "
                         "speculation keeps the makespan within "
                         "1.5x fault-free"),
    "double_device_failure": ("2-device scatter-gather where both devices "
                              "fail; partitions cascade through survivors "
                              "to correct host-fallback rows"),
    "deadline_shedding": ("deadline-bounded workload; queued jobs past "
                          "their budget are shed with exact reservation "
                          "accounting"),
}

#: Makespan bound the straggler scenario must meet via speculation.
STRAGGLER_LIMIT = 1.5


def scenario_plan(name, seed=0):
    """The seeded :class:`FaultPlan` for a named chaos scenario."""
    if name == "transient-commands":
        return FaultPlan(seed=seed,
                         commands=CommandFaultModel(fail_first=2))
    if name == "command-storm":
        # More deterministic failures than the policy has attempts
        # (1 + max_retries), so the offload always abandons.
        return FaultPlan(seed=seed,
                         commands=CommandFaultModel(fail_first=8))
    if name == "flash-ecc":
        # High per-page probability so the scenario still injects on the
        # tiny CI scales, where reads are only a handful of pages.
        return FaultPlan(seed=seed,
                         flash=FlashFaultModel(probability=0.5))
    if name == "link-degraded":
        return FaultPlan(seed=seed,
                         link=LinkFaultModel(
                             windows=(FaultWindow(0.0, 0.005),),
                             slowdown=4.0))
    if name == "dram-pressure":
        # Shrink past any budget for 1 ms: admission always waits the
        # full window, comfortably inside the 50 ms admission timeout.
        return FaultPlan(seed=seed,
                         dram=DramFaultModel(
                             windows=(FaultWindow(0.0, 0.001),),
                             shrink_bytes=1 << 40))
    if name == "core-brownout":
        return FaultPlan(seed=seed,
                         core=CoreFaultModel(
                             windows=(FaultWindow(0.0, 0.002),
                                      FaultWindow(0.004, 0.005))))
    if name == "perfect-storm":
        return FaultPlan(
            seed=seed,
            commands=CommandFaultModel(fail_first=1),
            flash=FlashFaultModel(probability=0.01),
            link=LinkFaultModel(windows=(FaultWindow(0.0, 0.002),),
                                slowdown=2.0),
            core=CoreFaultModel(windows=(FaultWindow(0.001, 0.002),)),
        )
    raise ReproError(
        f"unknown chaos scenario {name!r}; "
        f"known: {', '.join(sorted(SCENARIOS))}")


def default_split(runner, plan):
    """The split point chaos runs degrade: the deepest offloadable Hk
    at or below the middle of the pipeline."""
    k = plan.table_count // 2
    while k > 0 and not runner.ndp_engine.can_offload(plan.prefix(k)):
        k -= 1
    return k


def generated_queries(count, seed=0):
    """``{name: sql}`` for ``count`` random sqlgen queries.

    Names are ``gen0..gen<count-1>``; the corpus is prefix-stable in
    ``seed`` (:class:`~repro.workloads.sqlgen.RandomSqlGenerator`), so
    the same seed always chaoses the same queries.
    """
    generator = RandomSqlGenerator(seed=seed)
    return {f"gen{q.index}": q.sql for q in generator.generate(count)}


def run_chaos(env, query_name, scenario, seed=0, ctx=None, queries=None):
    """Run one query under one chaos scenario.

    ``query_name`` resolves through the optional ``queries`` mapping
    (``{name: sql}``, e.g. from :func:`generated_queries`) first, then
    the JOB catalog.  ``ctx`` (an
    :class:`~repro.context.ExecutionContext`) supplies the degraded
    run's tracer/retry policy; its fault plan is replaced by the
    scenario's.  Returns a plain summary dict: the three run times,
    the split point, whether the degraded rows match the fault-free host
    baseline (``rows_match``), whether the slowdown stayed bounded
    (``bounded``), and the degraded report's resilience fields.

    A generated query whose pipeline cannot be offloaded or reserved at
    this scale is reported as ``infeasible`` (and ``ok``) rather than a
    failure — mirroring the differential fuzzer's classification.
    """
    ctx = ExecutionContext.coerce(ctx)
    if scenario in ROBUSTNESS_SCENARIOS:
        return run_robustness_chaos(env, query_name, scenario, seed=seed,
                                    ctx=ctx, queries=queries)
    sql = (queries[query_name] if queries and query_name in queries
           else query(query_name))
    plan = env.runner.plan(sql)
    split = default_split(env.runner, plan)
    baseline = env.run(plan, Stack.NATIVE)
    faults = scenario_plan(scenario, seed=seed)
    try:
        reference = env.run(plan, Stack.HYBRID, split_index=split)
        faulted = env.run(plan, Stack.HYBRID, split_index=split,
                          ctx=replace(ctx, faults=faults))
    except (DeviceOverloadError, OffloadError) as error:
        return {
            "query": query_name,
            "scenario": scenario,
            "seed": seed,
            "split_index": split,
            "infeasible": True,
            "ok": True,
            "rows_match": True,
            "bounded": True,
            "strategy": "infeasible",
            "rows": len(baseline.result),
            "baseline_time": baseline.total_time,
            "reference_time": 0.0,
            "faulted_time": 0.0,
            "fallback_from": None,
            "retries": 0,
            "faults_injected": {},
            "wasted_device_time": 0.0,
            "admission_wait_time": 0.0,
            "error": str(error),
        }

    rows_match = (faulted.result.sorted_rows()
                  == baseline.result.sorted_rows())
    bound = (SLOWDOWN_LIMIT * max(baseline.total_time, reference.total_time)
             + SLOWDOWN_SLACK)
    return {
        "query": query_name,
        "scenario": scenario,
        "seed": seed,
        "split_index": split,
        "strategy": faulted.strategy,
        "rows": len(faulted.result),
        "rows_match": rows_match,
        "bounded": faulted.total_time <= bound,
        "ok": rows_match and faulted.total_time <= bound,
        "baseline_time": baseline.total_time,
        "reference_time": reference.total_time,
        "faulted_time": faulted.total_time,
        "fallback_from": faulted.fallback_from,
        "retries": faulted.retries,
        "faults_injected": dict(faulted.faults_injected),
        "wasted_device_time": faulted.wasted_device_time,
        "admission_wait_time": faulted.admission_wait_time,
    }


def run_robustness_chaos(env, query_name, scenario, seed=0, ctx=None,
                         queries=None):
    """Run one scale-out robustness scenario (see
    :data:`ROBUSTNESS_SCENARIOS`).

    Every scenario checks the same contract as single-device chaos —
    exactly the fault-free rows, bounded cost — against its own
    acceptance criterion: speculation bounds the straggler makespan,
    cascading failures end in correct host-fallback rows, deadlines shed
    with zero leaked reservations.  All inputs are seeded, so the
    summary dict is byte-for-byte reproducible.
    """
    ctx = ExecutionContext.coerce(ctx)
    sql = (queries[query_name] if queries and query_name in queries
           else query(query_name))
    if scenario == "straggler_device":
        return _run_straggler(env, query_name, sql, seed, ctx)
    if scenario == "double_device_failure":
        return _run_double_failure(env, query_name, sql, seed, ctx)
    if scenario == "deadline_shedding":
        return _run_deadline_shedding(env, query_name, sql, seed, ctx)
    raise ReproError(
        f"unknown robustness scenario {scenario!r}; "
        f"known: {', '.join(sorted(ROBUSTNESS_SCENARIOS))}")


def _run_straggler(env, query_name, sql, seed, ctx):
    """One slow device in a 4-device scatter-gather; speculation must
    keep the makespan within ``STRAGGLER_LIMIT`` of fault-free.

    The split is pinned shallow (H0): the device fragment is small
    against the host-serialized work, so a backup clone started around
    the median completion still lands near the fault-free makespan —
    with a deep split even a perfect clone could not beat ~2x.
    """
    plan = env.runner.plan(sql)
    split = 0
    baseline = env.run(plan, Stack.NATIVE)
    cluster = DeviceCluster(env, n_devices=4,
                            speculation=SpeculationPolicy(factor=1.5))
    reference = cluster.run(plan, split_index=split)
    faults = ClusterFaultPlan(plans={0: FaultPlan(
        seed=seed,
        slow=SlowDeviceModel(windows=(FaultWindow(0.0, 3600.0),),
                             slowdown=50.0))})
    faulted = cluster.run(plan, ctx=replace(ctx, faults=faults),
                          split_index=split)
    rows_match = (faulted.result.sorted_rows()
                  == baseline.result.sorted_rows())
    bound = STRAGGLER_LIMIT * reference.total_time
    speculation = faulted.cluster["speculation"]
    bounded = faulted.total_time <= bound
    return {
        "query": query_name,
        "scenario": "straggler_device",
        "seed": seed,
        "split_index": split,
        "strategy": faulted.strategy,
        "rows": len(faulted.result),
        "rows_match": rows_match,
        "bounded": bounded,
        "ok": rows_match and bounded and speculation["clones"] >= 1,
        "baseline_time": baseline.total_time,
        "reference_time": reference.total_time,
        "faulted_time": faulted.total_time,
        "fallback_from": faulted.fallback_from,
        "retries": faulted.retries,
        "faults_injected": dict(faulted.faults_injected),
        "wasted_device_time": faulted.wasted_device_time,
        "admission_wait_time": faulted.admission_wait_time,
        "speculation": speculation,
        "placements": [part["placement"]
                       for part in faulted.cluster["partitions"]],
    }


def _run_double_failure(env, query_name, sql, seed, ctx):
    """Both devices of a 2-device cluster storm out; the iterative
    cascade must end in correct host-fallback rows, never an error."""
    plan = env.runner.plan(sql)
    split = default_split(env.runner, plan)
    baseline = env.run(plan, Stack.NATIVE)
    cluster = DeviceCluster(env, n_devices=2)
    reference = cluster.run(plan, split_index=split)
    storm = CommandFaultModel(fail_first=64)
    faults = ClusterFaultPlan(plans={
        0: FaultPlan(seed=seed, commands=storm),
        1: FaultPlan(seed=seed + 1, commands=storm),
    })
    faulted = cluster.run(plan, ctx=replace(ctx, faults=faults),
                          split_index=split)
    rows_match = (faulted.result.sorted_rows()
                  == baseline.result.sorted_rows())
    placements = [part["placement"]
                  for part in faulted.cluster["partitions"]]
    degraded = (faulted.cluster["failed_devices"] == [0, 1]
                and all(p in ("host-fallback", "empty")
                        for p in placements))
    bound = (SLOWDOWN_LIMIT * max(baseline.total_time,
                                  reference.total_time)
             + SLOWDOWN_SLACK)
    bounded = faulted.total_time <= bound
    return {
        "query": query_name,
        "scenario": "double_device_failure",
        "seed": seed,
        "split_index": split,
        "strategy": faulted.strategy,
        "rows": len(faulted.result),
        "rows_match": rows_match,
        "bounded": bounded,
        "ok": rows_match and bounded and degraded,
        "baseline_time": baseline.total_time,
        "reference_time": reference.total_time,
        "faulted_time": faulted.total_time,
        "fallback_from": faulted.fallback_from,
        "retries": faulted.retries,
        "faults_injected": dict(faulted.faults_injected),
        "wasted_device_time": faulted.wasted_device_time,
        "admission_wait_time": faulted.admission_wait_time,
        "failed_devices": faulted.cluster["failed_devices"],
        "placements": placements,
    }


def _run_deadline_shedding(env, query_name, sql, seed, ctx):
    """A deadline-bounded workload: six copies of one query arrive at
    once; ``max_inflight=2`` queues the tail, whose tight budgets
    (half the serial time) expire before any completion frees a slot —
    so the head completes, the tail is shed, and every reservation is
    provably released."""
    plan = env.runner.plan(sql)
    serial = env.run(plan, Stack.NATIVE)
    loose = 20.0 * serial.total_time
    tight = 0.5 * serial.total_time
    scheduler = WorkloadScheduler(env, ctx=ctx, max_inflight=2,
                                  queries={query_name: sql})
    for i in range(6):
        scheduler.submit(query_name, at=0.0,
                         deadline=loose if i < 3 else tight)
    result = scheduler.run()
    completed = result.completed()
    shed = result.shed()
    rows_match = all(
        job.report.result.sorted_rows() == serial.result.sorted_rows()
        for job in completed if job.report is not None)
    leaked = sum(device.reserved_bytes for device in scheduler.devices)
    ok = (rows_match and len(completed) >= 1 and len(shed) >= 1
          and leaked == 0
          and len(completed) + len(shed) == len(result.jobs))
    return {
        "query": query_name,
        "scenario": "deadline_shedding",
        "seed": seed,
        "split_index": None,
        "strategy": "workload",
        "rows": (len(completed[0].report.result)
                 if completed and completed[0].report is not None
                 else None),
        "rows_match": rows_match,
        "bounded": leaked == 0,
        "ok": ok,
        "baseline_time": serial.total_time,
        "reference_time": serial.total_time,
        "faulted_time": result.makespan,
        "fallback_from": None,
        "retries": 0,
        "faults_injected": {},
        "wasted_device_time": 0.0,
        "admission_wait_time": 0.0,
        "deadline": tight,
        "completed_jobs": len(completed),
        "shed_jobs": len(shed),
        "leaked_reserved_bytes": leaked,
        "placements": result.placements(),
    }


def chaos_matrix(env, query_names, scenarios=None, seed=0, trace_dir=None,
                 on_result=None, queries=None):
    """``{query: {scenario: summary}}`` over a query/scenario grid.

    Queries and scenarios run in sorted order, so two matrices with the
    same environment and seed serialize to identical JSON.  Scenario
    names may mix the single-device catalogue (:data:`SCENARIOS`) and
    the scale-out one (:data:`ROBUSTNESS_SCENARIOS`); the default is
    the single-device catalogue only.  ``queries`` is an optional
    ``{name: sql}`` mapping (e.g. :func:`generated_queries`) consulted
    before the JOB catalog, so generated workloads chaos exactly like
    named queries.  With ``trace_dir`` set each degraded run is traced
    and written as ``<trace_dir>/<query>-<scenario>.json`` (fault and
    speculation instants included).  ``on_result(summary)`` fires as
    each cell completes.
    """
    names = sorted(scenarios) if scenarios else sorted(SCENARIOS)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
    matrix = {}
    for query_name in sorted(query_names):
        row = {}
        for scenario in names:
            tracer = Tracer() if trace_dir else None
            summary = run_chaos(env, query_name, scenario, seed=seed,
                                ctx=ExecutionContext(tracer=tracer),
                                queries=queries)
            if trace_dir:
                tracer.write(os.path.join(
                    trace_dir, f"{query_name}-{scenario}.json"))
            row[scenario] = summary
            if on_result is not None:
                on_result(summary)
        matrix[query_name] = row
    return matrix
