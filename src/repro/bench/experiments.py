"""Experiment implementations (paper §5, Experiments 1-6 + extras).

Each function takes a loaded :class:`~repro.workloads.loader.Environment`
and returns plain dicts/lists so benchmarks, examples and tests can all
consume them.
"""

from repro.core.strategy import ExecutionStrategy
from repro.engine.stacks import Stack
from repro.query.physical import AccessPath, JoinAlgorithm
from repro.storage.machines import HOST_I5
from repro.storage.profiler import HardwareProfiler
from repro.workloads.job_queries import (LISTING2_FULL_PROJECTION,
                                         LISTING2_LIMITED_PROJECTION,
                                         all_queries, query)

#: Tolerance for calling two strategies "on par" (yellow in Fig 12/13).
ON_PAR_TOLERANCE = 0.05


# ----------------------------------------------------------------------
# Fig 2 — the introductory experiment (Q8c alternatives)
# ----------------------------------------------------------------------
def exp_intro_fig2(env, query_name="8c"):
    """host-only vs H0 vs H3 vs full NDP for the intro query."""
    plan = env.runner.plan(query(query_name))
    mid_split = min(3, plan.table_count - 2)
    rows = {
        "host-only": env.run(plan, Stack.BLK).total_time,
        "H0": env.run(plan, Stack.HYBRID, split_index=0).total_time,
        f"H{mid_split}": env.run(plan, Stack.HYBRID,
                                 split_index=mid_split).total_time,
        "full-ndp": env.run(plan, Stack.NDP).total_time,
    }
    return {"query": query_name, "times": rows}


# ----------------------------------------------------------------------
# Experiment 1 — Fig 11: Q8c/Q17b/Q32b on all stacks, and Table 3
# ----------------------------------------------------------------------
def exp1_stacks_fig11(env, query_names=("8c", "17b", "32b")):
    """BLK / NATIVE / NDP / hybridNDP execution times per query.

    The hybridNDP column uses the planner's own split decision (falling
    back to host-only when the planner says so).
    """
    results = {}
    for name in query_names:
        plan = env.runner.plan(query(name))
        decision = env.decide(plan)
        row = {
            "blk": env.run(plan, Stack.BLK).total_time,
            "native": env.run(plan, Stack.NATIVE).total_time,
            "ndp": env.run(plan, Stack.NDP).total_time,
        }
        if decision.strategy is ExecutionStrategy.HYBRID:
            row["hybridndp"] = env.run(
                plan, Stack.HYBRID,
                split_index=decision.split_index).total_time
        elif decision.strategy is ExecutionStrategy.FULL_NDP:
            row["hybridndp"] = row["ndp"]
        else:
            row["hybridndp"] = row["native"]
        row["decision"] = decision.strategy_name
        results[name] = row
    return results


def exp1_table3(env, query_name="17b"):
    """Correlation of intermediate-result counts and execution time."""
    plan = env.runner.plan(query(query_name))
    rows = []
    for k in range(plan.table_count):
        try:
            report = env.run(plan, Stack.HYBRID, split_index=k)
        except Exception as error:
            rows.append({"split": f"H{k}", "error": str(error)})
            continue
        rows.append({
            "split": f"H{k}",
            "intermediate_rows": report.intermediate_rows,
            "intermediate_bytes": report.intermediate_bytes,
            "batches": report.batches,
            "time": report.total_time,
            "host_wait": report.host_wait_total,
            "device_stall": report.device_stall_time,
        })
    return {"query": query_name, "rows": rows}


# ----------------------------------------------------------------------
# Experiment 2 — Fig 12: the full JOB matrix
# ----------------------------------------------------------------------
def exp2_job_matrix_fig12(env, query_names=None, workers=1, trace_dir=None):
    """Per-query times for host-only, H0..Hn, full NDP.

    ``query_names`` defaults to all 113 JOB queries; pass a subset for
    quick runs.  ``workers>1`` shards the sweep over processes (each
    rebuilding ``env`` deterministically); results are identical to the
    serial sweep.  ``trace_dir`` emits one Perfetto trace per (query,
    feasible strategy).  Returns {name: {strategy: seconds-or-None}}.
    """
    from repro.bench.parallel import sweep_job_matrix
    names = list(query_names) if query_names else sorted(all_queries())
    return sweep_job_matrix(query_names=names, workers=workers, env=env,
                            trace_dir=trace_dir)


def classify_matrix(matrix, tolerance=ON_PAR_TOLERANCE):
    """Aggregate a Fig-12 matrix into the paper's summary percentages."""
    total = green = yellow = red = 0
    full_ndp_best = h0_best = 0
    max_speedup = 0.0
    per_query = {}
    for name, times in matrix.items():
        host = times.get("host-only")
        if host is None:
            continue
        total += 1
        strategies = {k: v for k, v in times.items()
                      if v is not None and k != "host-only"}
        if not strategies:
            red += 1
            per_query[name] = "red"
            continue
        best_name = min(strategies, key=lambda k: strategies[k])
        best = strategies[best_name]
        speedup = host / best
        max_speedup = max(max_speedup, speedup)
        if best < host * (1 - tolerance):
            green += 1
            per_query[name] = "green"
        elif best <= host * (1 + tolerance):
            yellow += 1
            per_query[name] = "yellow"
        else:
            red += 1
            per_query[name] = "red"
        if best_name == "full-ndp":
            full_ndp_best += 1
        elif best_name == "H0":
            h0_best += 1
    def pct(n):
        return 100.0 * n / total if total else 0.0
    return {
        "total": total,
        "green": green, "yellow": yellow, "red": red,
        "green_pct": pct(green), "yellow_pct": pct(yellow),
        "red_pct": pct(red),
        "green_yellow_pct": pct(green + yellow),
        "full_ndp_best_pct": pct(full_ndp_best),
        "h0_best_pct": pct(h0_best),
        "max_speedup": max_speedup,
        "per_query": per_query,
    }


# ----------------------------------------------------------------------
# Experiment 3 — Fig 13: decision quality of the cost model
# ----------------------------------------------------------------------
def exp3_decisions_fig13(env, matrix, tolerance=0.10):
    """Compare the planner's choice against the empirical best strategy.

    ``matrix`` is the Exp-2 output for the same environment.  A decision
    is *best* (green) when it names the fastest strategy, *acceptable*
    (yellow) when its strategy's time is within ``tolerance`` of the
    fastest, and a *miss* (gray) otherwise.
    """
    outcomes = {}
    best = acceptable = miss = 0
    for name, times in matrix.items():
        valid = {k: v for k, v in times.items() if v is not None}
        if not valid:
            continue
        fastest = min(valid, key=lambda k: valid[k])
        decision = env.decide(query(name))
        if decision.strategy is ExecutionStrategy.HOST_ONLY:
            chosen = "host-only"
        elif decision.strategy is ExecutionStrategy.FULL_NDP:
            chosen = "full-ndp"
        else:
            chosen = f"H{decision.split_index}"
        chosen_time = valid.get(chosen)
        if chosen == fastest:
            best += 1
            outcomes[name] = "best"
        elif (chosen_time is not None
              and chosen_time <= valid[fastest] * (1 + tolerance)):
            acceptable += 1
            outcomes[name] = "acceptable"
        else:
            miss += 1
            outcomes[name] = "miss"
    total = best + acceptable + miss
    def pct(n):
        return 100.0 * n / total if total else 0.0
    return {
        "total": total,
        "best": best, "acceptable": acceptable, "miss": miss,
        "best_pct": pct(best),
        "acceptable_pct": pct(acceptable),
        "suitable_pct": pct(best + acceptable),
        "per_query": outcomes,
    }


# ----------------------------------------------------------------------
# Experiment 4 — Fig 14: the non-indexed join (Listing 2)
# ----------------------------------------------------------------------
def exp4_nonindexed_fig14(env_noindex):
    """NDP vs BLK/NATIVE for the Listing-2 join, both projections."""
    results = {}
    for label, sql in (("limited", LISTING2_LIMITED_PROJECTION),
                       ("full", LISTING2_FULL_PROJECTION)):
        results[label] = {
            "blk": env_noindex.run(sql, Stack.BLK).total_time,
            "native": env_noindex.run(sql, Stack.NATIVE).total_time,
            "ndp": env_noindex.run(sql, Stack.NDP).total_time,
        }
    return results


# ----------------------------------------------------------------------
# Experiment 5 — Fig 15: in-situ secondary-index processing
# ----------------------------------------------------------------------
def force_join(plan, algorithm):
    """Rewrite every join of a plan to one index-less algorithm."""
    for entry in plan.entries[1:]:
        entry.join_algorithm = algorithm
        entry.index_column = None
        entry.access_path = AccessPath.FULL_SCAN
    return plan


def force_bnlj(plan):
    """Rewrite every join of a plan to an index-less BNL join."""
    return force_join(plan, JoinAlgorithm.BNLJ)


def exp5_insitu_index_fig15(env_indexed):
    """On-device BNL vs BNLI vs the host, both projections.

    Runs on an environment *with* secondary indexes so the optimizer
    picks BNLJI; the BNL variant force-rewrites the same plan.
    """
    results = {}
    for label, sql in (("limited", LISTING2_LIMITED_PROJECTION),
                       ("full", LISTING2_FULL_PROJECTION)):
        plan_bnli = env_indexed.runner.plan(sql)
        plan_bnl = force_bnlj(env_indexed.runner.plan(sql))
        results[label] = {
            "host": env_indexed.run(plan_bnli, Stack.NATIVE).total_time,
            "ndp_bnl": env_indexed.run(plan_bnl, Stack.NDP).total_time,
            "ndp_bnli": env_indexed.run(plan_bnli, Stack.NDP).total_time,
        }
    return results


# ----------------------------------------------------------------------
# Experiment 6 — Figs 16/17 and Table 4
# ----------------------------------------------------------------------
def exp6_split_sweep_fig16(env, query_name="8c"):
    """Execution time for block-only, H0..Hn, NDP-only."""
    plan = env.runner.plan(query(query_name))
    sweep = {"block-only": env.run(plan, Stack.BLK).total_time}
    for k in range(plan.table_count):
        try:
            sweep[f"H{k}"] = env.run(plan, Stack.HYBRID,
                                     split_index=k).total_time
        except Exception:
            sweep[f"H{k}"] = None
    try:
        sweep["ndp-only"] = env.run(plan, Stack.NDP).total_time
    except Exception:
        sweep["ndp-only"] = None
    return {"query": query_name, "times": sweep}


def exp6_timeline_fig17(env, query_name="8d", split_index=2):
    """The overlapping-execution timeline for one hybrid run."""
    plan = env.runner.plan(query(query_name))
    split_index = min(split_index, plan.table_count - 2)
    report = env.run(plan, Stack.HYBRID, split_index=split_index)
    return {
        "query": query_name,
        "split": f"H{split_index}",
        "total_time": report.total_time,
        "batches": report.batches,
        "host_wait_initial": report.host_wait_initial,
        "host_wait_other": report.host_wait_other,
        "device_stall": report.device_stall_time,
        "timeline": [
            (phase.actor, phase.kind, phase.start, phase.end, phase.label)
            for phase in report.timeline],
    }


def exp6_table4(env, query_name="8d", split_index=2):
    """Host stage shares and device operation shares (Table 4)."""
    plan = env.runner.plan(query(query_name))
    split_index = min(split_index, plan.table_count - 2)
    report = env.run(plan, Stack.HYBRID, split_index=split_index)
    return {
        "query": query_name,
        "split": f"H{split_index}",
        "host_stages": report.host_stage_shares(),
        "device_operations": report.device_operation_shares(),
        "total_time": report.total_time,
    }


# ----------------------------------------------------------------------
# §5 setup checks — CoreMark-style compute gap
# ----------------------------------------------------------------------
def profiler_compute_gap(env):
    """The §5 claim: host ~92343 it/s vs device ~2964 it/s (~31x)."""
    report = HardwareProfiler(env.device, HOST_I5).run()
    return {
        "host_rate": report.host_eval_ops_per_second,
        "device_rate": report.device_eval_ops_per_second,
        "gap": report.compute_gap,
        "pcie_bandwidth": report.pcie_bandwidth,
        "internal_page_rate": report.device_flash_page_rate,
        "external_page_rate": report.host_flash_page_rate,
    }
