"""Parallel JOB sweep: shard the Fig-12 strategy matrix across processes.

The 113-query sweep is embarrassingly parallel — every query's
``run_all_splits`` is independent of every other query's (each execution
builds fresh pipeline state).  Workers each build their own environment
(the LSM store is not shareable across processes); with the seeded
on-disk workload cache (:mod:`repro.workloads.loader`) only the first
builder pays dataset generation, and every build is deterministic, so
the sharded sweep is bit-identical to the serial one for a fixed seed.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.context import ExecutionContext
from repro.sim import Tracer
from repro.workloads.job_queries import all_queries, query
from repro.workloads.loader import build_environment

#: Environment variable read by the benchmark fixtures for worker count.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

# Per-worker-process environment, built once by the pool initializer.
_WORKER_ENV = None
_WORKER_TRACE_DIR = None


def default_workers():
    """Worker count from ``$REPRO_SWEEP_WORKERS`` (default: serial)."""
    try:
        return max(1, int(os.environ.get(WORKERS_ENV_VAR, "1")))
    except ValueError:
        return 1


def strategy_times(env, query_name, trace_dir=None):
    """{strategy: total_time or None} for one query on one environment.

    With ``trace_dir`` set, every feasible strategy run is traced and
    written as ``<trace_dir>/<query>-<strategy>.json`` (Chrome
    ``trace_event`` JSON, one file per strategy).
    """
    tracers = {}
    ctx_factory = None
    if trace_dir:
        def ctx_factory(strategy):
            tracers[strategy] = Tracer()
            return ExecutionContext(tracer=tracers[strategy])
    reports = env.runner.run_all_splits(query(query_name),
                                        ctx_factory=ctx_factory)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        for strategy, report in reports.items():
            if isinstance(report, Exception):
                continue   # infeasible: its tracer may hold open spans
            tracers[strategy].write(os.path.join(
                trace_dir, f"{query_name}-{strategy}.json"))
    return {strategy: (None if isinstance(report, Exception)
                       else report.total_time)
            for strategy, report in reports.items()}


def _init_worker(env_kwargs, trace_dir=None):
    global _WORKER_ENV, _WORKER_TRACE_DIR
    _WORKER_ENV = build_environment(**env_kwargs)
    _WORKER_TRACE_DIR = trace_dir


def _sweep_one(query_name):
    return query_name, strategy_times(_WORKER_ENV, query_name,
                                      trace_dir=_WORKER_TRACE_DIR)


def sweep_job_matrix(query_names=None, workers=1, env=None,
                     env_kwargs=None, workload_cache_dir=None,
                     on_result=None, trace_dir=None):
    """The Fig-12 matrix ``{query: {strategy: seconds-or-None}}``.

    ``workers=1`` runs serially on ``env`` (built from ``env_kwargs``
    when absent).  ``workers>1`` shards the queries over a
    :class:`ProcessPoolExecutor`; each worker builds its own environment
    from ``env_kwargs`` (or ``env.build_kwargs()``), reading the shared
    workload cache.  Results are keyed in sorted query order either way,
    so serial and parallel sweeps serialize to identical JSON.

    ``on_result(name, times)`` is invoked in the parent as each query
    completes, for progress reporting.  ``trace_dir`` writes one Perfetto
    trace per (query, feasible strategy) into the directory — traces are
    per-query files, so the sharded sweep emits the same set as the
    serial one.
    """
    names = sorted(query_names) if query_names else sorted(all_queries())
    if env_kwargs is None:
        if env is not None:
            env_kwargs = env.build_kwargs()
        else:
            env_kwargs = {}
    if workload_cache_dir:
        env_kwargs = dict(env_kwargs,
                          workload_cache_dir=workload_cache_dir)

    matrix = {}
    if workers <= 1:
        if env is None:
            env = build_environment(**env_kwargs)
        for name in names:
            times = strategy_times(env, name, trace_dir=trace_dir)
            matrix[name] = times
            if on_result is not None:
                on_result(name, times)
        return matrix

    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker,
                             initargs=(env_kwargs, trace_dir)) as pool:
        # map() preserves submission order: the matrix is keyed in sorted
        # order exactly like the serial path, whatever finishes first.
        for name, times in pool.map(_sweep_one, names):
            matrix[name] = times
            if on_result is not None:
                on_result(name, times)
    return matrix
