"""Multi-device scaling benchmark.

Sweeps device counts (default 1/2/4/8) over a JOB query mix, twice per
count:

* **scatter-gather** — each query runs once across the whole cluster
  (:class:`~repro.cluster.ScatterGatherExecutor`); the summary reports
  the per-query latency distribution, the speedup against the same
  sweep's single-device cell, and per-device resource utilization.
* **workload** — the same mix runs as a closed-loop workload through
  :class:`~repro.sched.WorkloadScheduler` in cluster mode (whole-query
  least-loaded placement), reporting makespan and throughput.

Everything is seeded and simulated: a summary is a deterministic
function of ``(environment, query mix, partitioner, seed)``, so two
runs serialize to identical JSON — the self-check the CI cluster smoke
job performs before uploading ``BENCH_cluster.json``.
"""

from repro.bench.concurrency import percentile
from repro.cluster import DeviceCluster
from repro.context import ExecutionContext
from repro.sched import ClosedLoopArrivals, WorkloadScheduler
from repro.storage.topology import PartitionSpec
from repro.workloads.job_queries import query as job_query

#: Same placement-diverse JOB mix the concurrency benchmark uses.
DEFAULT_QUERIES = ["1a", "2a", "3b", "4a", "6a", "8c", "16b", "17e"]

#: Device counts of the scaling sweep.
DEFAULT_DEVICE_COUNTS = (1, 2, 4, 8)


def _distribution(values):
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def run_cluster_benchmark(env, n_devices, query_names=None,
                          partitioner="range", seed=0, clients=4,
                          ctx=None):
    """One cell of the scaling sweep; returns a JSON-ready summary.

    Builds an ``n_devices`` cluster over ``env``'s mirrored store with a
    seeded ``partitioner`` (``"range"``/``"hash"``), scatter-gathers
    every query once, then replays the mix as a closed-loop scheduled
    workload on the same cluster.
    """
    ctx = ExecutionContext.coerce(ctx)
    names = list(query_names or DEFAULT_QUERIES)
    spec = PartitionSpec(kind=partitioner, seed=seed)
    cluster = DeviceCluster(env, n_devices=n_devices, partitioner=spec)

    queries = []
    for name in names:
        report = cluster.run(job_query(name), ctx=ctx)
        placements = {}
        for part in report.cluster["partitions"]:
            key = part["placement"]
            placements[key] = placements.get(key, 0) + 1
        queries.append({
            "name": name,
            "total_time": report.total_time,
            "rows": len(report.result.rows),
            "strategy": report.strategy,
            "placements": dict(sorted(placements.items())),
            "device_utilization": {
                resource: stats["utilization"]
                for resource, stats in report.resource_stats.items()},
        })
    latencies = [entry["total_time"] for entry in queries]

    scheduler = WorkloadScheduler(env, ctx=ctx, cluster=cluster)
    scheduler.submit_closed_loop(
        names, ClosedLoopArrivals(clients=clients, seed=seed))
    workload = scheduler.run()
    workload.seed = seed

    return {
        "schema_version": 1,
        "n_devices": n_devices,
        "seed": seed,
        "partitioner": cluster.partitioner.describe(),
        "query_names": names,
        "scatter_gather": {
            "latency": _distribution(latencies),
            "total_time": sum(latencies),
            "queries": queries,
        },
        "workload": {
            "clients": clients,
            "makespan": workload.makespan,
            "queries_per_second": workload.queries_per_second(),
            "placements": workload.placements(),
            "resource_utilization": {
                name: stats["utilization"]
                for name, stats in workload.resource_stats.items()},
        },
    }


def cluster_matrix(env, device_counts=DEFAULT_DEVICE_COUNTS,
                   query_names=None, partitioner="range", seed=0,
                   clients=4, on_result=None):
    """The scaling sweep: one summary per device count, plus speedups.

    Speedup is the single-device cell's total scatter-gather time (or
    workload makespan) over each cell's own — >1 means the cluster
    helped.  ``on_result(n_devices, summary)`` fires per completed cell.
    """
    cells = {}
    for n_devices in device_counts:
        summary = run_cluster_benchmark(
            env, n_devices, query_names=query_names,
            partitioner=partitioner, seed=seed, clients=clients)
        cells[n_devices] = summary
        if on_result is not None:
            on_result(n_devices, summary)
    baseline = cells.get(1) or cells[min(cells)]
    base_total = baseline["scatter_gather"]["total_time"]
    base_makespan = baseline["workload"]["makespan"]
    for summary in cells.values():
        own_total = summary["scatter_gather"]["total_time"]
        own_makespan = summary["workload"]["makespan"]
        summary["speedup"] = {
            "scatter_gather": (base_total / own_total
                               if own_total > 0 else None),
            "workload": (base_makespan / own_makespan
                         if own_makespan > 0 else None),
        }
    return {
        "partitioner": partitioner,
        "seed": seed,
        "device_counts": list(device_counts),
        "cells": cells,
    }
