"""Concurrent-workload throughput/latency benchmark.

Drives the :class:`~repro.sched.WorkloadScheduler` over a JOB query mix
and summarizes the workload as the standard serving metrics: p50/p95/p99
latency, queries per second, queue waits, placement mix, and
per-resource utilization of the shared kernel.  Everything is seeded and
simulated, so a benchmark summary is a deterministic function of
``(environment, query mix, arrival spec, seed)`` — two runs with the
same inputs serialize to identical JSON, which is what the CI smoke job
checks before uploading ``BENCH_concurrency.json``.
"""

from repro.context import ExecutionContext
from repro.errors import ReproError
from repro.sched import (ClosedLoopArrivals, OpenLoopArrivals,
                         WorkloadScheduler)

#: Default query mix: a spread of JOB joins from 1 to 8 tables so the
#: workload exercises every placement (tiny queries stay host-attractive,
#: big ones want the device and contend for its DRAM budget).
DEFAULT_QUERIES = ["1a", "2a", "3b", "4a", "6a", "8c", "16b", "17e"]


def percentile(values, fraction):
    """Linear-interpolated percentile of ``values`` (fraction in [0,1])."""
    if not values:
        raise ReproError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"percentile fraction {fraction} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def _distribution(values):
    """The summary block reported for a latency-like sample."""
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def run_concurrency_benchmark(env, query_names=None, mode="closed",
                              clients=4, think_time=0.0, stagger=0.0,
                              rate_qps=50.0, repeat=1, seed=0, ctx=None,
                              include_jobs=True):
    """Run one concurrent workload; returns a JSON-ready summary dict.

    ``mode="closed"`` runs ``clients`` closed-loop clients (each submits
    its next query on completion plus ``think_time``); ``mode="open"``
    offers the queries on a Poisson process at ``rate_qps``.  ``repeat``
    replays the query list that many times for a larger sample.  ``seed``
    drives the arrival process (the dataset seed lives in ``env``).
    """
    names = list(query_names or DEFAULT_QUERIES) * max(1, repeat)
    scheduler = WorkloadScheduler(env, ctx=ExecutionContext.coerce(ctx))
    if mode == "closed":
        arrival_spec = {"clients": clients, "think_time": think_time,
                        "stagger": stagger}
        scheduler.submit_closed_loop(
            names, ClosedLoopArrivals(clients=clients,
                                      think_time=think_time,
                                      stagger=stagger, seed=seed))
    elif mode == "open":
        arrival_spec = {"rate_qps": rate_qps}
        scheduler.submit_open_loop(
            names, OpenLoopArrivals(rate_qps=rate_qps, seed=seed))
    else:
        raise ReproError(f"unknown arrival mode {mode!r}; "
                         "expected 'closed' or 'open'")
    result = scheduler.run()
    result.seed = seed

    latencies = result.latencies()
    waits = [job.queue_wait for job in result.completed()]
    summary = {
        "schema_version": 1,
        "mode": mode,
        "seed": seed,
        "arrivals": arrival_spec,
        "query_names": names,
        "queries": len(result.jobs),
        "makespan": result.makespan,
        "queries_per_second": result.queries_per_second(),
        "latency": _distribution(latencies),
        "queue_wait": _distribution(waits),
        "placements": result.placements(),
        "resource_utilization": {
            name: stats["utilization"]
            for name, stats in result.resource_stats.items()},
        "device": {
            "budget_bytes": result.device_budget_bytes,
            "peak_reserved_bytes": result.peak_reserved_bytes,
        },
    }
    if include_jobs:
        summary["jobs"] = [job.to_dict() for job in result.jobs]
    return summary


def concurrency_matrix(env, query_names=None, client_counts=(1, 2, 4, 8),
                       think_time=0.0, repeat=1, seed=0, rate_qps=None,
                       on_result=None):
    """Closed-loop scaling sweep (plus an optional open-loop point).

    Returns ``{"closed": {clients: summary}, "open": summary | None}`` —
    the throughput/latency curve as the client population grows, which
    is where admission control and load-aware placement become visible.
    ``on_result(label, summary)`` fires per completed cell.
    """
    closed = {}
    for clients in client_counts:
        summary = run_concurrency_benchmark(
            env, query_names=query_names, mode="closed", clients=clients,
            think_time=think_time, repeat=repeat, seed=seed,
            include_jobs=False)
        closed[clients] = summary
        if on_result is not None:
            on_result(f"closed/{clients}", summary)
    open_summary = None
    if rate_qps is not None:
        open_summary = run_concurrency_benchmark(
            env, query_names=query_names, mode="open", rate_qps=rate_qps,
            repeat=repeat, seed=seed, include_jobs=False)
        if on_result is not None:
            on_result(f"open/{rate_qps}", open_summary)
    return {"closed": closed, "open": open_summary}
