"""Flash device model with physical placement.

The LSM layer persists SSTs into flash *extents* so the NDP invocation can
ship genuine physical-placement information (address-mapping entries) to
the device, as nKV does.  Timing distinguishes the device-internal read
path (all channels in parallel, no interconnect) from the external path
(host I/O crossing the flash controller and then PCIe), which is the
asymmetry NDP exploits.
"""

from dataclasses import dataclass

from repro.errors import StorageError
from repro.faults import NULL_INJECTOR


@dataclass(frozen=True)
class FlashGeometry:
    """Physical geometry of the flash module."""

    page_size: int = 16 * 1024
    pages_per_block: int = 256
    channels: int = 8
    # Per-channel sustained read bandwidth in bytes/second.  COSMOS+ uses
    # MLC flash in SLC mode; ~330 MB/s per channel is representative.
    channel_read_bandwidth: float = 330e6
    channel_write_bandwidth: float = 180e6
    # Latency to sense and stream out one page on one channel.
    page_read_latency: float = 60e-6
    page_write_latency: float = 250e-6

    def __post_init__(self):
        if self.page_size <= 0 or self.pages_per_block <= 0 or self.channels <= 0:
            raise StorageError("flash geometry values must be positive")

    @property
    def internal_read_bandwidth(self):
        """Aggregate on-device read bandwidth (all channels striped)."""
        return self.channels * self.channel_read_bandwidth

    @property
    def internal_write_bandwidth(self):
        """Aggregate on-device write bandwidth."""
        return self.channels * self.channel_write_bandwidth


@dataclass(frozen=True)
class FlashExtent:
    """A contiguous run of flash pages holding one storage object."""

    start_page: int
    page_count: int
    nbytes: int

    @property
    def end_page(self):
        """First page after the extent."""
        return self.start_page + self.page_count


@dataclass
class _FlashCounters:
    pages_read: int = 0
    pages_written: int = 0
    extents_allocated: int = 0


class FlashDevice:
    """Flash module: allocation, physical placement, and read timing.

    Storage objects (SSTs) call :meth:`allocate` to obtain an extent; the
    extent is the "physical placement" the NDP command carries.  Reads are
    priced against the internal or the external path.
    """

    def __init__(self, geometry=None, capacity_bytes=64 * 1024 * 1024 * 1024,
                 external_read_bandwidth=500e6, fault_injector=None):
        self.geometry = geometry or FlashGeometry()
        if capacity_bytes <= 0:
            raise StorageError("flash capacity must be positive")
        self.capacity_bytes = capacity_bytes
        # Sustained bandwidth the host sees through the flash controller's
        # external interface (before PCIe); consumer COSMOS+-class devices
        # expose far less than the aggregate channel bandwidth.
        self.external_read_bandwidth = external_read_bandwidth
        # Fault injection (repro.faults): read pricing asks the injector
        # for ECC-retry penalties; chaos runs attach one per execution.
        self.fault_injector = fault_injector or NULL_INJECTOR
        self._next_page = 0
        self._extents = {}
        self._counters = _FlashCounters()

    # ------------------------------------------------------------------
    # Allocation / placement
    # ------------------------------------------------------------------
    @property
    def total_pages(self):
        """Total page count of the module."""
        return self.capacity_bytes // self.geometry.page_size

    @property
    def used_pages(self):
        """Pages consumed by live extents (plus dead, pre-GC ones)."""
        return self._next_page

    def pages_for(self, nbytes):
        """Number of pages needed to hold ``nbytes``."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        page = self.geometry.page_size
        return max(1, (nbytes + page - 1) // page)

    def allocate(self, nbytes, owner=None):
        """Allocate a fresh extent of ``nbytes`` and return it."""
        pages = self.pages_for(nbytes)
        if self._next_page + pages > self.total_pages:
            raise StorageError(
                f"flash full: need {pages} pages, "
                f"{self.total_pages - self._next_page} free"
            )
        extent = FlashExtent(self._next_page, pages, nbytes)
        self._next_page += pages
        self._extents[extent.start_page] = owner
        self._counters.extents_allocated += 1
        return extent

    def free(self, extent):
        """Release an extent (no GC model; space is simply forgotten)."""
        self._extents.pop(extent.start_page, None)

    def placement_of(self, extent):
        """Address-mapping entry for an extent, shipped with NDP commands."""
        return {
            "start_page": extent.start_page,
            "page_count": extent.page_count,
            "nbytes": extent.nbytes,
        }

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def internal_read_time(self, nbytes):
        """Seconds for the on-device engine to read ``nbytes`` from flash."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        if nbytes == 0:
            return 0.0
        pages = self.pages_for(nbytes)
        self._counters.pages_read += pages
        geometry = self.geometry
        # Channels are read in parallel; each batch of `channels` pages
        # costs one page latency, and streaming is bandwidth-bound.
        batches = (pages + geometry.channels - 1) // geometry.channels
        latency = batches * geometry.page_read_latency
        stream = nbytes / geometry.internal_read_bandwidth
        if self.fault_injector.enabled:
            latency += self.fault_injector.flash_read_penalty(pages)
        return latency + stream

    def external_read_time(self, nbytes):
        """Seconds to stream ``nbytes`` out of the flash controller to the
        host interface (PCIe transfer is priced separately by the link)."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        if nbytes == 0:
            return 0.0
        pages = self.pages_for(nbytes)
        self._counters.pages_read += pages
        geometry = self.geometry
        # Sensing latency batches over channels exactly as on the internal
        # path — a single random page still pays one full sense latency.
        batches = (pages + geometry.channels - 1) // geometry.channels
        latency = batches * geometry.page_read_latency
        stream = nbytes / self.external_read_bandwidth
        if self.fault_injector.enabled:
            latency += self.fault_injector.flash_read_penalty(pages)
        return latency + stream

    def write_time(self, nbytes):
        """Seconds to program ``nbytes`` (flush/compaction path)."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        if nbytes == 0:
            return 0.0
        pages = self.pages_for(nbytes)
        self._counters.pages_written += pages
        geometry = self.geometry
        batches = (pages + geometry.channels - 1) // geometry.channels
        return (batches * geometry.page_write_latency
                + nbytes / geometry.internal_write_bandwidth)

    @property
    def counters(self):
        """Lifetime device counters (pages read/written, extents)."""
        return self._counters
