"""Smart-storage hardware substrate.

Models the COSMOS+ OpenSSD platform the paper evaluates on (paper §4.2/§5):
flash geometry with distinct internal/external bandwidth, a PCIe link
(``cf_pcie`` in the cost model), a two-core device (core0 relay, core1 NDP),
the device DRAM budget with the paper's buffer reservations, and the
hardware profiler (§3.1) that derives the hardware-model parameters.
"""

from repro.storage.flash import FlashDevice, FlashExtent, FlashGeometry
from repro.storage.interconnect import PCIeLink
from repro.storage.machines import (
    COSMOS_PLUS,
    HOST_I5,
    DeviceSpec,
    HostSpec,
    enterprise_device,
)
from repro.storage.device import BufferReservation, SmartStorageDevice
from repro.storage.profiler import HardwareProfiler, ProfileReport
from repro.storage.topology import PartitionSpec, Topology

__all__ = [
    "FlashDevice",
    "FlashExtent",
    "FlashGeometry",
    "PCIeLink",
    "DeviceSpec",
    "HostSpec",
    "COSMOS_PLUS",
    "HOST_I5",
    "enterprise_device",
    "SmartStorageDevice",
    "BufferReservation",
    "HardwareProfiler",
    "ProfileReport",
    "Topology",
    "PartitionSpec",
]
