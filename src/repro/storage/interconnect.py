"""PCIe interconnect model.

The cost model's ``cf_pcie(hw_IPV, hw_IPL)`` (paper eq. 4/7) prices a block
transfer from its PCIe version and lane count.  We model the physical layer:
per-lane transfer rate, line encoding (8b/10b for gen 1/2, 128b/130b from
gen 3), a protocol-efficiency factor for TLP/DLLP overhead, and a fixed
per-command latency measured by the profiler's handshake probe.
"""

from dataclasses import dataclass

from repro.errors import StorageError

# Per-lane raw rate in gigatransfers/second and line-encoding efficiency.
_PCIE_GENERATIONS = {
    1: (2.5e9, 8.0 / 10.0),
    2: (5.0e9, 8.0 / 10.0),
    3: (8.0e9, 128.0 / 130.0),
    4: (16.0e9, 128.0 / 130.0),
    5: (32.0e9, 128.0 / 130.0),
}

# Fraction of line-rate bandwidth left after TLP/DLLP/flow-control overhead.
_PROTOCOL_EFFICIENCY = 0.80


@dataclass(frozen=True)
class PCIeLink:
    """A PCIe point-to-point link between host and smart storage.

    >>> link = PCIeLink(version=2, lanes=8)
    >>> round(link.bandwidth / 1e9, 2)   # effective bytes/second
    3.2
    """

    version: int = 2
    lanes: int = 8
    command_latency: float = 8e-6  # seconds per command/doorbell round-trip

    def __post_init__(self):
        if self.version not in _PCIE_GENERATIONS:
            raise StorageError(f"unknown PCIe version {self.version}")
        if self.lanes not in (1, 2, 4, 8, 16, 32):
            raise StorageError(f"invalid PCIe lane count {self.lanes}")
        if self.command_latency < 0:
            raise StorageError("command latency must be non-negative")

    @property
    def raw_bandwidth(self):
        """Line-rate payload bandwidth in bytes/second (before protocol)."""
        rate, encoding = _PCIE_GENERATIONS[self.version]
        return rate * encoding * self.lanes / 8.0

    @property
    def bandwidth(self):
        """Effective payload bandwidth in bytes/second."""
        return self.raw_bandwidth * _PROTOCOL_EFFICIENCY

    def transfer_time(self, nbytes, commands=1):
        """Simulated seconds to move ``nbytes`` using ``commands`` commands."""
        if nbytes < 0:
            raise StorageError(f"cannot transfer negative bytes {nbytes}")
        if commands < 0:
            raise StorageError(f"negative command count {commands}")
        return nbytes / self.bandwidth + commands * self.command_latency

    def cost_factor(self):
        """``cf_pcie``: abstract cost per byte (inverse relative bandwidth).

        The cost model works in dimensionless units; we normalise so a
        PCIe 3.0 x16 link has cost-factor 1.0 and slower links cost more.
        """
        reference = PCIeLink(version=3, lanes=16).bandwidth
        return reference / self.bandwidth
