"""GreedyFTL — the flash translation layer of the BLK baseline.

The paper's *block* stack keeps COSMOS+ block-device compatible by
running GreedyFTL with a 1 MB DRAM cache (§5).  An FTL maintains a
logical-to-physical page mapping and performs out-of-place updates:
every logical overwrite invalidates the old physical page, and when free
blocks run low a garbage collection pass picks the block with the most
invalid pages (the *greedy* policy), relocates its live pages, and
erases it.  The resulting write amplification and mapping-cache misses
are the physical justification for the BLK stack's I/O overhead factor
in the timing model.
"""

from dataclasses import dataclass

from repro.errors import StorageError
from repro.lsm.cache import BlockCache


@dataclass
class FTLStats:
    """Lifetime counters of one FTL instance."""

    logical_writes: int = 0
    physical_writes: int = 0
    gc_runs: int = 0
    pages_relocated: int = 0
    blocks_erased: int = 0
    map_hits: int = 0
    map_misses: int = 0

    @property
    def write_amplification(self):
        """physical/logical page writes (>= 1.0 once GC kicks in)."""
        if self.logical_writes == 0:
            return 1.0
        return self.physical_writes / self.logical_writes


class GreedyFTL:
    """A page-mapping FTL with greedy garbage collection."""

    def __init__(self, blocks=64, pages_per_block=64,
                 map_cache_bytes=1024 * 1024, map_entry_bytes=8,
                 gc_low_watermark=2):
        if blocks < 4 or pages_per_block < 1:
            raise StorageError("FTL geometry too small")
        self.blocks = blocks
        self.pages_per_block = pages_per_block
        self._gc_low_watermark = gc_low_watermark
        # block -> list of lpn (or None for invalid/free slot)
        self._block_pages = [[None] * pages_per_block
                             for _ in range(blocks)]
        self._valid_count = [0] * blocks
        self._free_blocks = list(range(blocks))
        self._active_block = self._free_blocks.pop()
        self._active_slot = 0
        self._mapping = {}            # lpn -> (block, slot)
        self._map_cache = BlockCache(map_cache_bytes)
        self._map_entry_bytes = map_entry_bytes
        self.stats = FTLStats()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def total_pages(self):
        """Physical page count."""
        return self.blocks * self.pages_per_block

    @property
    def user_capacity_pages(self):
        """Pages a user may address (keeps GC headroom)."""
        return (self.blocks - self._gc_low_watermark
                - 1) * self.pages_per_block

    def free_pages(self):
        """Unwritten physical pages (active block + free blocks)."""
        active_free = self.pages_per_block - self._active_slot
        return active_free + len(self._free_blocks) * self.pages_per_block

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _map_lookup(self, lpn):
        hit = self._map_cache.access(("map", lpn), self._map_entry_bytes)
        if hit:
            self.stats.map_hits += 1
        else:
            self.stats.map_misses += 1
        return self._mapping.get(lpn)

    def read(self, lpn):
        """Translate one logical page read; returns the physical slot."""
        location = self._map_lookup(lpn)
        if location is None:
            raise StorageError(f"read of unwritten logical page {lpn}")
        return location

    def write(self, lpn):
        """Out-of-place write of one logical page."""
        if lpn < 0:
            raise StorageError("negative logical page")
        if (lpn not in self._mapping
                and len(self._mapping) >= self.user_capacity_pages):
            raise StorageError("FTL user capacity exceeded")
        self.stats.logical_writes += 1
        self._map_lookup(lpn)
        previous = self._mapping.get(lpn)
        if previous is not None:
            block, slot = previous
            self._block_pages[block][slot] = None
            self._valid_count[block] -= 1
        self._program(lpn)
        if len(self._free_blocks) < self._gc_low_watermark:
            self._garbage_collect()

    def _program(self, lpn):
        if self._active_slot >= self.pages_per_block:
            if not self._free_blocks:
                self._garbage_collect()
            self._active_block = self._free_blocks.pop()
            self._active_slot = 0
        block, slot = self._active_block, self._active_slot
        self._block_pages[block][slot] = lpn
        self._valid_count[block] += 1
        self._mapping[lpn] = (block, slot)
        self._active_slot += 1
        self.stats.physical_writes += 1

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def _garbage_collect(self):
        victim = self._pick_victim()
        if victim is None:
            raise StorageError("FTL is full: no GC victim available")
        self.stats.gc_runs += 1
        for slot, lpn in enumerate(self._block_pages[victim]):
            if lpn is None:
                continue
            # Relocate the live page into the active block.
            self._block_pages[victim][slot] = None
            self._valid_count[victim] -= 1
            self._program(lpn)
            self.stats.pages_relocated += 1
        self._block_pages[victim] = [None] * self.pages_per_block
        self._valid_count[victim] = 0
        self._free_blocks.insert(0, victim)
        self.stats.blocks_erased += 1

    def _pick_victim(self):
        """Greedy policy: the non-active block with fewest valid pages."""
        best = None
        best_valid = None
        for block in range(self.blocks):
            if block == self._active_block or block in self._free_blocks:
                continue
            valid = self._valid_count[block]
            if best is None or valid < best_valid:
                best, best_valid = block, valid
        if best is not None and best_valid >= self.pages_per_block:
            return None    # nothing reclaimable
        return best

    def check_invariants(self):
        """Mapping and per-block valid counts must be consistent."""
        seen = {}
        for block, pages in enumerate(self._block_pages):
            valid = sum(1 for lpn in pages if lpn is not None)
            if valid != self._valid_count[block]:
                raise StorageError(f"block {block} valid-count drift")
            for slot, lpn in enumerate(pages):
                if lpn is None:
                    continue
                if lpn in seen:
                    raise StorageError(f"logical page {lpn} mapped twice")
                seen[lpn] = (block, slot)
        if seen != self._mapping:
            raise StorageError("mapping table out of sync")
        return True
