"""Hardware profiling micro-benchmark (paper §3.1).

Before DBMS startup, an on-device micro-benchmark measures the basic
characteristics of the smart storage and the host; the results become the
hardware-model parameter values in the DBMS parameter file.  The paper
probes CPU/memory with memcpy runs over various buffer sizes and floating
point kernels, flash with a random read/write mix, and the interconnect
with handshake transfers of different sizes.

Here the probes run against the device *model* rather than silicon: each
probe asks the model how long the physical operation takes and reports the
derived rates, mirroring the paper's information flow (profiler output ->
parameter file -> cost model).
"""

import math
from dataclasses import dataclass, field

from repro.errors import StorageError

_MEMCPY_BUFFER_SIZES = [4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024]
_HANDSHAKE_SIZES = [512, 4 * 1024, 64 * 1024, 1024 * 1024, 8 * 1024 * 1024]
_FLASH_PROBE_PAGES = 512
_FLOPS_PROBE_OPS = 100_000


@dataclass
class ProfileReport:
    """Raw measurements produced by one profiler run."""

    device_name: str
    host_name: str
    # CPU / memory
    device_memcpy_bandwidth: float = 0.0      # bytes/s
    host_memcpy_bandwidth: float = 0.0        # bytes/s
    device_eval_ops_per_second: float = 0.0
    device_streaming_ops_per_second: float = 0.0   # FPGA scan units
    device_index_ops_per_second: float = 0.0       # DRAM-bound seeks
    host_eval_ops_per_second: float = 0.0
    device_clock_hz: float = 0.0
    host_clock_hz: float = 0.0
    device_cores: int = 0
    host_cores: int = 0
    # Flash
    device_flash_page_rate: float = 0.0       # pages/s, internal path
    host_flash_page_rate: float = 0.0         # pages/s, external path
    flash_page_size: int = 0
    # Memory sizes
    host_memory_bytes: int = 0
    device_memory_bytes: int = 0
    device_selection_buffer_bytes: int = 0
    device_join_buffer_bytes: int = 0
    # Interconnect
    pcie_version: int = 0
    pcie_lanes: int = 0
    pcie_bandwidth: float = 0.0               # bytes/s, measured
    pcie_command_latency: float = 0.0         # seconds, measured
    probes: dict = field(default_factory=dict)

    @property
    def compute_gap(self):
        """Host/device record-evaluation throughput ratio (~31x on COSMOS+)."""
        if self.device_eval_ops_per_second <= 0:
            return math.inf
        return self.host_eval_ops_per_second / self.device_eval_ops_per_second


class HardwareProfiler:
    """Runs the §3.1 micro-benchmark against a device + host model."""

    def __init__(self, device, host_spec):
        if device is None or host_spec is None:
            raise StorageError("profiler needs a device and a host spec")
        self._device = device
        self._host = host_spec

    def run(self):
        """Execute all probes and return a :class:`ProfileReport`."""
        device, host = self._device, self._host
        report = ProfileReport(device_name=device.spec.name,
                               host_name=host.name)
        probes = report.probes

        probes["memcpy_device"] = self._memcpy_probe(
            device.spec.memcpy_bandwidth)
        probes["memcpy_host"] = self._memcpy_probe(host.memcpy_bandwidth)
        report.device_memcpy_bandwidth = probes["memcpy_device"]["bandwidth"]
        report.host_memcpy_bandwidth = probes["memcpy_host"]["bandwidth"]

        probes["flops_device"] = self._flops_probe(
            device.spec.eval_ops_per_second)
        probes["flops_host"] = self._flops_probe(host.eval_ops_per_second)
        report.device_eval_ops_per_second = probes["flops_device"]["rate"]
        report.host_eval_ops_per_second = probes["flops_host"]["rate"]
        # Streaming-filter and pointer-chase probes characterise the
        # FPGA scan units and the DRAM-bound index path respectively.
        probes["stream_device"] = self._flops_probe(
            device.spec.eval_ops_per_second
            * device.spec.streaming_eval_boost)
        probes["chase_device"] = self._flops_probe(
            device.spec.eval_ops_per_second * device.spec.index_op_boost)
        report.device_streaming_ops_per_second = (
            probes["stream_device"]["rate"])
        report.device_index_ops_per_second = probes["chase_device"]["rate"]

        report.device_clock_hz = device.spec.clock_hz
        report.host_clock_hz = host.clock_hz
        report.device_cores = device.spec.ndp_cores
        report.host_cores = host.cores

        probes["flash_internal"] = self._flash_probe(
            device.flash.internal_read_time)
        probes["flash_external"] = self._flash_probe(
            device.flash.external_read_time)
        report.device_flash_page_rate = probes["flash_internal"]["page_rate"]
        report.host_flash_page_rate = probes["flash_external"]["page_rate"]
        report.flash_page_size = device.flash.geometry.page_size

        report.host_memory_bytes = host.memory_bytes
        report.device_memory_bytes = device.spec.dram_bytes
        report.device_selection_buffer_bytes = (
            device.spec.selection_buffer_bytes)
        report.device_join_buffer_bytes = device.spec.join_buffer_bytes

        probes["handshake"] = self._handshake_probe(device.link)
        report.pcie_version = device.link.version
        report.pcie_lanes = device.link.lanes
        report.pcie_bandwidth = probes["handshake"]["bandwidth"]
        report.pcie_command_latency = probes["handshake"]["latency"]
        return report

    # ------------------------------------------------------------------
    # Individual probes
    # ------------------------------------------------------------------
    @staticmethod
    def _memcpy_probe(bandwidth):
        """memcpy runs over increasing buffers; reports sustained rate."""
        samples = {}
        for size in _MEMCPY_BUFFER_SIZES:
            samples[size] = size / bandwidth
        total_bytes = sum(_MEMCPY_BUFFER_SIZES)
        total_time = sum(samples.values())
        return {"samples": samples, "bandwidth": total_bytes / total_time}

    @staticmethod
    def _flops_probe(rate):
        """A fixed floating-point kernel; reports operations/second."""
        elapsed = _FLOPS_PROBE_OPS / rate
        return {"ops": _FLOPS_PROBE_OPS, "elapsed": elapsed,
                "rate": _FLOPS_PROBE_OPS / elapsed}

    def _flash_probe(self, read_time_fn):
        """Random-read mix over the flash; reports a page rate."""
        page = self._device.flash.geometry.page_size
        elapsed = read_time_fn(_FLASH_PROBE_PAGES * page)
        return {"pages": _FLASH_PROBE_PAGES, "elapsed": elapsed,
                "page_rate": _FLASH_PROBE_PAGES / elapsed}

    @staticmethod
    def _handshake_probe(link):
        """Handshake transfers of different sizes.

        A linear fit over (size, time) separates fixed command latency
        from per-byte cost, exactly what a real handshake probe extracts.
        """
        samples = {size: link.transfer_time(size) for size in _HANDSHAKE_SIZES}
        sizes = list(samples)
        times = [samples[s] for s in sizes]
        n = len(sizes)
        mean_x = sum(sizes) / n
        mean_y = sum(times) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(sizes, times))
        var = sum((x - mean_x) ** 2 for x in sizes)
        per_byte = cov / var
        latency = mean_y - per_byte * mean_x
        return {"samples": samples, "bandwidth": 1.0 / per_byte,
                "latency": max(0.0, latency)}
