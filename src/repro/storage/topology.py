"""Machine topology: the one entry point for host/device wiring.

Every experiment used to hand-wire ``SmartStorageDevice(spec=, flash=,
link=, ndp_mode=)`` next to a ``HostSpec`` pick; :class:`Topology` makes
the machine layout a first-class value instead.  ``Topology.single()``
is the paper's machine — one host, one COSMOS+ class smart SSD.
``Topology.cluster(n)`` is the scale-out layout ``repro.cluster``
consumes: ``n`` devices over mirrored storage, each with its own PCIe
link and NDP core, all attached to one host (docs/cluster.md).

The devices of a cluster share one :class:`~repro.storage.flash.FlashDevice`
(mirrored storage): each device is *responsible* for scanning its
partition of every table but can probe the full data set locally, which
is what makes partition-local joins exact (no cross-partition matches
are ever missed — see the merge-correctness argument in docs/cluster.md).
"""

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.storage.device import SmartStorageDevice
from repro.storage.flash import FlashDevice
from repro.storage.interconnect import PCIeLink
from repro.storage.machines import COSMOS_PLUS, DEFAULT_LINK, HOST_I5


@dataclass(frozen=True)
class PartitionSpec:
    """How a cluster topology splits tables across its devices.

    ``kind`` is ``"hash"`` or ``"range"``; ``seed`` feeds the hash
    function so partition assignment is deterministic per (seed, table,
    key).  The fitted :class:`~repro.cluster.Partitioner` is built from
    this spec once the catalog's key space is known.
    """

    kind: str = "range"
    seed: int = 0

    def __post_init__(self):
        if self.kind not in ("hash", "range"):
            raise ReproError(
                f"unknown partitioner kind {self.kind!r}; "
                f"expected 'hash' or 'range'")


@dataclass(frozen=True)
class Topology:
    """One host plus one or more smart-storage devices.

    Construct through :meth:`single` or :meth:`cluster`; ad-hoc
    ``SmartStorageDevice(...)`` wiring outside device unit tests should
    go through here so every layer agrees on specs, links and flash.
    """

    host: object                       # HostSpec
    devices: tuple                     # SmartStorageDevice per slot
    #: Partitioning spec for clusters; None for single-device layouts.
    partitioning: PartitionSpec = None
    flash: object = field(default=None, compare=False)

    def __post_init__(self):
        if not self.devices:
            raise ReproError("a topology needs at least one device")

    @classmethod
    def single(cls, device_spec=None, host_spec=None, flash=None,
               link=None, ndp_mode=True):
        """The paper's machine: one host, one smart SSD."""
        flash = flash if flash is not None else FlashDevice()
        device = SmartStorageDevice(spec=device_spec or COSMOS_PLUS,
                                    flash=flash,
                                    link=link or DEFAULT_LINK or PCIeLink(),
                                    ndp_mode=ndp_mode)
        return cls(host=host_spec or HOST_I5, devices=(device,),
                   flash=flash)

    @classmethod
    def cluster(cls, n_devices, partitioner=None, device_spec=None,
                host_spec=None, flash=None, link=None, device_specs=None,
                links=None):
        """A scale-out layout: ``n_devices`` smart SSDs on one host.

        All devices mirror one flash store and get their *own* PCIe link
        and NDP core (and DRAM budget); ``partitioner`` is a
        :class:`PartitionSpec` (or ``"hash"``/``"range"`` shorthand)
        naming how scan responsibility is split across them.

        Clusters may be *heterogeneous*: ``device_specs`` / ``links`` are
        per-slot override sequences (length ``n_devices``; ``None``
        entries fall back to ``device_spec`` / ``link``), so a layout can
        mix PCIe generations, core speeds and DRAM budgets — the
        straggler-mitigation scenarios in docs/robustness.md are built on
        this.
        """
        if n_devices < 1:
            raise ReproError("a cluster needs at least one device")
        if partitioner is None:
            partitioner = PartitionSpec()
        elif isinstance(partitioner, str):
            partitioner = PartitionSpec(kind=partitioner)
        for name, overrides in (("device_specs", device_specs),
                                ("links", links)):
            if overrides is not None and len(overrides) != n_devices:
                raise ReproError(
                    f"{name} has {len(overrides)} entries for "
                    f"{n_devices} devices")
        flash = flash if flash is not None else FlashDevice()
        link = link or DEFAULT_LINK or PCIeLink()
        base_spec = device_spec or COSMOS_PLUS
        devices = tuple(
            SmartStorageDevice(
                spec=(device_specs[i] if device_specs is not None
                      and device_specs[i] is not None else base_spec),
                flash=flash,
                link=(links[i] if links is not None
                      and links[i] is not None else link),
                ndp_mode=True)
            for i in range(n_devices))
        return cls(host=host_spec or HOST_I5, devices=devices,
                   partitioning=partitioner, flash=flash)

    @property
    def n_devices(self):
        """How many devices the topology has."""
        return len(self.devices)

    @property
    def device(self):
        """The device of a single-device topology."""
        if len(self.devices) != 1:
            raise ReproError(
                f"topology has {len(self.devices)} devices; "
                f"index into .devices instead of using .device")
        return self.devices[0]
