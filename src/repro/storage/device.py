"""The smart-storage device: flash + interconnect + compute + DRAM budget.

:class:`SmartStorageDevice` is what the execution engines talk to.  It
enforces the paper's buffer policy (17 MB per selection through a primary
index, 17 MB per secondary index, 7 MB per BNL/BNLI join) against the
~400 MB NDP budget, which caps pipelines at ~12 tables with secondary
indices / ~17 without (§5).
"""

import itertools
from dataclasses import dataclass, field

from repro.errors import DeviceOverloadError, StorageError
from repro.storage.flash import FlashDevice
from repro.storage.interconnect import PCIeLink
from repro.storage.machines import COSMOS_PLUS, DEFAULT_LINK


@dataclass(frozen=True)
class BufferReservation:
    """Buffers reserved on the device for one NDP pipeline.

    ``token`` identifies the reservation on its device — two pipelines
    with the same operator shape are *equal* as frozen dataclasses, so
    release bookkeeping must never rely on equality (it once did, and a
    double release silently corrupted the reserved-byte accounting).
    The token is excluded from equality so shape comparison still works.
    """

    selections: int
    secondary_indexes: int
    joins: int
    group_bys: int
    total_bytes: int
    token: int = field(default=0, compare=False)

    def describe(self):
        """Human-readable reservation summary."""
        return (
            f"{self.selections} selection(s), "
            f"{self.secondary_indexes} secondary-index selection(s), "
            f"{self.joins} join(s), {self.group_bys} group-by(s) "
            f"= {self.total_bytes / (1024 * 1024):.1f} MB"
        )


class SmartStorageDevice:
    """A smart SSD in NDP mode.

    Combines the flash module, the PCIe link and the compute/DRAM spec,
    and owns the buffer bookkeeping for concurrently offloaded pipelines.
    """

    def __init__(self, spec=None, flash=None, link=None, ndp_mode=True):
        self.spec = spec or COSMOS_PLUS
        self.flash = flash or FlashDevice()
        self.link = link or DEFAULT_LINK or PCIeLink()
        self.ndp_mode = ndp_mode
        self._reserved_bytes = 0
        self._tokens = itertools.count(1)
        self._active_reservations = {}    # token -> BufferReservation

    # ------------------------------------------------------------------
    # Buffer policy (paper §5)
    # ------------------------------------------------------------------
    @property
    def buffer_budget(self):
        """Total bytes available for NDP pipeline buffers."""
        return self.spec.ndp_buffer_budget

    @property
    def reserved_bytes(self):
        """Bytes currently reserved by active pipelines."""
        return self._reserved_bytes

    @property
    def available_bytes(self):
        """Bytes still free in the NDP buffer budget."""
        return self.buffer_budget - self._reserved_bytes

    def pipeline_cost_bytes(self, selections, secondary_indexes=0, joins=0,
                            group_bys=0):
        """Buffer bytes one pipeline with the given operator mix needs."""
        if min(selections, secondary_indexes, joins, group_bys) < 0:
            raise StorageError("operator counts must be non-negative")
        spec = self.spec
        return (selections * spec.selection_buffer_bytes
                + secondary_indexes * spec.secondary_index_buffer_bytes
                + joins * spec.join_buffer_bytes
                + group_bys * spec.join_buffer_bytes)

    def can_host_pipeline(self, selections, secondary_indexes=0, joins=0,
                          group_bys=0):
        """Whether a pipeline of this shape fits the remaining budget."""
        needed = self.pipeline_cost_bytes(
            selections, secondary_indexes, joins, group_bys)
        return needed <= self.available_bytes

    def reserve_pipeline(self, selections, secondary_indexes=0, joins=0,
                         group_bys=0):
        """Reserve buffers for a pipeline; raises on overload."""
        needed = self.pipeline_cost_bytes(
            selections, secondary_indexes, joins, group_bys)
        if needed > self.available_bytes:
            raise DeviceOverloadError(
                f"NDP pipeline needs {needed / (1024 * 1024):.1f} MB but only "
                f"{self.available_bytes / (1024 * 1024):.1f} MB are free on "
                f"{self.spec.name}"
            )
        reservation = BufferReservation(
            selections=selections,
            secondary_indexes=secondary_indexes,
            joins=joins,
            group_bys=group_bys,
            total_bytes=needed,
            token=next(self._tokens),
        )
        self._reserved_bytes += needed
        self._active_reservations[reservation.token] = reservation
        return reservation

    def release_pipeline(self, reservation):
        """Release a previously reserved pipeline.

        Reservations are tracked by identity (their device-issued
        token), not dataclass equality: releasing twice, or releasing a
        reservation issued by another device, fails loudly instead of
        corrupting the budget.
        """
        active = self._active_reservations.get(reservation.token)
        if active is not reservation:
            raise StorageError(
                "reservation is not active on this device "
                "(double release, or a foreign device's reservation)")
        del self._active_reservations[reservation.token]
        self._reserved_bytes -= reservation.total_bytes
        if self._reserved_bytes < 0:
            raise StorageError(
                f"reservation accounting went negative "
                f"({self._reserved_bytes} bytes) — release/reserve mismatch")

    def max_tables(self, with_secondary_index):
        """Upper bound on tables one pipeline can process (paper: 12/17).

        With secondary indexes the 17 MB secondary selection buffer
        dominates the 7 MB join buffer per table; without them each table
        costs a primary selection plus a join buffer.
        """
        spec = self.spec
        if with_secondary_index:
            per_table = (spec.selection_buffer_bytes
                         + spec.secondary_index_buffer_bytes)
        else:
            per_table = spec.selection_buffer_bytes + spec.join_buffer_bytes
        return int(self.buffer_budget // per_table)

    # ------------------------------------------------------------------
    # Timing shortcuts used by the engines
    # ------------------------------------------------------------------
    def read_internal(self, nbytes):
        """Seconds for the NDP engine to pull ``nbytes`` off flash."""
        return self.flash.internal_read_time(nbytes)

    def read_external(self, nbytes, commands=1):
        """Seconds for the host to read ``nbytes`` via NVMe over PCIe."""
        flash_time = self.flash.external_read_time(nbytes)
        link_time = self.link.transfer_time(nbytes, commands=commands)
        # Flash streaming and PCIe transfer pipeline; the slower dominates,
        # plus command latency.
        return max(flash_time, link_time)

    def transfer_results(self, nbytes, commands=1):
        """Seconds to ship NDP result bytes device->host."""
        return self.link.transfer_time(nbytes, commands=commands)

    def __repr__(self):
        return (
            f"SmartStorageDevice(spec={self.spec.name!r}, "
            f"ndp_mode={self.ndp_mode}, "
            f"reserved={self._reserved_bytes / (1024 * 1024):.1f}MB)"
        )
