"""Machine specifications for the host and the smart-storage device.

Defaults mirror the paper's testbed (§5): a 4-core 3.4 GHz Intel i5 host
with 4 GB RAM, and a COSMOS+ board with two ARM A9 cores at 667 MHz and
1 GB DRAM attached over PCIe 2.0 x8.  The CoreMark scores (92343 vs 2964
iterations/s) fix the ~31x compute gap the cost model must respect.
"""

from dataclasses import dataclass, replace

from repro.errors import StorageError
from repro.storage.flash import FlashGeometry
from repro.storage.interconnect import PCIeLink

# CoreMark iterations/second measured in the paper (§5, single core used
# for NDP).  We convert iterations to "record-operations" with a fixed
# scale so absolute simulated times are in a plausible range.
_OPS_PER_COREMARK_ITERATION = 420.0


@dataclass(frozen=True)
class HostSpec:
    """Host machine description."""

    name: str = "intel-i5-host"
    cores: int = 4
    clock_hz: float = 3.4e9
    memory_bytes: int = 4 * 1024 * 1024 * 1024
    l3_cache_bytes: int = 6 * 1024 * 1024
    coremark: float = 92343.0
    memcpy_bandwidth: float = 8.0e9      # bytes/s, single stream
    # Flash "clock frequency" abstraction used by the HW model: the rate at
    # which the host-side stack can issue page requests (host_hw_FCF).
    flash_clock_hz: float = 50e3

    def __post_init__(self):
        if self.cores <= 0 or self.clock_hz <= 0 or self.coremark <= 0:
            raise StorageError("host spec values must be positive")

    @property
    def eval_ops_per_second(self):
        """Record-evaluation throughput of one host core."""
        return self.coremark * _OPS_PER_COREMARK_ITERATION


@dataclass(frozen=True)
class DeviceSpec:
    """Smart-storage device description (compute side)."""

    name: str = "cosmos-plus"
    cores: int = 2                      # core0 = relay/IO, core1 = NDP
    ndp_cores: int = 1
    clock_hz: float = 667e6
    dram_bytes: int = 1 * 1024 * 1024 * 1024
    coremark: float = 2964.0
    memcpy_bandwidth: float = 0.6e9     # bytes/s, ARM A9 class
    flash_clock_hz: float = 160e3       # ndp_hw_FCF: on-device page rate
    # The COSMOS+ NDP engine places SCANs/SELECTIONs on FPGA streaming
    # units (paper §2.1), so simple per-record filtering runs near flash
    # line rate; the ARM core only pays the CoreMark-gap price for random
    # and stateful work (seeks, hash probes, joins, aggregation).
    streaming_eval_boost: float = 32.0   # x over the ARM record rate
    streaming_memcmp_bandwidth: float = 2.0e9   # bytes/s, FPGA compare
    # Index navigation (key compares, block seeks) is memory-latency
    # bound rather than CoreMark-compute bound; the on-device gap for it
    # is the DRAM-system gap, not the 31x compute gap.  This is what
    # makes on-device BNLJI joins competitive with the host (paper
    # Exp 5 / Fig 15).
    index_op_boost: float = 12.0         # x over the ARM record rate
    # Paper §5 memory reservations on the 1 GB device DRAM.
    system_reserved_bytes: int = 20 * 1024 * 1024
    temp_storage_bytes: int = 520 * 1024 * 1024
    nkv_reserved_bytes: int = 100 * 1024 * 1024
    # Paper §5 buffer policy for NDP pipelines.
    selection_buffer_bytes: int = 17 * 1024 * 1024
    secondary_index_buffer_bytes: int = 17 * 1024 * 1024
    join_buffer_bytes: int = 7 * 1024 * 1024
    shared_buffer_slots: int = 4
    shared_buffer_slot_bytes: int = 1 * 1024 * 1024

    def __post_init__(self):
        if self.cores <= 0 or self.ndp_cores <= 0:
            raise StorageError("device must have at least one core")
        if self.ndp_cores >= self.cores:
            raise StorageError("one device core must remain for IO relay")
        if self.coremark <= 0 or self.clock_hz <= 0:
            raise StorageError("device spec values must be positive")

    @property
    def eval_ops_per_second(self):
        """Record-evaluation throughput of the single NDP core."""
        return self.coremark * _OPS_PER_COREMARK_ITERATION

    @property
    def ndp_buffer_budget(self):
        """DRAM available for NDP pipeline buffers (~400 MB on COSMOS+)."""
        reserved = (self.system_reserved_bytes + self.nkv_reserved_bytes
                    + self.shared_buffer_slots * self.shared_buffer_slot_bytes)
        free_temp = self.temp_storage_bytes - (
            self.shared_buffer_slots * self.shared_buffer_slot_bytes)
        del reserved  # reservations are carved from temp storage
        # block/index buffers take ~100 MB of temp storage in nKV.
        return free_temp - 100 * 1024 * 1024


#: Default testbed profiles (paper §5).
HOST_I5 = HostSpec()
COSMOS_PLUS = DeviceSpec()

#: Default interconnect and flash of the testbed.
DEFAULT_LINK = PCIeLink(version=2, lanes=8)
DEFAULT_FLASH_GEOMETRY = FlashGeometry()


def enterprise_device():
    """An enterprise-class smart-storage profile (paper §7).

    16 cores at a server-class clock, 16 GB DRAM — used by the ablation
    benchmarks to show how the split decision shifts with device strength.
    """
    return replace(
        COSMOS_PLUS,
        name="enterprise-smartssd",
        cores=17,
        ndp_cores=16,
        clock_hz=2.0e9,
        coremark=2964.0 * 48,   # ~16 cores x 3x per-core uplift
        dram_bytes=16 * 1024 * 1024 * 1024,
        temp_storage_bytes=8 * 1024 * 1024 * 1024,
        memcpy_bandwidth=6.0e9,
    )
