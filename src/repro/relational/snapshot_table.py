"""Snapshot-consistent table reads for on-device execution.

The NDP engine must not read the live LSM trees: nKV's update-aware NDP
(§2.1) pins the database state at invocation time via the shared-state
snapshot.  :class:`SnapshotTable` mirrors the read API of
:class:`~repro.relational.table.RelationalTable` but resolves every
access through :class:`~repro.lsm.snapshot.SnapshotView`s, so host
writes issued after the NDP command was prepared are invisible to the
device — and unflushed MemTable updates shipped with the command are
visible.
"""

from repro.errors import CatalogError
from repro.lsm.store import ReadStats
from repro.relational.encoding import encode_key, split_composite_key
from repro.relational.scan import check_scan_args, run_scan_batch
from repro.relational.schema import DataType


class SnapshotTable:
    """Read-only view of one table pinned to a shared-state snapshot."""

    def __init__(self, table, shared_state, use_bloom_filters=False):
        self.schema = table.schema
        self.codec = table.codec
        self.statistics = table.statistics
        self._table = table
        self._primary = shared_state.view(
            table.family.name, use_bloom_filters=use_bloom_filters)
        self._indexes = {}
        for column_name, index in table.indexes.items():
            try:
                self._indexes[column_name] = (
                    index.column,
                    shared_state.view(
                        index.name, use_bloom_filters=use_bloom_filters))
            except KeyError:
                continue   # index CF not captured -> not usable on device

    @property
    def name(self):
        """Table name."""
        return self.schema.name

    # ------------------------------------------------------------------
    # Read API (mirrors RelationalTable)
    # ------------------------------------------------------------------
    def _decoder(self, columns, qualified_as):
        if columns is None and qualified_as is None:
            return self.codec.decode
        names = columns if columns is not None else self.schema.column_names
        return self.codec.projector(names, qualified_prefix=qualified_as)

    def get_by_pk(self, pk_value, stats=None, columns=None,
                  qualified_as=None):
        """Point lookup by primary key against the snapshot."""
        raw = self._primary.get(encode_key(pk_value), stats=stats)
        if raw is None:
            return None
        return self._decoder(columns, qualified_as)(raw)

    def get_by_pk_raw(self, raw_key, stats=None, columns=None,
                      qualified_as=None):
        """Point lookup by encoded primary key."""
        raw = self._primary.get(raw_key, stats=stats)
        if raw is None:
            return None
        return self._decoder(columns, qualified_as)(raw)

    def scan(self, request=None, **kwargs):
        """Full or PK-range scan over the snapshot.

        Takes one :class:`~repro.relational.scan.ScanRequest`, exactly
        like :meth:`RelationalTable.scan`.
        """
        request = check_scan_args("SnapshotTable.scan", request, kwargs)
        return self._scan_rows(request)

    def _scan_rows(self, request):
        stats = request.stats if request.stats is not None else ReadStats()
        lo = None if request.pk_lo is None else encode_key(request.pk_lo)
        hi = None if request.pk_hi is None else encode_key(request.pk_hi + 1)
        decode = self._decoder(request.columns, request.qualified_as)
        for _key, raw in self._primary.scan(lo=lo, hi=hi, stats=stats):
            row = decode(raw)
            if request.predicate is not None and not request.predicate(row):
                continue
            if request.projection is not None:
                row = {name: row.get(name) for name in request.projection}
            yield row

    def scan_batch(self, request=None, **kwargs):
        """Vectorized snapshot scan into a ColumnBatch (see
        :meth:`RelationalTable.scan_batch`)."""
        request = check_scan_args("SnapshotTable.scan_batch", request,
                                  kwargs)
        return run_scan_batch(
            self.codec, self.schema,
            lambda lo, hi, stats: self._primary.scan(lo=lo, hi=hi,
                                                     stats=stats),
            request, "SnapshotTable.scan_batch")

    def scan_raw(self, request=None, **kwargs):
        """Snapshot scan yielding undecoded record bytes."""
        request = check_scan_args("SnapshotTable.scan_raw", request, kwargs)
        return self._scan_raw(request)

    def _scan_raw(self, request):
        stats = request.stats if request.stats is not None else ReadStats()
        lo = None if request.pk_lo is None else encode_key(request.pk_lo)
        hi = None if request.pk_hi is None else encode_key(request.pk_hi + 1)
        for _key, raw in self._primary.scan(lo=lo, hi=hi, stats=stats):
            yield raw

    def get_record(self, pk_value, stats=None):
        """Undecoded record bytes for one primary key, or None."""
        return self._primary.get(encode_key(pk_value), stats=stats)

    def index_lookup(self, column_name, value, stats=None, columns=None,
                     qualified_as=None):
        """Secondary-index lookup through the snapshot (paper Fig 9).

        The secondary LSM view yields primary keys, which are then
        sought in the primary snapshot view — the on-device
        secondary-index flow.
        """
        try:
            column, view = self._indexes[column_name]
        except KeyError:
            raise CatalogError(
                f"{self.name}: no snapshotted index on {column_name!r}"
            ) from None
        stats = stats if stats is not None else ReadStats()
        width = column.width if column.dtype is DataType.CHAR else None
        prefix = encode_key(value, width)
        hi = prefix + b"\xff" * 9
        decode = self._decoder(columns, qualified_as)
        for key, _empty in view.scan(lo=prefix, hi=hi, stats=stats):
            secondary_raw, primary_raw = split_composite_key(key)
            if secondary_raw != prefix:
                continue
            raw = self._primary.get(primary_raw, stats=stats)
            if raw is not None:
                yield decode(raw)

    def index_lookup_raw(self, column_name, value, stats=None):
        """Undecoded record bytes via the snapshotted secondary index.

        Same LSM access order (secondary view walk, then primary seeks)
        as :meth:`index_lookup` — only decoding is deferred.
        """
        try:
            column, view = self._indexes[column_name]
        except KeyError:
            raise CatalogError(
                f"{self.name}: no snapshotted index on {column_name!r}"
            ) from None
        stats = stats if stats is not None else ReadStats()
        width = column.width if column.dtype is DataType.CHAR else None
        prefix = encode_key(value, width)
        hi = prefix + b"\xff" * 9
        for key, _empty in view.scan(lo=prefix, hi=hi, stats=stats):
            secondary_raw, primary_raw = split_composite_key(key)
            if secondary_raw != prefix:
                continue
            raw = self._primary.get(primary_raw, stats=stats)
            if raw is not None:
                yield raw

    def has_index_on(self, column_name):
        """Whether the snapshot carries an index on the column."""
        return (column_name == self.schema.primary_key
                or column_name in self._indexes)


class SnapshotCatalog:
    """Catalog facade resolving tables to snapshot views.

    The device pipeline only touches the tables named by its command;
    resolving anything else is an error (the command did not ship state
    for it — execution would not be intervention-free).
    """

    def __init__(self, catalog, shared_state, table_names,
                 use_bloom_filters=False):
        self._tables = {}
        for name in table_names:
            self._tables[name] = SnapshotTable(
                catalog.table(name), shared_state,
                use_bloom_filters=use_bloom_filters)

    def table(self, name):
        """Resolve a snapshotted table."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"table {name!r} is not part of the NDP command's "
                f"shared state") from None
