"""The catalog: all tables of one database instance."""

from repro.errors import CatalogError
from repro.relational.table import RelationalTable


class Catalog:
    """Creates and resolves relational tables over one KV database."""

    def __init__(self, database):
        self.database = database
        self._tables = {}

    def create_table(self, schema):
        """Create a table (and its index column families) from a schema."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = RelationalTable(schema, self.database,
                                stats_seed=len(self._tables))
        self._tables[schema.name] = table
        return table

    def table(self, name):
        """Resolve a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def __contains__(self, name):
        return name in self._tables

    def tables(self):
        """All tables."""
        return list(self._tables.values())

    def table_names(self):
        """All table names."""
        return list(self._tables)

    def flush_all(self):
        """Flush every table (bulk-load epilogue)."""
        for table in self._tables.values():
            table.flush()

    def statistics_version(self):
        """Monotone version of the catalog's statistics.

        The sum of every table's applied-mutation count: any write that
        refreshed a table's :class:`TableStatistics` bumps it, so plan
        caches keyed on ``(sql, statistics_version())`` re-plan instead
        of serving a plan built from stale statistics.
        """
        return sum(table.mutation_count for table in self._tables.values())

    def total_rows(self):
        """Total row count across tables."""
        return sum(table.row_count for table in self._tables.values())

    def total_bytes(self):
        """Total data bytes across tables (excluding indexes)."""
        return sum(table.total_bytes for table in self._tables.values())

    def __repr__(self):
        return f"Catalog(tables={sorted(self._tables)})"
