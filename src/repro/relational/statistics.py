"""Index-sample statistics and selectivity estimation.

MyRocks builds its optimizer statistics from index samples; the paper
explicitly relies on those "standard MySQL techniques" and does NOT inject
optimal selectivities, so estimates are deliberately imperfect (that
imperfection is what Experiment 3 measures).  We mirror the approach: a
bounded reservoir sample of rows per table, with per-column min/max and
distinct counts; predicate selectivity is estimated by evaluating the
predicate over the sample, with smoothing.
"""

import random
from dataclasses import dataclass, field

from repro.errors import SchemaError

_DEFAULT_SAMPLE = 512
_DEFAULT_BUCKETS = 16


class Histogram:
    """Equi-depth histogram over a numeric column's sample.

    MySQL 8 builds equi-height histograms the same way; range
    selectivity interpolates within the boundary buckets instead of
    assuming a uniform min..max spread.
    """

    def __init__(self, values, buckets=_DEFAULT_BUCKETS):
        values = sorted(v for v in values if v is not None)
        if not values:
            raise SchemaError("histogram needs at least one value")
        self.n_values = len(values)
        buckets = max(1, min(buckets, len(values)))
        self.bounds = []       # (low, high, count) per bucket, inclusive
        per_bucket = len(values) / buckets
        start = 0
        for b in range(buckets):
            end = int(round((b + 1) * per_bucket))
            end = max(start + 1, min(end, len(values)))
            chunk = values[start:end]
            if chunk:
                self.bounds.append((chunk[0], chunk[-1], len(chunk)))
            start = end
            if start >= len(values):
                break

    def selectivity(self, lo=None, hi=None):
        """Estimated fraction of values in [lo, hi] (None = open end)."""
        covered = 0.0
        for low, high, count in self.bounds:
            b_lo = low if lo is None else max(lo, low)
            b_hi = high if hi is None else min(hi, high)
            if b_hi < b_lo:
                continue
            if high == low:
                covered += count
            else:
                covered += count * (b_hi - b_lo) / (high - low)
        return min(1.0, covered / self.n_values)

    @property
    def bucket_count(self):
        """Number of buckets actually built."""
        return len(self.bounds)


@dataclass
class ColumnStats:
    """Summary statistics of one column."""

    name: str
    n_values: int = 0
    n_nulls: int = 0
    min_value: object = None
    max_value: object = None
    distinct_estimate: int = 0
    _distinct: set = field(default_factory=set, repr=False)

    def observe(self, value):
        """Fold one value into the summary."""
        if value is None:
            self.n_nulls += 1
            return
        self.n_values += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if len(self._distinct) < 4096:
            self._distinct.add(value)
        self.distinct_estimate = max(self.distinct_estimate,
                                     len(self._distinct))

    @property
    def null_fraction(self):
        """Fraction of observed values that were NULL."""
        total = self.n_values + self.n_nulls
        return self.n_nulls / total if total else 0.0


class TableStatistics:
    """Row count, per-column stats, and a reservoir sample of rows."""

    def __init__(self, table_name, sample_size=_DEFAULT_SAMPLE, seed=0):
        if sample_size <= 0:
            raise SchemaError("sample size must be positive")
        self.table_name = table_name
        self.row_count = 0
        self.sample_size = sample_size
        self.sample = []
        self.columns = {}
        self._rng = random.Random(seed)

    def observe_row(self, row):
        """Fold one row into counts, column stats, and the reservoir."""
        self.row_count += 1
        for name, value in row.items():
            stats = self.columns.get(name)
            if stats is None:
                stats = ColumnStats(name)
                self.columns[name] = stats
            stats.observe(value)
        if len(self.sample) < self.sample_size:
            self.sample.append(dict(row))
        else:
            slot = self._rng.randrange(self.row_count)
            if slot < self.sample_size:
                self.sample[slot] = dict(row)

    def column(self, name):
        """Stats for one column (empty stats when never observed)."""
        return self.columns.get(name) or ColumnStats(name)

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def selectivity(self, predicate):
        """Estimate the fraction of rows satisfying ``predicate``.

        ``predicate`` is a callable row -> bool, typically the compiled
        WHERE fragment for this table.  Evaluation runs over the sample
        with add-one smoothing; an empty sample yields the MySQL-ish
        default of 0.1.
        """
        if not self.sample:
            return 0.1
        matched = 0
        for row in self.sample:
            try:
                if predicate(row):
                    matched += 1
            except (KeyError, TypeError):
                continue
        return (matched + 1.0) / (len(self.sample) + 2.0)

    def equality_selectivity(self, column_name):
        """1/NDV estimate for ``column = const`` when no sample predicate
        is available (index-dive style)."""
        stats = self.column(column_name)
        if stats.distinct_estimate <= 0:
            return 0.1
        return 1.0 / stats.distinct_estimate

    def histogram(self, column_name, buckets=_DEFAULT_BUCKETS):
        """Equi-depth histogram over the sampled values of a column.

        Returns None when the column has no numeric sampled values.
        """
        values = [row.get(column_name) for row in self.sample
                  if isinstance(row.get(column_name), (int, float))]
        if not values:
            return None
        return Histogram(values, buckets=buckets)

    def range_selectivity(self, column_name, lo=None, hi=None):
        """Range fraction for numeric columns.

        Uses the equi-depth histogram over the sample when available;
        falls back to linear min/max interpolation.
        """
        histogram = self.histogram(column_name)
        if histogram is not None:
            return histogram.selectivity(lo=lo, hi=hi)
        stats = self.column(column_name)
        if (stats.min_value is None or stats.max_value is None
                or not isinstance(stats.min_value, (int, float))):
            return 0.3
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 1.0
        lo_val = stats.min_value if lo is None else max(lo, stats.min_value)
        hi_val = stats.max_value if hi is None else min(hi, stats.max_value)
        if hi_val < lo_val:
            return 1.0 / max(1, self.row_count)
        return min(1.0, max(0.0, (hi_val - lo_val) / span))

    def estimated_rows(self, selectivity):
        """Cardinality from a selectivity, never below one row."""
        return max(1, int(round(self.row_count * selectivity)))
