"""MyRocks-style relational layer over the KV substrate.

Tables map to column families; secondary indexes are separate column
families whose keys combine the secondary value with the primary key
(paper §2.2).  Records use the paper's modified-JOB encoding: 4-byte
integers, fixed-size padded/trimmed character values, 4-byte alignment
(§5, Workloads).  Index-sample statistics drive selectivity estimation the
way MySQL/MyRocks does.
"""

from repro.relational.schema import Column, DataType, TableSchema
from repro.relational.encoding import RecordCodec, decode_key, encode_key
from repro.relational.scan import ScanRequest
from repro.relational.table import RelationalTable, SecondaryIndex
from repro.relational.catalog import Catalog
from repro.relational.statistics import ColumnStats, TableStatistics

__all__ = [
    "Column",
    "DataType",
    "TableSchema",
    "RecordCodec",
    "encode_key",
    "decode_key",
    "ScanRequest",
    "RelationalTable",
    "SecondaryIndex",
    "Catalog",
    "ColumnStats",
    "TableStatistics",
]
