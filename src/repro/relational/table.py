"""Relational tables over column families, with secondary indexes.

The primary index stores ``encode_key(pk) -> record bytes`` in the table's
own column family.  Each secondary index is a *separate* column family
whose keys concatenate the encoded secondary value with the primary key
and whose values are empty (metadata only): a lookup first walks the
secondary LSM tree, extracts primary keys, and then seeks each of them in
the primary LSM tree — exactly the MyRocks double-lookup (paper §2.2).
"""

from repro.errors import CatalogError, SchemaError
from repro.lsm.store import ReadStats
from repro.relational.encoding import (RecordCodec, composite_key, encode_key,
                                       split_composite_key)
from repro.relational.scan import check_scan_args, run_scan_batch
from repro.relational.schema import DataType
from repro.relational.statistics import TableStatistics


class SecondaryIndex:
    """A secondary index over one column, stored in its own CF."""

    def __init__(self, table_name, column, family):
        self.table_name = table_name
        self.column = column
        self.family = family

    @property
    def name(self):
        """Index (and column-family) name."""
        return self.family.name

    def _value_key(self, value):
        width = self.column.width if self.column.dtype is DataType.CHAR else None
        return encode_key(value, width)

    def insert(self, value, primary_raw):
        """Index a (secondary value, primary key) pair; NULLs are skipped."""
        if value is None:
            return
        self.family.put(composite_key(self._value_key(value), primary_raw),
                        b"")

    def delete(self, value, primary_raw):
        """Remove an index entry."""
        if value is None:
            return
        self.family.delete(
            composite_key(self._value_key(value), primary_raw))

    def primary_keys_for(self, value, stats=None):
        """All primary keys whose row has ``column == value``."""
        prefix = self._value_key(value)
        hi = prefix + b"\xff" * 9
        for key, _empty in self.family.scan(lo=prefix, hi=hi, stats=stats):
            secondary_raw, primary_raw = split_composite_key(key)
            if secondary_raw == prefix:
                yield primary_raw

    def primary_keys_in_range(self, lo=None, hi=None, stats=None):
        """Primary keys for secondary values in [lo, hi]."""
        lo_raw = None if lo is None else self._value_key(lo)
        hi_raw = None if hi is None else self._value_key(hi) + b"\xff" * 9
        for key, _empty in self.family.scan(lo=lo_raw, hi=hi_raw, stats=stats):
            _secondary, primary_raw = split_composite_key(key)
            yield primary_raw


class RelationalTable:
    """A table stored in a column family, with optional secondary indexes."""

    def __init__(self, schema, database, stats_seed=0):
        self.schema = schema
        self.codec = RecordCodec(schema)
        self._database = database
        self.family = database.create_column_family(schema.name)
        self.statistics = TableStatistics(schema.name, seed=stats_seed)
        #: Monotone count of applied mutations (inserts/deletes/updates).
        #: Every applied write refreshes ``statistics``, so this doubles
        #: as the table's statistics version — the plan cache keys on
        #: the catalog-wide sum (:meth:`Catalog.statistics_version`) so
        #: refreshed statistics invalidate cached plans.
        self.mutation_count = 0
        self.indexes = {}
        for column_name in schema.secondary_indexes:
            column = schema.column(column_name)
            family = database.create_column_family(
                f"{schema.name}.idx_{column_name}")
            self.indexes[column_name] = SecondaryIndex(
                schema.name, column, family)

    @property
    def name(self):
        """Table name."""
        return self.schema.name

    @property
    def row_count(self):
        """Number of rows inserted."""
        return self.statistics.row_count

    def column_families(self):
        """Names of every CF this table owns (primary + indexes)."""
        return [self.family.name] + [ix.name for ix in self.indexes.values()]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def primary_key_bytes(self, pk_value):
        """Encoded primary key for a value."""
        return encode_key(pk_value)

    def insert(self, row):
        """Insert a row (mapping of column name -> value)."""
        pk_value = row.get(self.schema.primary_key)
        if pk_value is None:
            raise SchemaError(
                f"{self.name}: primary key {self.schema.primary_key!r} "
                f"must be set")
        raw_key = self.primary_key_bytes(pk_value)
        raw_record = self.codec.encode(row)
        self.family.put(raw_key, raw_record)
        for column_name, index in self.indexes.items():
            index.insert(row.get(column_name), raw_key)
        self.statistics.observe_row(row)
        self.mutation_count += 1

    def insert_many(self, rows):
        """Bulk insert."""
        for row in rows:
            self.insert(row)

    def delete(self, pk_value):
        """Delete by primary key (also cleans secondary indexes)."""
        raw_key = self.primary_key_bytes(pk_value)
        row = self.get_by_pk(pk_value)
        if row is None:
            return False
        self.family.delete(raw_key)
        for column_name, index in self.indexes.items():
            index.delete(row.get(column_name), raw_key)
        self.mutation_count += 1
        return True

    def update(self, pk_value, changes):
        """Update columns of one row; maintains secondary indexes.

        Returns the new row, or None when the primary key is absent.
        Changing the primary key itself is rejected.
        """
        if self.schema.primary_key in changes:
            raise SchemaError(
                f"{self.name}: cannot update the primary key")
        old_row = self.get_by_pk(pk_value)
        if old_row is None:
            return None
        new_row = dict(old_row)
        for name, value in changes.items():
            self.schema.column(name)     # validates the column exists
            new_row[name] = value
        raw_key = self.primary_key_bytes(pk_value)
        self.family.put(raw_key, self.codec.encode(new_row))
        for column_name, index in self.indexes.items():
            old_value = old_row.get(column_name)
            new_value = new_row.get(column_name)
            if old_value != new_value:
                index.delete(old_value, raw_key)
                index.insert(new_value, raw_key)
        self.mutation_count += 1
        return new_row

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _decoder(self, columns, qualified_as):
        if columns is None and qualified_as is None:
            return self.codec.decode
        names = columns if columns is not None else self.schema.column_names
        return self.codec.projector(names, qualified_prefix=qualified_as)

    def get_by_pk(self, pk_value, stats=None, columns=None,
                  qualified_as=None):
        """Fetch one row by primary key, or None.

        ``columns`` limits decoding to the named columns (projection
        pushdown; the record is still read in full from storage).
        ``qualified_as`` emits ``alias.column`` keys for the executor.
        """
        raw = self.family.get(self.primary_key_bytes(pk_value), stats=stats)
        if raw is None:
            return None
        return self._decoder(columns, qualified_as)(raw)

    def get_by_pk_raw(self, raw_key, stats=None, columns=None,
                      qualified_as=None):
        """Fetch one row by its already-encoded primary key."""
        raw = self.family.get(raw_key, stats=stats)
        if raw is None:
            return None
        return self._decoder(columns, qualified_as)(raw)

    def scan(self, request=None, **kwargs):
        """Full or PK-range scan; yields decoded rows.

        Takes one :class:`~repro.relational.scan.ScanRequest`;
        ``request.predicate`` filters decoded rows, ``request.projection``
        limits the *output* columns, ``request.columns`` limits
        *decoding* (it must cover the projection and every predicate
        column).  Either way the record is read in full from storage —
        projection saves downstream bytes, not I/O, matching the
        paper's model.
        """
        request = check_scan_args("RelationalTable.scan", request, kwargs)
        return self._scan_rows(request)

    def _scan_rows(self, request):
        stats = request.stats if request.stats is not None else ReadStats()
        lo = None if request.pk_lo is None else encode_key(request.pk_lo)
        hi = None if request.pk_hi is None else encode_key(request.pk_hi + 1)
        decode = self._decoder(request.columns, request.qualified_as)
        for _key, raw in self.family.scan(lo=lo, hi=hi, stats=stats):
            row = decode(raw)
            if request.predicate is not None and not request.predicate(row):
                continue
            if request.projection is not None:
                row = {name: row.get(name) for name in request.projection}
            yield row

    def scan_batch(self, request=None, **kwargs):
        """Vectorized scan: decode matching records into a ColumnBatch.

        Storage access (LSM reads, stats) is identical to :meth:`scan`;
        pk-bound clamping and shard-membership pruning happen on the
        decoded primary-key column, vectorized.
        """
        request = check_scan_args("RelationalTable.scan_batch", request,
                                  kwargs)
        return run_scan_batch(
            self.codec, self.schema,
            lambda lo, hi, stats: self.family.scan(lo=lo, hi=hi, stats=stats),
            request, "RelationalTable.scan_batch")

    def scan_raw(self, request=None, **kwargs):
        """Scan yielding undecoded record bytes (batch-decode feeds)."""
        request = check_scan_args("RelationalTable.scan_raw", request, kwargs)
        return self._scan_raw(request)

    def _scan_raw(self, request):
        stats = request.stats if request.stats is not None else ReadStats()
        lo = None if request.pk_lo is None else encode_key(request.pk_lo)
        hi = None if request.pk_hi is None else encode_key(request.pk_hi + 1)
        for _key, raw in self.family.scan(lo=lo, hi=hi, stats=stats):
            yield raw

    def get_record(self, pk_value, stats=None):
        """Undecoded record bytes for one primary key, or None."""
        return self.family.get(self.primary_key_bytes(pk_value), stats=stats)

    def index_lookup(self, column_name, value, stats=None, columns=None,
                     qualified_as=None):
        """Rows with ``column == value`` via the secondary index."""
        index = self.index_on(column_name)
        decode = self._decoder(columns, qualified_as)
        for primary_raw in index.primary_keys_for(value, stats=stats):
            raw = self.family.get(primary_raw, stats=stats)
            if raw is not None:
                yield decode(raw)

    def index_lookup_raw(self, column_name, value, stats=None):
        """Undecoded record bytes with ``column == value`` via the index.

        Same LSM access order (secondary walk, then primary seeks) as
        :meth:`index_lookup` — only decoding is deferred.
        """
        index = self.index_on(column_name)
        for primary_raw in index.primary_keys_for(value, stats=stats):
            raw = self.family.get(primary_raw, stats=stats)
            if raw is not None:
                yield raw

    def index_on(self, column_name):
        """The secondary index over a column; raises when absent."""
        try:
            return self.indexes[column_name]
        except KeyError:
            raise CatalogError(
                f"{self.name}: no secondary index on {column_name!r}"
            ) from None

    def has_index_on(self, column_name):
        """Whether a secondary index exists on the column."""
        return (column_name == self.schema.primary_key
                or column_name in self.indexes)

    # ------------------------------------------------------------------
    # Cost-model inputs
    # ------------------------------------------------------------------
    @property
    def record_bytes(self):
        """Bytes of one encoded record (tbl_tbn per row)."""
        return self.codec.record_bytes

    @property
    def total_bytes(self):
        """Approximate total table bytes (tbl_tbn)."""
        return self.row_count * self.record_bytes

    def flush(self):
        """Flush the primary and all index column families."""
        self.family.tree.freeze_and_flush()
        for index in self.indexes.values():
            index.family.tree.freeze_and_flush()

    def __repr__(self):
        return (f"RelationalTable({self.name!r}, rows={self.row_count}, "
                f"indexes={sorted(self.indexes)})")
