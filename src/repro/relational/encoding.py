"""Record and key codecs.

Records are fixed-width: a 4-byte-aligned null bitmap followed by every
column at its aligned storage width (INTs little-endian, CHARs padded with
spaces / trimmed to the declared width, mirroring the paper's JOB
modification).  Keys are order-preserving big-endian encodings so that
``memcmp`` order over the LSM tree equals value order.
"""

import struct

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import DataType

_ALIGNMENT = 4
_INT_MIN = -(2 ** 31)
_INT_MAX = 2 ** 31 - 1
_KEY_BIAS = 2 ** 63


def encode_key(value, width=None):
    """Order-preserving key encoding for INT or CHAR values.

    Integers become biased 8-byte big-endian so signed order matches byte
    order; strings are padded to ``width`` so prefixes do not interleave.
    """
    if isinstance(value, int):
        return struct.pack(">Q", value + _KEY_BIAS)
    if isinstance(value, str):
        raw = value.encode("utf-8", errors="replace")
        if width is not None:
            raw = raw[:width].ljust(width, b" ")
        return raw
    if isinstance(value, bytes):
        return value
    raise SchemaError(f"cannot encode key of type {type(value)}")


def decode_key(raw):
    """Decode an integer key produced by :func:`encode_key`."""
    if len(raw) != 8:
        raise SchemaError(f"integer keys are 8 bytes, got {len(raw)}")
    return struct.unpack(">Q", raw)[0] - _KEY_BIAS


def composite_key(secondary_raw, primary_raw):
    """Secondary-index key: secondary value bytes + primary key bytes."""
    return secondary_raw + primary_raw


def split_composite_key(raw):
    """Inverse of :func:`composite_key` (primary part is the last 8 bytes)."""
    if len(raw) < 8:
        raise SchemaError("composite key too short")
    return raw[:-8], raw[-8:]


class RecordCodec:
    """Encodes/decodes full records for one table schema."""

    def __init__(self, schema):
        self.schema = schema
        bitmap = (len(schema.columns) + 7) // 8
        self._bitmap_bytes = (bitmap + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        self._offsets = []
        offset = self._bitmap_bytes
        for column in schema.columns:
            self._offsets.append(offset)
            offset += column.storage_width
        self._record_bytes = offset
        self._projectors = {}
        self._batch_projectors = {}

    @property
    def record_bytes(self):
        """Fixed encoded size of one record."""
        return self._record_bytes

    def encode(self, row):
        """Encode a mapping of column name -> value into record bytes."""
        schema = self.schema
        buffer = bytearray(self._record_bytes)
        for i, column in enumerate(schema.columns):
            value = row.get(column.name)
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"{schema.name}.{column.name} is NOT NULL")
                buffer[i // 8] |= 1 << (i % 8)
                continue
            offset = self._offsets[i]
            if column.dtype is DataType.INT:
                if not isinstance(value, int):
                    raise SchemaError(
                        f"{schema.name}.{column.name}: expected int, "
                        f"got {type(value)}")
                if not _INT_MIN <= value <= _INT_MAX:
                    raise SchemaError(
                        f"{schema.name}.{column.name}: {value} out of "
                        f"4-byte range")
                struct.pack_into("<i", buffer, offset, value)
            else:
                if not isinstance(value, str):
                    raise SchemaError(
                        f"{schema.name}.{column.name}: expected str, "
                        f"got {type(value)}")
                raw = value.encode("utf-8", errors="replace")
                raw = raw[:column.width].ljust(column.width, b" ")
                buffer[offset:offset + len(raw)] = raw
        return bytes(buffer)

    def decode(self, raw):
        """Decode record bytes into a dict of column name -> value."""
        if len(raw) != self._record_bytes:
            raise SchemaError(
                f"{self.schema.name}: record is {len(raw)} bytes, "
                f"expected {self._record_bytes}")
        row = {}
        for i, column in enumerate(self.schema.columns):
            if raw[i // 8] & (1 << (i % 8)):
                row[column.name] = None
                continue
            offset = self._offsets[i]
            if column.dtype is DataType.INT:
                row[column.name] = struct.unpack_from("<i", raw, offset)[0]
            else:
                text = raw[offset:offset + column.width]
                row[column.name] = text.decode("utf-8",
                                               errors="replace").rstrip(" ")
        return row

    def decode_columns(self, raw, column_names):
        """Decode only the named columns (projection pushdown)."""
        return self.projector(column_names)(raw)

    def projector(self, column_names, qualified_prefix=None):
        """A compiled partial decoder for the named columns.

        The returned closure decodes one record's bytes into a dict; with
        ``qualified_prefix`` the keys are ``prefix.column`` (the form the
        execution pipeline uses).  Projectors are cached per column set.
        """
        cache_key = (tuple(column_names), qualified_prefix)
        cached = self._projectors.get(cache_key)
        if cached is not None:
            return cached
        plan = []
        for name in column_names:
            i = self.schema.column_index(name)
            column = self.schema.columns[i]
            out_name = (f"{qualified_prefix}.{name}"
                        if qualified_prefix else name)
            plan.append((out_name, i >> 3, 1 << (i & 7), self._offsets[i],
                         column.dtype is DataType.INT, column.width))
        unpack = struct.unpack_from

        def project(raw):
            row = {}
            for out_name, byte, bit, offset, is_int, width in plan:
                if raw[byte] & bit:
                    row[out_name] = None
                elif is_int:
                    row[out_name] = unpack("<i", raw, offset)[0]
                else:
                    row[out_name] = raw[offset:offset + width].decode(
                        "utf-8", errors="replace").rstrip(" ")
            return row

        self._projectors[cache_key] = project
        return project

    def batch_projector(self, column_names, qualified_prefix=None):
        """A compiled vectorized decoder for the named columns.

        The returned closure decodes a list of record byte strings into
        one :class:`~repro.columns.ColumnBatch` in a single
        ``np.frombuffer`` pass over a structured dtype: INT columns as
        little-endian 4-byte fields widened to int64, CHAR columns as
        ``S{width}`` fields decoded to unicode and right-trimmed, and
        the null bitmap bytes as overlapping ``u1`` fields feeding the
        per-column null masks.  Cached per (columns, prefix) like
        :meth:`projector`.
        """
        cache_key = (tuple(column_names), qualified_prefix)
        cached = self._batch_projectors.get(cache_key)
        if cached is not None:
            return cached
        from repro.columns import ColumnBatch

        names, formats, offsets = [], [], []
        bitmap_fields = {}
        plan = []
        for j, name in enumerate(column_names):
            i = self.schema.column_index(name)
            column = self.schema.columns[i]
            out_name = (f"{qualified_prefix}.{name}"
                        if qualified_prefix else name)
            field = f"v{j}"
            names.append(field)
            formats.append("<i4" if column.dtype is DataType.INT
                           else f"S{column.width}")
            offsets.append(self._offsets[i])
            byte = i >> 3
            bitmap_field = bitmap_fields.get(byte)
            if bitmap_field is None:
                bitmap_field = f"b{byte}"
                bitmap_fields[byte] = bitmap_field
                names.append(bitmap_field)
                formats.append("u1")
                offsets.append(byte)
            plan.append((out_name, field, bitmap_field, 1 << (i & 7),
                         column.dtype is DataType.INT))
        dtype = np.dtype({"names": names, "formats": formats,
                          "offsets": offsets,
                          "itemsize": self._record_bytes})
        out_names = tuple(entry[0] for entry in plan)

        def build(raws):
            n = len(raws)
            if n == 0:
                cols = {out_name:
                        (np.empty(0, dtype=np.int64 if is_int else "<U1"),
                         None)
                        for out_name, _f, _b, _bit, is_int in plan}
                return ColumnBatch(out_names, cols, 0)
            records = np.frombuffer(b"".join(raws), dtype=dtype, count=n)
            cols = {}
            for out_name, field, bitmap_field, bit, is_int in plan:
                null = (records[bitmap_field] & bit) != 0
                mask = null if null.any() else None
                if is_int:
                    values = records[field].astype(np.int64)
                else:
                    values = np.char.rstrip(
                        np.char.decode(records[field], "utf-8", "replace"),
                        " ")
                if mask is not None:
                    values[mask] = 0 if is_int else ""
                cols[out_name] = (values, mask)
            return ColumnBatch(out_names, cols, n)

        self._batch_projectors[cache_key] = build
        return build
