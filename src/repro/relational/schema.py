"""Relational schemas with fixed-width storage types.

The paper modifies JOB to use fixed-size byte lengths for character
values (padding or trimming) and 4-byte integers, honouring the COSMOS+
board's 4-byte alignment.  We encode exactly that: every record of a table
has the same byte size, which is what makes the cost model's
bytes-per-record terms (tbl_tbn, tbl_pbn) exact.
"""

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError

_ALIGNMENT = 4


class DataType(enum.Enum):
    """Storage types supported by the engine."""

    INT = "int"       # 4-byte signed integer
    CHAR = "char"     # fixed-width character value, space padded


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    dtype: DataType
    width: int = 4            # bytes; INT is always 4, CHAR is declared
    nullable: bool = True

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.dtype is DataType.INT and self.width != 4:
            raise SchemaError("INT columns are always 4 bytes wide")
        if self.width <= 0:
            raise SchemaError(f"column {self.name}: width must be positive")

    @property
    def storage_width(self):
        """Width rounded up to the board's 4-byte alignment."""
        return (self.width + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def int_col(name, nullable=True):
    """Shorthand for a 4-byte integer column."""
    return Column(name, DataType.INT, 4, nullable)


def char_col(name, width, nullable=True):
    """Shorthand for a fixed-width character column."""
    return Column(name, DataType.CHAR, width, nullable)


@dataclass(frozen=True)
class TableSchema:
    """Schema of a table: ordered columns plus the primary-key column."""

    name: str
    columns: tuple
    primary_key: str = "id"
    secondary_indexes: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if not self.columns:
            raise SchemaError(f"table {self.name}: needs at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name}: duplicate column names")
        if self.primary_key not in names:
            raise SchemaError(
                f"table {self.name}: primary key {self.primary_key!r} "
                f"is not a column")
        for indexed in self.secondary_indexes:
            if indexed not in names:
                raise SchemaError(
                    f"table {self.name}: indexed column {indexed!r} "
                    f"is not a column")

    @property
    def column_names(self):
        """Ordered column names."""
        return [column.name for column in self.columns]

    def column(self, name):
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name}: no column {name!r}")

    def column_index(self, name):
        """Position of a column within the record."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SchemaError(f"table {self.name}: no column {name!r}")

    def has_column(self, name):
        """Whether the schema contains a column of this name."""
        return any(column.name == name for column in self.columns)

    def has_secondary_index(self, name):
        """Whether the named column carries a secondary index."""
        return name in self.secondary_indexes

    @property
    def record_bytes(self):
        """Fixed byte size of one encoded record (tbl_tbn per record)."""
        null_bitmap = (len(self.columns) + 7) // 8
        null_bitmap = (null_bitmap + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        return null_bitmap + sum(c.storage_width for c in self.columns)

    def projection_bytes(self, column_names):
        """Byte size of the named attributes (tbl_pbn for a projection)."""
        return sum(self.column(name).storage_width for name in column_names)

    @property
    def field_count(self):
        """Number of columns (tbl_tfn)."""
        return len(self.columns)
