"""The consolidated scan-parameter surface: :class:`ScanRequest`.

Before this module, ``Table.scan`` and ``SnapshotTable.scan`` had grown
a sprawl of keywords (``predicate=``, ``projection=``, ``stats=``,
``pk_lo=``/``pk_hi=``, per-call shard pruning at the call sites).  Every
scan now takes a single frozen :class:`ScanRequest`; passing the old
keywords raises a :class:`~repro.errors.ReproError` naming the
replacement field, mirroring the ``ctx=`` migration in
:mod:`repro.context`.
"""

from dataclasses import dataclass

from repro.errors import ReproError

#: Former ``scan()`` keyword arguments and the ScanRequest field that
#: replaced each one.
_REMOVED_SCAN_KWARGS = {
    "predicate": "ScanRequest(predicate=...)",
    "projection": "ScanRequest(projection=...)",
    "stats": "ScanRequest(stats=...)",
    "columns": "ScanRequest(columns=...)",
    "qualified_as": "ScanRequest(qualified_as=...)",
    "pk_lo": "ScanRequest(pk_lo=...)",
    "pk_hi": "ScanRequest(pk_hi=...)",
    "shard": "ScanRequest(shard=...)",
}


@dataclass(frozen=True)
class ScanRequest:
    """Everything a table scan needs, in one frozen value.

    Attributes:
        columns: Column names to decode (``None`` decodes the full
            schema).  Decode order follows this sequence.
        pk_lo: Inclusive lower primary-key bound, or ``None``.
        pk_hi: Inclusive upper primary-key bound, or ``None``.
        stats: :class:`~repro.sim.lsm.ReadStats` sink shared with the
            caller, or ``None`` for a throwaway.
        qualified_as: Alias used to qualify decoded column names
            (``alias.column``); ``None`` leaves names bare.
        shard: Optional :class:`~repro.cluster.TableShard`; batch scans
            clamp pk bounds to the shard and prune membership
            vectorized.  Requires the primary key among ``columns``.
        predicate: Row-level filter callable — honoured only by the
            legacy row ``scan()``, rejected by ``scan_batch()``.
        projection: Post-decode column subset — legacy row ``scan()``
            only.
    """

    columns: tuple = None
    pk_lo: int = None
    pk_hi: int = None
    stats: object = None
    qualified_as: str = None
    shard: object = None
    predicate: object = None
    projection: tuple = None


def check_scan_args(where, request, kwargs):
    """Validate the migrated ``scan(request)`` call surface.

    Rejects the pre-ScanRequest keywords with an error naming the
    replacement field (the ``reject_removed_kwargs`` pattern from
    :mod:`repro.context`), rejects positional arguments that are not a
    :class:`ScanRequest`, and returns the request (defaulting ``None``
    to an unbounded full scan).
    """
    for name, replacement in _REMOVED_SCAN_KWARGS.items():
        if name in kwargs:
            raise ReproError(
                f"{where}() no longer accepts {name}=; pass "
                f"{replacement} instead (see docs/engine.md)")
    if kwargs:
        unexpected = next(iter(kwargs))
        raise TypeError(
            f"{where}() got an unexpected keyword argument {unexpected!r}")
    if request is None:
        return ScanRequest()
    if not isinstance(request, ScanRequest):
        raise ReproError(
            f"{where}() takes a ScanRequest, not {type(request).__name__}")
    return request


def run_scan_batch(codec, schema, scan_fn, request, where):
    """Shared vectorized-scan implementation for both table kinds.

    ``scan_fn(lo, hi, stats)`` yields ``(key, record bytes)`` from the
    underlying LSM surface (live column family or snapshot view) —
    storage access order and read stats are exactly those of the row
    scan; only decode and pruning are vectorized.  Returns a
    :class:`~repro.columns.ColumnBatch`.
    """
    from repro.columns import shard_membership
    from repro.lsm.store import ReadStats
    from repro.relational.encoding import encode_key

    if request.predicate is not None or request.projection is not None:
        raise ReproError(
            f"{where}() decodes into columns; row-level predicate=/"
            f"projection= belong to scan()")
    columns = (list(request.columns) if request.columns is not None
               else list(schema.column_names))
    build = codec.batch_projector(columns, request.qualified_as)
    shard = request.shard
    if shard is not None and shard.is_empty:
        return build([])
    pk_lo, pk_hi = request.pk_lo, request.pk_hi
    if shard is not None:
        pk_lo, pk_hi = shard.clamp(pk_lo, pk_hi)
        if schema.primary_key not in columns:
            raise ReproError(
                f"{where}(): shard pruning needs the primary key among "
                f"the requested columns")
    stats = request.stats if request.stats is not None else ReadStats()
    lo = None if pk_lo is None else encode_key(pk_lo)
    hi = None if pk_hi is None else encode_key(pk_hi + 1)
    raws = [raw for _key, raw in scan_fn(lo, hi, stats)]
    batch = build(raws)
    if shard is not None:
        pk_name = (f"{request.qualified_as}.{schema.primary_key}"
                   if request.qualified_as else schema.primary_key)
        values, _mask = batch.column(pk_name)
        batch = batch.select(shard_membership(shard, values))
    return batch
