"""The timing model: price work counters for a placement.

Converts :class:`WorkCounters` into simulated seconds for HOST or DEVICE
execution, returning both a total and a per-category breakdown whose
names follow the paper's Table 4 (memcmp, compare internal keys, seek
index block, selection processing, seek data block, flash load, other).

Host I/O can run through two paths: the traditional *block* stack (ext4
file system with its buffer-cache copies and syscall overhead) and the
*native* NVMe stack that bypasses those layers (paper Fig 10).
"""

import enum
from dataclasses import dataclass

from repro.errors import ExecutionError

#: Abstract cost of evaluating one predicate op relative to a CoreMark-
#: derived record operation.
_OPS_PER_PREDICATE = 1.0
#: Internal key comparisons are short memcmps plus branching.
_OPS_PER_KEY_COMPARISON = 2.0
#: A hash build/probe is a hash + compare + pointer chase.
_OPS_PER_HASH_PROBE = 3.0
#: An index seek issues a few block-cache lookups beyond the block reads.
_OPS_PER_INDEX_SEEK = 8.0
#: Fixed per-block bookkeeping (block headers, checksums).
_OPS_PER_BLOCK = 16.0


class ExecutionLocation(enum.Enum):
    """Where a pipeline fragment runs."""

    HOST = "host"
    DEVICE = "device"


class HostIOPath(enum.Enum):
    """How the host reaches the flash (paper Fig 10 baselines)."""

    BLOCK = "block"      # ext4 on a block device (BLK baseline)
    NATIVE = "native"    # direct NVMe into user space (NATIVE baseline)


#: File-system overhead of the BLK stack: extra latency factor on I/O and
#: one extra buffer-cache copy per byte.
_BLK_IO_FACTOR = 1.30
_BLK_EXTRA_COPY = True


@dataclass
class TimingBreakdown:
    """Per-category simulated seconds (Table 4 vocabulary)."""

    memcmp: float = 0.0
    compare_internal_keys: float = 0.0
    seek_index_block: float = 0.0
    selection_processing: float = 0.0
    seek_data_block: float = 0.0
    flash_load: float = 0.0
    other: float = 0.0

    @property
    def total(self):
        """Sum over all categories."""
        return (self.memcmp + self.compare_internal_keys
                + self.seek_index_block + self.selection_processing
                + self.seek_data_block + self.flash_load + self.other)

    def merge(self, other):
        """Accumulate another breakdown."""
        self.memcmp += other.memcmp
        self.compare_internal_keys += other.compare_internal_keys
        self.seek_index_block += other.seek_index_block
        self.selection_processing += other.selection_processing
        self.seek_data_block += other.seek_data_block
        self.flash_load += other.flash_load
        self.other += other.other
        return self

    def percentages(self):
        """Category shares in percent, Table 4 style."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in vars(self)}
        return {name: 100.0 * value / total
                for name, value in vars(self).items()}


class TimingModel:
    """Prices counters against the device + host hardware models."""

    def __init__(self, device, host_spec, io_path=HostIOPath.NATIVE):
        self.device = device
        self.host = host_spec
        self.io_path = io_path

    # ------------------------------------------------------------------
    # Per-location primitives
    # ------------------------------------------------------------------
    def _eval_rate(self, location):
        """Record-op rate for random/stateful work (ARM pays full gap)."""
        if location is ExecutionLocation.DEVICE:
            return self.device.spec.eval_ops_per_second
        return self.host.eval_ops_per_second

    def _index_rate(self, location):
        """Record-op rate for index navigation (seeks, key compares)."""
        if location is ExecutionLocation.DEVICE:
            spec = self.device.spec
            return spec.eval_ops_per_second * spec.index_op_boost
        return self.host.eval_ops_per_second

    def _streaming_rate(self, location):
        """Record-op rate for streaming selection work.

        On the device, scans/selections run on the FPGA streaming units
        (paper §2.1) and so evaluate records far faster than the ARM
        CoreMark gap would suggest.
        """
        if location is ExecutionLocation.DEVICE:
            spec = self.device.spec
            return spec.eval_ops_per_second * spec.streaming_eval_boost
        return self.host.eval_ops_per_second

    def _memcmp_bandwidth(self, location):
        """Byte-compare bandwidth for streaming predicates (LIKE etc.)."""
        if location is ExecutionLocation.DEVICE:
            return self.device.spec.streaming_memcmp_bandwidth
        return self.host.memcpy_bandwidth

    def _memcpy_bandwidth(self, location):
        """Buffer-to-buffer copy bandwidth (cache materialization)."""
        if location is ExecutionLocation.DEVICE:
            return self.device.spec.memcpy_bandwidth
        return self.host.memcpy_bandwidth

    def _flash_time(self, nbytes, location):
        if nbytes <= 0:
            return 0.0
        if location is ExecutionLocation.DEVICE:
            return self.device.read_internal(nbytes)
        time = self.device.read_external(nbytes)
        if self.io_path is HostIOPath.BLOCK:
            time *= _BLK_IO_FACTOR
        return time

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def charge(self, counters, location):
        """Price ``counters`` for ``location``.

        Returns ``(seconds, TimingBreakdown)``.
        """
        if not isinstance(location, ExecutionLocation):
            raise ExecutionError(f"bad location {location!r}")
        rate = self._eval_rate(location)
        streaming_rate = self._streaming_rate(location)
        memcpy = self._memcpy_bandwidth(location)
        memcmp_bw = self._memcmp_bandwidth(location)
        breakdown = TimingBreakdown()

        breakdown.flash_load = self._flash_time(
            counters.flash_bytes_read, location)

        if (location is ExecutionLocation.HOST
                and self.io_path is HostIOPath.BLOCK and _BLK_EXTRA_COPY):
            # The block stack copies every read byte once more through the
            # page cache before the engine sees it.
            breakdown.other += counters.flash_bytes_read / memcpy
        breakdown.memcmp = counters.memcmp_bytes / memcmp_bw

        index_rate = self._index_rate(location)
        # An internal-key comparison is mostly a bounded memcmp plus some
        # slice/sequence-number handling; attribute the memcmp share to
        # the memcmp bucket, as the paper's Table 4 profile does.
        key_compare_time = (
            counters.key_comparisons * _OPS_PER_KEY_COMPARISON / index_rate)
        breakdown.memcmp += 0.7 * key_compare_time
        breakdown.compare_internal_keys = 0.3 * key_compare_time
        breakdown.seek_index_block = (
            counters.index_block_reads * _OPS_PER_BLOCK / index_rate
            + counters.index_seeks * _OPS_PER_INDEX_SEEK / index_rate)
        breakdown.seek_data_block = (
            counters.data_block_reads * _OPS_PER_BLOCK / index_rate)
        breakdown.selection_processing = (
            (counters.records_evaluated
             + counters.predicate_ops * _OPS_PER_PREDICATE)
            / streaming_rate)
        # The BNL hash build/probe belongs to the device's streaming join
        # unit (nKV's on-device BNL builds the hash table in the join
        # buffer); on the host it runs at the host record rate anyway.
        breakdown.other += (
            counters.hash_probes * _OPS_PER_HASH_PROBE / streaming_rate
            + counters.block_cache_hits * 2.0 / index_rate
            + counters.bytes_materialized / memcpy)
        return breakdown.total, breakdown

    def transfer_time(self, nbytes, commands=1):
        """Device -> host (or host -> device) PCIe transfer time."""
        return self.device.transfer_results(nbytes, commands=commands)

    def fetch_command_time(self):
        """Host-side doorbell/completion for consuming one result batch.

        The batch payload itself is DMAed by the device; the host only
        posts a small completion command on the link per batch.
        """
        return self.device.link.transfer_time(64, commands=1)

    def command_setup_time(self, payload_bytes):
        """Time to assemble and submit an NDP command with its payload."""
        return (self.device.link.command_latency
                + self.device.link.transfer_time(payload_bytes))
