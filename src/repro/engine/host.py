"""The host execution engine.

Runs complete plans (the BLK / NATIVE baselines) or the host-side
fragment of a hybrid split.  All I/O crosses the interconnect: the host
pays the external flash path for every byte it reads, which is exactly
the data movement NDP removes.
"""

from dataclasses import dataclass

from repro.engine.counters import WorkCounters
from repro.engine.pipeline import PipelineConfig, PipelineExecutor, finalize
from repro.engine.results import ExecutionReport, QueryResult
from repro.engine.timing import ExecutionLocation
from repro.query.ast import conjuncts


@dataclass
class HostEngineConfig:
    """Host-side execution knobs."""

    join_buffer_bytes: int = 32 * 1024 * 1024
    block_cache_bytes: int = 512 * 1024 * 1024   # page cache share
    max_rows: int = None


class HostEngine:
    """Executes plans (or plan fragments) on the host CPU."""

    def __init__(self, catalog, timing_model, config=None):
        self.catalog = catalog
        self.timing = timing_model
        self.config = config or HostEngineConfig()

    def _pipeline_config(self):
        return PipelineConfig(
            join_buffer_bytes=self.config.join_buffer_bytes,
            pointer_cache=False,
            max_rows=self.config.max_rows,
            block_cache_bytes=self.config.block_cache_bytes,
        )

    # ------------------------------------------------------------------
    # Full-plan execution (BLK / NATIVE baselines)
    # ------------------------------------------------------------------
    def run_pipeline(self, plan, counters, driving_shard=None):
        """Join-pipeline portion of a plan (everything before finalize).

        ``driving_shard`` restricts the driving table to one cluster
        partition.  Returns ``(rows, row_bytes)``; work lands in
        ``counters``.  The scatter-gather executor uses this directly to
        run host-placed partitions whose finalize happens once, over the
        merged rows of all partitions.
        """
        executor = PipelineExecutor(self.catalog, self._pipeline_config(),
                                    counters)
        residual = conjuncts(plan.residual)
        return executor.run(plan.entries, plan.spec.tables,
                            residual_conjuncts=residual,
                            driving_shard=driving_shard)

    def execute(self, plan, strategy="host-only"):
        """Run the whole plan on the host; returns an ExecutionReport."""
        counters = WorkCounters()
        rows, _row_bytes = self.run_pipeline(plan, counters)
        result_rows, columns = finalize(rows, plan.select_items,
                                        plan.group_by, counters,
                                        limit=plan.limit)
        seconds, breakdown = self.timing.charge(counters,
                                                ExecutionLocation.HOST)
        return ExecutionReport(
            strategy=strategy,
            total_time=seconds,
            result=QueryResult(result_rows, columns),
            host_counters=counters,
            host_breakdown=breakdown,
            host_processing_time=seconds,
        )

    # ------------------------------------------------------------------
    # Fragment execution (hybrid host side)
    # ------------------------------------------------------------------
    def fragment_session(self, plan, entries, input_aliases, counters,
                         residual_conjuncts=None):
        """A stateful session for the host side of a hybrid split.

        The session keeps one pipeline executor — and therefore one warm
        block cache — across all device-result batches, as a real engine
        would.  ``counters`` accumulates host work across batches.
        """
        residual = (conjuncts(plan.residual) if residual_conjuncts is None
                    else list(residual_conjuncts))
        return _FragmentSession(self, plan, entries, list(input_aliases),
                                counters, residual)

    def finalize_fragment(self, plan, rows, counters):
        """Aggregation/projection epilogue over accumulated rows."""
        result_rows, columns = finalize(rows, plan.select_items,
                                        plan.group_by, counters,
                                        limit=plan.limit)
        return QueryResult(result_rows, columns)


class _FragmentSession:
    """Executes device-result batches against the host-side entries."""

    def __init__(self, engine, plan, entries, input_aliases, counters,
                 residual):
        self.plan = plan
        self.entries = entries
        self.input_aliases = input_aliases
        self.counters = counters
        self.residual = residual
        self._executor = PipelineExecutor(
            engine.catalog, engine._pipeline_config(), counters)

    def process_batch(self, batch, row_bytes):
        """Join one batch of device rows with the host-side entries."""
        rows, out_bytes = self._executor.run(
            self.entries, self.plan.spec.tables,
            residual_conjuncts=list(self.residual),
            input_rows=batch,
            input_row_bytes=row_bytes,
            input_aliases=self.input_aliases,
        )
        return rows, out_bytes
