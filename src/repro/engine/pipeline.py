"""Vectorized volcano-style pipeline shared by the host and NDP engines.

Both engines execute the *same* operator semantics over the stored data
(the paper's device runs a volcano model too, §4.2); they differ in
buffer sizes, intermediate cache format (row cache vs pointer cache) and
— via the timing model — the price of each unit of work.

Operators exchange :class:`~repro.columns.ColumnBatch`es (docs/engine.md):
each stage decodes records straight into numpy column arrays, evaluates
predicates as boolean masks, and joins by gathering row indices.  Every
:class:`WorkCounters` increment is derived from batch arithmetic —
lengths, mask popcounts, byte widths — and is numerically identical to
the retained row-at-a-time reference (:mod:`repro.engine.rowref`), so
golden traces, differential tests and chaos/cluster audits stay
byte-identical.  LSM access *order* is likewise preserved: batching only
defers decode and predicate work, never reorders or skips storage reads,
so stateful block-cache hit counts match exactly.
"""

from dataclasses import dataclass

import numpy as np

from repro.columns import ColumnBatch
from repro.errors import ExecutionError
from repro.lsm.store import ReadStats
from repro.query.ast import (Between, ColumnRef, Comparison, InList, IsNull,
                             Like, Literal, Not, And, Or, conjuncts)
from repro.query.physical import AccessPath, JoinAlgorithm
from repro.query.vectorized import eval_mask
from repro.relational.scan import ScanRequest

_POINTER_BYTES = 8


def stable_hash(key):
    """Deterministic hash of a join-key tuple (no per-process salt)."""
    import zlib
    value = 0x811C9DC5
    for part in key:
        if isinstance(part, int):
            value = ((value * 1000003) ^ part) & 0x7FFFFFFF
        else:
            value = ((value * 1000003)
                     ^ zlib.crc32(str(part).encode())) & 0x7FFFFFFF
    return value


@dataclass
class PipelineConfig:
    """Execution-side knobs for one pipeline run."""

    join_buffer_bytes: int = 32 * 1024 * 1024
    pointer_cache: bool = False      # device: >2 tables switch (paper §4.2)
    max_rows: int = None             # safety valve for runaway joins
    block_cache_bytes: int = 0       # page cache / device block buffer


def predicate_cost(expr, catalog, tables):
    """(primitive ops, memcmp bytes) of evaluating ``expr`` on one row.

    LIKE over a CHAR(w) column compares up to ``w`` bytes; equality over
    strings compares the column width; everything else is a primitive op.
    """
    if expr is None:
        return 0, 0

    def width_of(ref):
        table = catalog.table(tables[ref.alias])
        column = table.schema.column(ref.column)
        return column.storage_width

    ops = 0
    memcmp = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            ops += 1
            for side in (node.left, node.right):
                if isinstance(side, ColumnRef):
                    width = width_of(side)
                    if width > 4:
                        memcmp += width
            stack.extend([node.left, node.right])
        elif isinstance(node, Like):
            ops += 1
            if isinstance(node.operand, ColumnRef):
                memcmp += width_of(node.operand)
            stack.append(node.operand)
        elif isinstance(node, InList):
            ops += max(1, len(node.values))
            if isinstance(node.operand, ColumnRef):
                width = width_of(node.operand)
                if width > 4:
                    memcmp += width * max(1, len(node.values))
            stack.append(node.operand)
        elif isinstance(node, Between):
            ops += 2
            stack.extend([node.operand, node.low, node.high])
        elif isinstance(node, IsNull):
            ops += 1
            stack.append(node.operand)
        elif isinstance(node, Not):
            ops += 1
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.extend(node.items)
        elif isinstance(node, (ColumnRef, Literal)):
            continue
    return ops, memcmp


def _merged_column(outer, inner, name):
    """Column arrays under merged-batch precedence (inner overrides)."""
    if inner.has_column(name):
        return inner.column(name)
    if outer.has_column(name):
        return outer.column(name)
    return None


def _edge_mask(edges, outer, inner):
    """Vectorized join-edge equality over aligned outer/inner batches.

    A missing column or a NULL on either side fails the edge — the
    semantics of the row engine's ``merged.get(...) is None`` check.
    """
    n = len(outer)
    mask = np.ones(n, dtype=bool)
    for edge in edges:
        left = _merged_column(outer, inner,
                              f"{edge.left_alias}.{edge.left_column}")
        right = _merged_column(outer, inner,
                               f"{edge.right_alias}.{edge.right_column}")
        if left is None or right is None:
            mask[:] = False
            continue
        eq = np.asarray(left[0] == right[0])
        if eq.shape != (n,):
            eq = np.broadcast_to(eq, (n,)).copy()
        if left[1] is not None:
            eq = eq & ~left[1]
        if right[1] is not None:
            eq = eq & ~right[1]
        mask &= eq
    return mask


class PipelineExecutor:
    """Executes a sequence of :class:`TableAccess` stages over batches."""

    def __init__(self, catalog, config, counters):
        self.catalog = catalog
        self.config = config
        self.counters = counters
        self._row_bytes = {}          # alias -> materialized bytes per row
        #: Per-stage trace: (alias, rows after the stage) in order — the
        #: intermediate-result counts Table 3 correlates with runtimes.
        self.stage_trace = []
        if config.block_cache_bytes > 0:
            from repro.lsm.cache import BlockCache
            self.block_cache = BlockCache(config.block_cache_bytes)
        else:
            self.block_cache = None

    def _stats(self):
        """A ReadStats wired to this executor's block cache."""
        stats = ReadStats()
        stats.cache = self.block_cache
        return stats

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, entries, tables, residual_conjuncts=(), input_rows=None,
            input_row_bytes=0, input_aliases=(), driving_shard=None):
        """Execute stages over ``entries``.

        ``tables`` maps alias -> table name (from the QuerySpec).
        ``input_rows`` seeds the pipeline (host side of a split receives
        the device's intermediate results) as a :class:`ColumnBatch` —
        a legacy list of dict rows is converted; when None, the first
        entry is the driving table.  ``input_aliases`` names the aliases
        already joined into the seed rows so residual predicates bind
        correctly.  ``driving_shard`` (a
        :class:`repro.cluster.TableShard`-like object) restricts the
        driving table to one partition: range shards push primary-key
        bounds into the scan, hash shards filter rows on shard
        membership before any predicate work is charged.  Inner probes
        stay unrestricted — the cluster's storage is mirrored, so
        partition-local prefixes see every join partner.

        Returns ``(batch, row_bytes)`` where ``row_bytes`` is the
        materialized size of one output row (feeds transfer volumes and
        the next fragment's buffer math).
        """
        self._tables = tables
        pending_residual = list(residual_conjuncts)
        if input_rows is not None:
            if isinstance(input_rows, ColumnBatch):
                batch = input_rows
            else:
                batch = ColumnBatch.from_rows(list(input_rows))
            row_bytes = input_row_bytes
            available = set(input_aliases)
            stages = entries
        else:
            if not entries:
                raise ExecutionError("pipeline needs at least one stage")
            batch, row_bytes = self._driving(entries[0], shard=driving_shard)
            available = {entries[0].alias}
            batch, pending_residual = self._apply_residual(
                batch, pending_residual, available)
            self.stage_trace.append((entries[0].alias, len(batch)))
            stages = entries[1:]

        for entry in stages:
            batch, row_bytes = self._join(batch, row_bytes, entry)
            available.add(entry.alias)
            batch, pending_residual = self._apply_residual(
                batch, pending_residual, available)
            self.stage_trace.append((entry.alias, len(batch)))
            if self.config.max_rows and len(batch) > self.config.max_rows:
                raise ExecutionError(
                    f"intermediate result exceeded {self.config.max_rows} rows")
        if pending_residual:
            # Residuals referencing aliases outside this fragment are the
            # caller's responsibility (host applies them after the merge).
            pass
        return batch, row_bytes

    # ------------------------------------------------------------------
    # Per-entry decode planning
    # ------------------------------------------------------------------
    def _decode_plan(self, entry):
        """(needed columns, qualified projection names) for one entry.

        ``needed`` covers the entry's projection, its local filter, and
        its join columns so the partial decode suffices for everything
        the stage evaluates.
        """
        table = self.catalog.table(entry.table_name)
        needed = set(entry.projection or table.schema.column_names)
        if entry.local_filter is not None:
            for ref in entry.local_filter.column_refs():
                if ref.alias == entry.alias:
                    needed.add(ref.column)
        for edge in entry.join_edges:
            needed.add(edge.column_of(entry.alias))
        needed = sorted(needed)
        projection = entry.projection or table.schema.column_names
        qualified_projection = [f"{entry.alias}.{name}"
                                for name in projection]
        exact = set(projection) == set(needed)
        return needed, qualified_projection, exact

    # ------------------------------------------------------------------
    # Driving table
    # ------------------------------------------------------------------
    def _driving(self, entry, shard=None):
        table = self.catalog.table(entry.table_name)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        needed, q_projection, exact = self._decode_plan(entry)
        if shard is not None:
            # Shard routing checks need the primary key decoded; keep the
            # projection itself untouched (``exact`` goes False so the
            # extra column is projected away again).
            pk = table.schema.primary_key
            if pk not in needed:
                needed = sorted(set(needed) | {pk})
                exact = False
        stats = self._stats()
        row_bytes = self._materialized_bytes(entry)
        counters = self.counters
        if entry.access_path is AccessPath.SECONDARY_LOOKUP:
            build = table.codec.batch_projector(needed, entry.alias)
            if shard is not None and shard.is_empty:
                batch = build([])
            else:
                raws = []
                for value in self._index_constants(entry):
                    counters.index_seeks += 1
                    raws.extend(table.index_lookup_raw(
                        entry.index_column, value, stats=stats))
                batch = build(raws)
                if shard is not None:
                    pk_name = f"{entry.alias}.{table.schema.primary_key}"
                    values, _mask = batch.column(pk_name)
                    # Shard routing is free: rows of other shards are
                    # dropped before any predicate work is charged.
                    from repro.columns import shard_membership
                    batch = batch.select(shard_membership(shard, values))
        else:
            lo = hi = None
            if entry.access_path is AccessPath.PK_RANGE:
                lo, hi = self._pk_bounds(entry)
            batch = table.scan_batch(ScanRequest(
                columns=tuple(needed), pk_lo=lo, pk_hi=hi, stats=stats,
                qualified_as=entry.alias, shard=shard))
        n = len(batch)
        counters.records_evaluated += n
        counters.predicate_ops += ops * n
        counters.memcmp_bytes += memcmp * n
        if entry.local_filter is not None and n:
            batch = batch.select(eval_mask(entry.local_filter, batch))
        counters.bytes_materialized += row_bytes * len(batch)
        if not exact:
            batch = batch.project(q_projection)
        counters.absorb_read_stats(stats)
        self._row_bytes[entry.alias] = row_bytes
        return batch, row_bytes

    def _index_constants(self, entry):
        """Constants bound to the driving entry's index column."""
        values = []
        for conjunct in conjuncts(entry.local_filter):
            if (isinstance(conjunct, Comparison) and conjunct.op == "="
                    and isinstance(conjunct.left, ColumnRef)
                    and conjunct.left.column == entry.index_column
                    and isinstance(conjunct.right, Literal)):
                values.append(conjunct.right.value)
            elif (isinstance(conjunct, InList) and not conjunct.negated
                    and isinstance(conjunct.operand, ColumnRef)
                    and conjunct.operand.column == entry.index_column):
                values.extend(conjunct.values)
        if not values:
            raise ExecutionError(
                f"no constant bound to index column {entry.index_column!r}")
        return values

    def _pk_bounds(self, entry):
        lo = hi = None
        pk = self.catalog.table(entry.table_name).schema.primary_key
        for conjunct in conjuncts(entry.local_filter):
            if not (isinstance(conjunct, Comparison)
                    and isinstance(conjunct.left, ColumnRef)
                    and conjunct.left.column == pk
                    and isinstance(conjunct.right, Literal)):
                continue
            value = conjunct.right.value
            if conjunct.op in ("=",):
                lo = hi = value
            elif conjunct.op in ("<", "<="):
                bound = value if conjunct.op == "<=" else value - 1
                hi = bound if hi is None else min(hi, bound)
            elif conjunct.op in (">", ">="):
                bound = value if conjunct.op == ">=" else value + 1
                lo = bound if lo is None else max(lo, bound)
        return lo, hi

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join(self, outer, outer_row_bytes, entry):
        if entry.join_algorithm in (JoinAlgorithm.BNLJI, JoinAlgorithm.NLJ) \
                and entry.index_column is not None:
            return self._join_bnlji(outer, outer_row_bytes, entry)
        if entry.join_algorithm is JoinAlgorithm.GHJ:
            return self._join_ghj(outer, outer_row_bytes, entry)
        if entry.join_algorithm is JoinAlgorithm.NLJ:
            return self._join_nlj(outer, outer_row_bytes, entry)
        return self._join_bnlj(outer, outer_row_bytes, entry)

    def _inner_filter(self, entry, inner):
        """Local-filter pass/fail mask over a decoded inner batch."""
        if entry.local_filter is None:
            return np.ones(len(inner), dtype=bool)
        return eval_mask(entry.local_filter, inner)

    def _join_bnlji(self, outer, outer_row_bytes, entry):
        """Indexed block nested loop: seek the inner per outer row."""
        table = self.catalog.table(entry.table_name)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        index_edge = None
        extra_edges = []
        for edge in entry.join_edges:
            if (edge.column_of(entry.alias) == entry.index_column
                    and index_edge is None):
                index_edge = edge
            else:
                extra_edges.append(edge)
        if index_edge is None:
            raise ExecutionError(
                f"{entry.alias}: BNLJI without an edge on the index column")
        other_alias, other_column = index_edge.other(entry.alias)
        outer_key = f"{other_alias}.{other_column}"
        use_pk = entry.index_column == table.schema.primary_key
        needed, q_projection, exact = self._decode_plan(entry)

        stats = self._stats()
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters
        # Seeks run row-at-a-time in outer order — the LSM access order
        # (and therefore block-cache state) must match the row engine —
        # but matched records are collected raw and decoded in one pass.
        keys = outer.column_list_or_none(outer_key)
        outer_idx = []
        raws = []
        if use_pk:
            for i, value in enumerate(keys):
                if value is None:
                    continue
                counters.index_seeks += 1
                raw = table.get_record(value, stats=stats)
                if raw is not None:
                    outer_idx.append(i)
                    raws.append(raw)
        else:
            for i, value in enumerate(keys):
                if value is None:
                    continue
                counters.index_seeks += 1
                for raw in table.index_lookup_raw(entry.index_column, value,
                                                  stats=stats):
                    outer_idx.append(i)
                    raws.append(raw)
        inner = table.codec.batch_projector(needed, entry.alias)(raws)
        m = len(inner)
        counters.records_evaluated += m
        counters.predicate_ops += ops * m
        counters.memcmp_bytes += memcmp * m
        keep = self._inner_filter(entry, inner)
        inner_proj = inner if exact else inner.project(q_projection)
        aligned_outer = outer.take(outer_idx)
        if extra_edges:
            keep = keep & _edge_mask(extra_edges, aligned_outer, inner_proj)
        result = aligned_outer.select(keep).merged(inner_proj.select(keep))
        counters.bytes_materialized += out_bytes * len(result)
        counters.absorb_read_stats(stats)
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_bnlj(self, outer, outer_row_bytes, entry):
        """Block nested loop with a hash table built in the join buffer.

        The outer is cut into blocks that fit the join buffer; the inner
        is physically re-scanned per block (the LSM counters therefore
        grow with block count — the buffer-pressure effect the paper
        reports for small buffers) but decoded and filtered only once.
        """
        table = self.catalog.table(entry.table_name)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]
        build = table.codec.batch_projector(needed, entry.alias)

        per_row = max(1, outer_row_bytes)
        rows_per_block = max(1, self.config.join_buffer_bytes // per_row)
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters

        n_outer = len(outer)
        outer_tuples = self._key_tuples(outer, outer_keys)
        inner_proj = None
        probe = None
        out_outer = []
        out_inner = []
        for start in range(0, max(n_outer, 1), rows_per_block):
            stop = min(start + rows_per_block, n_outer)
            if stop <= start:
                break
            hash_table = {}
            built = 0
            for i in range(start, stop):
                key = outer_tuples[i]
                if None in key:
                    continue
                hash_table.setdefault(key, []).append(i)
                built += 1
            counters.hash_probes += built
            counters.bytes_materialized += (stop - start) * per_row
            raws = self._inner_pass(table, entry)
            if inner_proj is None:
                inner = build(raws)
                keep = self._inner_filter(entry, inner)
                inner_proj = inner if exact else inner.project(q_projection)
                key_lists = [inner.column_list_or_none(column)
                             for column in inner_columns]
                probe = []
                for j in np.flatnonzero(keep).tolist():
                    key = tuple(lst[j] for lst in key_lists)
                    if None in key:
                        continue
                    probe.append((j, key))
            m = len(raws)
            counters.records_evaluated += m
            counters.predicate_ops += ops * m
            counters.memcmp_bytes += memcmp * m
            counters.hash_probes += len(probe)
            for j, key in probe:
                partners = hash_table.get(key)
                if not partners:
                    continue
                for i in partners:
                    out_outer.append(i)
                    out_inner.append(j)
        if inner_proj is None:
            inner = build([])
            inner_proj = inner if exact else inner.project(q_projection)
        result = outer.take(out_outer).merged(inner_proj.take(out_inner))
        counters.bytes_materialized += out_bytes * len(result)
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_nlj(self, outer, outer_row_bytes, entry):
        """Classical nested loop join: re-scan the inner per outer row.

        Present for completeness (nKV offers it, §2.1); the optimizer
        never picks it, but forced plans can.
        """
        table = self.catalog.table(entry.table_name)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]
        build = table.codec.batch_projector(needed, entry.alias)
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters
        outer_tuples = self._key_tuples(outer, outer_keys)
        inner_proj = None
        matches = None
        out_outer = []
        out_inner = []
        for i, key in enumerate(outer_tuples):
            if None in key:
                continue
            raws = self._inner_pass(table, entry)
            if inner_proj is None:
                inner = build(raws)
                keep = self._inner_filter(entry, inner)
                inner_proj = inner if exact else inner.project(q_projection)
                key_lists = [inner.column_list_or_none(column)
                             for column in inner_columns]
                matches = {}
                for j in np.flatnonzero(keep).tolist():
                    inner_key = tuple(lst[j] for lst in key_lists)
                    if None in inner_key:
                        continue
                    matches.setdefault(inner_key, []).append(j)
            m = len(raws)
            counters.records_evaluated += m
            counters.predicate_ops += (ops + len(edges)) * m
            counters.memcmp_bytes += memcmp * m
            for j in matches.get(key, ()):
                out_outer.append(i)
                out_inner.append(j)
        if inner_proj is None:
            inner = build([])
            inner_proj = inner if exact else inner.project(q_projection)
        result = outer.take(out_outer).merged(inner_proj.take(out_inner))
        counters.bytes_materialized += out_bytes * len(result)
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_ghj(self, outer, outer_row_bytes, entry):
        """Grace hash join: partition both inputs, then hash per pair.

        Partitions are materialized (on-device they would be persisted
        to flash, §2.1 result-set management), charged as memcpy bytes,
        and each pair joins with one in-buffer hash table.
        """
        table = self.catalog.table(entry.table_name)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]
        build = table.codec.batch_projector(needed, entry.alias)
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters

        per_row = max(1, outer_row_bytes)
        outer_bytes_total = len(outer) * per_row
        partitions = max(1, -(-outer_bytes_total
                              // self.config.join_buffer_bytes))

        outer_tuples = self._key_tuples(outer, outer_keys)
        outer_parts = [[] for _ in range(partitions)]
        built = 0
        for i, key in enumerate(outer_tuples):
            if None in key:
                continue
            built += 1
            part = stable_hash(key) % partitions if partitions > 1 else 0
            outer_parts[part].append((key, i))
        counters.hash_probes += built
        counters.bytes_materialized += built * per_row

        raws = self._inner_pass(table, entry)
        inner = build(raws)
        m = len(inner)
        counters.records_evaluated += m
        counters.predicate_ops += ops * m
        counters.memcmp_bytes += memcmp * m
        keep = self._inner_filter(entry, inner)
        inner_proj = inner if exact else inner.project(q_projection)
        key_lists = [inner.column_list_or_none(column)
                     for column in inner_columns]
        inner_parts = [[] for _ in range(partitions)]
        passed = 0
        for j in np.flatnonzero(keep).tolist():
            key = tuple(lst[j] for lst in key_lists)
            if None in key:
                continue
            passed += 1
            part = stable_hash(key) % partitions if partitions > 1 else 0
            inner_parts[part].append((key, j))
        counters.hash_probes += passed
        counters.bytes_materialized += inner_bytes * passed

        out_outer = []
        out_inner = []
        for outer_part, inner_part in zip(outer_parts, inner_parts):
            hash_table = {}
            for key, i in outer_part:
                hash_table.setdefault(key, []).append(i)
            counters.hash_probes += len(inner_part)
            for key, j in inner_part:
                partners = hash_table.get(key)
                if not partners:
                    continue
                for i in partners:
                    out_outer.append(i)
                    out_inner.append(j)
        result = outer.take(out_outer).merged(inner_proj.take(out_inner))
        counters.bytes_materialized += out_bytes * len(result)
        counters.output_rows += len(result)
        return result, out_bytes

    @staticmethod
    def _key_tuples(batch, names):
        """Per-row join-key tuples as Python values (None = NULL)."""
        if not names:
            return [()] * len(batch)
        key_lists = [batch.column_list_or_none(name) for name in names]
        return list(zip(*key_lists))

    def _inner_pass(self, table, entry):
        """Raw record bytes of the inner table for one join pass.

        One physical LSM pass (same access order and read stats as the
        row engine's per-block rescan); decode happens once, outside.
        """
        stats = self._stats()
        raws = []
        if (entry.access_path is AccessPath.SECONDARY_LOOKUP
                and entry.index_column is not None
                and entry.index_column not in
                [edge.column_of(entry.alias) for edge in entry.join_edges]):
            for value in self._index_constants(entry):
                self.counters.index_seeks += 1
                raws.extend(table.index_lookup_raw(entry.index_column, value,
                                                   stats=stats))
        else:
            raws.extend(table.scan_raw(ScanRequest(stats=stats)))
        self.counters.absorb_read_stats(stats)
        return raws

    # ------------------------------------------------------------------
    # Residual predicates
    # ------------------------------------------------------------------
    def _apply_residual(self, batch, pending, available):
        ready = [conjunct for conjunct in pending
                 if conjunct.aliases() <= available]
        if not ready:
            return batch, pending
        remaining = [conjunct for conjunct in pending
                     if conjunct not in ready]
        total_ops = 0
        total_memcmp = 0
        for conjunct in ready:
            ops, memcmp = predicate_cost(conjunct, self.catalog, self._tables)
            total_ops += ops
            total_memcmp += memcmp
        n = len(batch)
        if n:
            self.counters.records_evaluated += n
            self.counters.predicate_ops += total_ops * n
            self.counters.memcmp_bytes += total_memcmp * n
            keep = np.ones(n, dtype=bool)
            for conjunct in ready:
                keep &= eval_mask(conjunct, batch)
            batch = batch.select(keep)
        return batch, remaining

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _materialized_bytes(self, entry):
        """Bytes one projected row of this table occupies in caches."""
        if self.config.pointer_cache:
            return _POINTER_BYTES * max(1, entry.projection_field_count)
        return max(4, entry.projection_bytes)


def finalize(rows, select_items, group_by, counters, limit=None):
    """Final projection / aggregation / grouping stage.

    ``rows`` may be a :class:`ColumnBatch`, a list of batches (a split's
    per-batch fragments — concatenated here), or a legacy list of dict
    rows (delegated to :func:`finalize_rows`).  Returns
    ``(result_rows, column_names)`` with plain-Python dict rows either
    way.
    """
    if isinstance(rows, ColumnBatch):
        return _finalize_batch(rows, select_items, group_by, counters, limit)
    rows = list(rows)
    if rows and all(isinstance(item, ColumnBatch) for item in rows):
        return _finalize_batch(ColumnBatch.concat(rows), select_items,
                               group_by, counters, limit)
    return finalize_rows(rows, select_items, group_by, counters, limit)


def _finalize_batch(batch, select_items, group_by, counters, limit=None):
    """Columnar finalize — counter-identical to :func:`finalize_rows`."""
    has_aggregates = any(item.aggregate for item in select_items)
    columns = [item.output_name for item in select_items]
    n = len(batch)

    if not has_aggregates and not group_by:
        star = any(item.expr == "*" for item in select_items)
        counters.records_evaluated += n
        limited = batch if limit is None else batch[:limit]
        if star:
            output = limited.rows()
            counters.output_rows += len(output)
            if output:
                columns = sorted(batch.schema)
            return output, columns
        value_lists = [(item.output_name,
                        limited.column_list_or_none(item.expr.qualified))
                       for item in select_items]
        output = [{name: values[i] for name, values in value_lists}
                  for i in range(len(limited))]
        counters.output_rows += len(output)
        return output, columns

    key_lists = [batch.column_list_or_none(col.qualified)
                 for col in group_by]
    counters.records_evaluated += n
    counters.hash_probes += n
    groups = {}
    for i in range(n):
        groups.setdefault(tuple(lst[i] for lst in key_lists),
                          []).append(i)
    if not groups and has_aggregates and not group_by:
        groups[()] = []

    value_lists = {}
    for item in select_items:
        if item.expr != "*":
            name = item.expr.qualified
            if name not in value_lists:
                value_lists[name] = batch.column_list_or_none(name)

    output = []
    for key, members in groups.items():
        result = {}
        for col, value in zip(group_by, key):
            result[col.qualified] = value
        for item in select_items:
            if not item.aggregate:
                values = value_lists[item.expr.qualified]
                result[item.output_name] = (values[members[0]]
                                            if members else None)
                continue
            if item.expr == "*":
                values = members
            else:
                column = value_lists[item.expr.qualified]
                values = [column[i] for i in members
                          if column[i] is not None]
            counters.records_evaluated += len(members)
            result[item.output_name] = _aggregate(item.aggregate, values,
                                                  item.expr == "*", members)
        output.append(result)
    if limit is not None:
        output = output[:limit]
    counters.output_rows += len(output)
    if group_by:
        columns = [col.qualified for col in group_by] + columns
    return output, columns


def finalize_rows(rows, select_items, group_by, counters, limit=None):
    """Row-at-a-time finalize over dict rows (the retained reference).

    Kept for legacy callers that hand in lists of dicts and as the
    equivalence baseline for the columnar path.
    """
    has_aggregates = any(item.aggregate for item in select_items)
    columns = [item.output_name for item in select_items]

    if not has_aggregates and not group_by:
        star = any(item.expr == "*" for item in select_items)
        output = []
        for row in rows:
            counters.records_evaluated += 1
            if star:
                output.append(dict(row))
            else:
                output.append({item.output_name: row.get(item.expr.qualified)
                               for item in select_items})
        if limit is not None:
            output = output[:limit]
        counters.output_rows += len(output)
        if star and output:
            columns = sorted(output[0])
        return output, columns

    def group_key(row):
        return tuple(row.get(col.qualified) for col in group_by)

    groups = {}
    for row in rows:
        counters.records_evaluated += 1
        counters.hash_probes += 1
        groups.setdefault(group_key(row), []).append(row)
    if not groups and has_aggregates and not group_by:
        groups[()] = []

    output = []
    for key, members in groups.items():
        result = {}
        for col, value in zip(group_by, key):
            result[col.qualified] = value
        for item in select_items:
            if not item.aggregate:
                source = members[0] if members else {}
                result[item.output_name] = source.get(item.expr.qualified)
                continue
            if item.expr == "*":
                values = members
            else:
                values = [row.get(item.expr.qualified) for row in members
                          if row.get(item.expr.qualified) is not None]
            counters.records_evaluated += len(members)
            result[item.output_name] = _aggregate(item.aggregate, values,
                                                  item.expr == "*", members)
        output.append(result)
    if limit is not None:
        output = output[:limit]
    counters.output_rows += len(output)
    if group_by:
        columns = [col.qualified for col in group_by] + columns
    return output, columns


def _aggregate(name, values, star, members):
    if name == "count":
        return len(members) if star else len(values)
    if not values:
        return None
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {name!r}")
