"""Adaptive mid-query re-planning for single-query execution.

:class:`AdaptiveRunner` wraps an environment's planner + stack runner
with the feedback loop of docs/adaptivity.md: plan under the EWMA
cardinality correction learned from prior executions of the same SQL,
watch every pipeline breaker while the plan runs, and — when the
observed intermediate-result cardinality is off by more than the policy
threshold — cancel the offload cooperatively and re-plan the remaining
QEP with the observed ratio pinned.  A revision either *shifts* the
split point (restart at the revised Hk) or *sheds* the query to the
host; the cancelled attempt's elapsed time is charged to the final
report's ``total_time`` and recorded in its ``adaptivity`` audit block.

The concurrent analogue — re-planning under load, with saturation
shedding — lives in :class:`repro.sched.WorkloadScheduler`
(``correction=`` / ``replan=``); this module is the serial driver the
regret bench (:mod:`repro.bench.adaptive`) measures.
"""

from repro.core import (CardinalityFeedback, CostCorrection,
                        ExecutionStrategy, PlanningContext, ReplanPolicy)
from repro.engine.stacks import Stack
from repro.errors import ReplanTriggered, RetriesExhaustedError


class _BreakerMonitor:
    """The ``breaker_hook`` driving one execution attempt.

    Fires at every pipeline breaker (a device batch landing host-side).
    Extrapolates the intermediate-result cardinality from the batches
    observed so far, compares it against the estimate baked into the
    decision, and past the policy threshold asks the decision to
    ``revise(feedback)`` itself.  A revision that changes the placement
    cancels the simulation with reason ``"replan"`` — which makes
    ``run_split`` raise :class:`~repro.errors.ReplanTriggered` — and
    leaves ``revised`` / ``feedback`` / ``estimate`` for the driver.
    """

    def __init__(self, decision, policy, budget):
        self.decision = decision
        self.policy = policy
        self.budget = budget         # revisions this attempt may spend
        self.estimate = None
        self.feedback = None
        self.revised = None
        self.events = []

    def __call__(self, sim, i):
        if self.budget <= 0 or self.revised is not None:
            return
        batches_seen = i + 1
        if batches_seen < self.policy.min_batches:
            return
        estimate = self.decision.estimate_for()
        if estimate.intermediate_rows is None:
            return
        observed_so_far = sum(len(batch)
                              for batch in sim.batches[:batches_seen])
        observed_total = int(round(observed_so_far * sim.n_batches
                                   / batches_seen))
        feedback = CardinalityFeedback(
            observed_rows=observed_total,
            estimated_rows=estimate.intermediate_rows,
            batches_observed=batches_seen,
            batches_total=sim.n_batches,
            raw_rows=estimate.raw_rows,
            at=sim.clock.now)
        if feedback.error < self.policy.error_threshold:
            return
        revised = self.decision.revise(feedback)
        event = {
            "at": sim.clock.now,
            "batches_observed": batches_seen,
            "batches_total": sim.n_batches,
            "observed_rows": observed_total,
            "estimated_rows": estimate.intermediate_rows,
            "error": round(feedback.error, 6),
            "from": self.decision.strategy_name,
            "to": revised.strategy_name,
        }
        self.budget -= 1
        if revised.strategy_name == self.decision.strategy_name:
            # Re-pricing with the observed cardinality still prefers
            # the running plan: audit it, keep going.
            event["action"] = "kept"
            self.events.append(event)
            return
        event["action"] = ("shed-to-host"
                           if revised.strategy is ExecutionStrategy.HOST_ONLY
                           or revised.split_index is None
                           else "shift-split")
        self.events.append(event)
        self.estimate = estimate
        self.feedback = feedback
        self.revised = revised
        sim.cancel(sim.clock.now, reason="replan")


class AdaptiveRunner:
    """Run queries with mid-query re-planning and EWMA cost correction.

    Holds the mutable state the feedback loop accumulates across runs:
    one shared :class:`~repro.core.planning.CostCorrection` keyed by SQL
    text (the plan-cache key), so repeated executions of a misestimated
    statement converge toward the oracle placement.  Stateless otherwise
    — every ``run()`` plans fresh under the current correction.
    """

    def __init__(self, env, policy=None, correction=None):
        self.env = env
        self.runner = env.runner
        self.planner = env.planner
        self.policy = policy if policy is not None else ReplanPolicy()
        self.correction = (correction if correction is not None
                           else CostCorrection())

    def run(self, query, ctx=None):
        """Execute SQL text adaptively; returns an ExecutionReport.

        The report's always-present ``adaptivity`` block records the
        audit: how many revisions fired, each breaker observation, the
        wasted (cancelled-attempt) time already folded into
        ``total_time``, and the correction factor the *next* run of the
        same SQL will plan under.
        """
        key = query if isinstance(query, str) else None
        plan = self.runner.plan(query) if isinstance(query, str) else query
        context = PlanningContext(correction=self.correction, key=key,
                                  replan=self.policy)
        decision = self.planner.decide(plan, context=context)
        current = decision
        events = []
        wasted = 0.0
        observed_pair = None     # (raw_rows estimate, observed rows)
        while True:
            if (current.strategy is ExecutionStrategy.HOST_ONLY
                    or current.split_index is None):
                report = self.runner.run(plan, Stack.NATIVE, ctx=ctx)
                break
            monitor = _BreakerMonitor(
                current, self.policy,
                budget=self.policy.max_replans - len(events))
            try:
                report = self.runner.cooperative.run_split(
                    plan, current.split_index, ctx,
                    breaker_hook=monitor)
                events.extend(monitor.events)
                estimate = current.estimate_for()
                if estimate.raw_rows is not None:
                    observed_pair = (estimate.raw_rows,
                                     report.intermediate_rows)
                break
            except ReplanTriggered as signal:
                events.extend(monitor.events)
                wasted += signal.elapsed
                observed_pair = (monitor.estimate.raw_rows,
                                 monitor.feedback.observed_rows)
                current = monitor.revised
            except RetriesExhaustedError as failure:
                # Graceful degradation, mirroring StackRunner's host
                # fallback: correct rows, honest timeline.
                events.extend(monitor.events)
                report = self.runner.run(plan, Stack.NATIVE, ctx=ctx)
                report.fallback_from = failure.strategy
                report.retries = failure.retries
                report.faults_injected = dict(failure.faults_injected)
                report.wasted_device_time = failure.wasted_time
                report.total_time += failure.wasted_time
                break
        if (key is not None and observed_pair is not None
                and observed_pair[0] is not None):
            self.correction.observe(key, *observed_pair)
        # The cancelled attempts ran before the final plan started.
        report.total_time += wasted
        report.adaptivity = {
            "enabled": True,
            "replans": len(events),
            "correction_factor": (self.correction.factor(key)
                                  if key is not None else 1.0),
            "wasted_time": wasted,
            "events": events,
        }
        return report
