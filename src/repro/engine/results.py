"""Query results and execution reports.

An :class:`ExecutionReport` carries everything the paper's evaluation
charts need: total simulated time, per-side work breakdowns (Table 4),
host wait / device stall accounting, the batch timeline (Fig 17), and
the functional result rows for correctness checks.
"""

from dataclasses import dataclass, field

from repro.engine.counters import WorkCounters
from repro.engine.timing import TimingBreakdown


@dataclass
class QueryResult:
    """The functional answer of a query.

    ``rows`` is a list of plain-Python dicts.  Inside the engine,
    operators exchange :class:`repro.columns.ColumnBatch` values;
    ``finalize`` materialises this row view from the final batch (via
    ``ColumnBatch.rows()``), so report row samples stay JSON-friendly
    dicts regardless of the columnar execution underneath
    (``docs/engine.md``).
    """

    rows: list
    columns: list

    def __len__(self):
        return len(self.rows)

    def sorted_rows(self):
        """Rows in a canonical order (for comparing strategies)."""
        def row_key(row):
            return tuple(
                (value is None, str(type(value)), value if value is not None
                 else "") for value in
                (row.get(column) for column in self.columns))
        return sorted(self.rows, key=row_key)

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError("result is not scalar")
        return self.rows[0][self.columns[0]]


@dataclass
class TimelinePhase:
    """One activity interval of one actor on the simulated timeline."""

    actor: str        # 'host' | 'device'
    kind: str         # 'setup' | 'compute' | 'transfer' | 'wait' | 'stall'
    start: float
    end: float
    label: str = ""
    resource: str = ""  # BusyResource occupied for the interval, if any

    @property
    def duration(self):
        """Length of the interval."""
        return self.end - self.start


@dataclass
class ExecutionReport:
    """Full account of one query execution on one stack/strategy."""

    strategy: str
    total_time: float
    result: QueryResult
    split_index: int = None            # k of Hk for hybrid runs
    # Work
    host_counters: WorkCounters = field(default_factory=WorkCounters)
    device_counters: WorkCounters = field(default_factory=WorkCounters)
    host_breakdown: TimingBreakdown = field(default_factory=TimingBreakdown)
    device_breakdown: TimingBreakdown = field(default_factory=TimingBreakdown)
    # Phases (host side, Table 4 left)
    setup_time: float = 0.0
    host_wait_initial: float = 0.0
    host_wait_other: float = 0.0
    transfer_time: float = 0.0
    host_processing_time: float = 0.0
    # Device side
    device_busy_time: float = 0.0
    device_stall_time: float = 0.0
    # Cooperative details
    batches: int = 0
    intermediate_rows: int = 0
    intermediate_bytes: int = 0
    timeline: list = field(default_factory=list)
    #: {resource_name: {busy_time, wait_time, requests, utilization}} for
    #: the BusyResources (PCIe link, device core, host CPU) the run used.
    resource_stats: dict = field(default_factory=dict)
    #: Flat {metric: number} summary from the run's Tracer (span counts,
    #: per-track and per-category span time); empty for untraced runs.
    trace_metrics: dict = field(default_factory=dict)
    # Resilience (fault injection / graceful degradation, docs/robustness.md)
    #: Strategy label the run degraded from (e.g. "H3") when the result
    #: was produced by the host-only fallback; None for direct runs.
    fallback_from: str = None
    #: Failed NDP command submissions that were retried (or abandoned).
    retries: int = 0
    #: {fault_kind: count} injected by the run's FaultInjector.
    faults_injected: dict = field(default_factory=dict)
    #: Simulated seconds burnt on the abandoned/retried offload attempts.
    wasted_device_time: float = 0.0
    #: Simulated seconds admission control waited for device buffers.
    admission_wait_time: float = 0.0
    #: Multi-device scatter-gather details (docs/cluster.md): device
    #: count, partitioner, per-partition placements and re-executions.
    #: Empty for single-device runs.
    cluster: dict = field(default_factory=dict)
    #: Mid-query re-planning audit (docs/adaptivity.md): whether
    #: adaptivity was enabled, how often the run revised its decision,
    #: the cancelled attempts' wasted time, and one event per breaker
    #: check that acted.  Empty for non-adaptive runs; ``to_dict``
    #: normalises it to the always-present v5 ``adaptivity`` block.
    adaptivity: dict = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    @property
    def host_wait_total(self):
        """All host waiting (initial + subsequent)."""
        return self.host_wait_initial + self.host_wait_other

    def host_stage_shares(self):
        """Host stage breakdown in percent (Table 4 left).

        Stages can overlap on the wall clock (a transfer may hide under a
        wait), so shares are normalised over the *stage sum* — they always
        add up to 100% — rather than over ``total_time``, which let them
        sum past 100%.
        """
        stages = {
            "ndp_setup": self.setup_time,
            "wait_initial": self.host_wait_initial,
            "wait_subsequent": self.host_wait_other,
            "result_transfer": self.transfer_time,
            "processing": self.host_processing_time,
            "device_stall": self.device_stall_time,
        }
        stage_sum = sum(stages.values())
        if stage_sum <= 0:
            return {}
        return {name: 100.0 * value / stage_sum
                for name, value in stages.items()}

    def device_operation_shares(self):
        """Device operation breakdown in percent (Table 4 right)."""
        return self.device_breakdown.percentages()

    def summary(self):
        """One-line human-readable summary."""
        return (f"{self.strategy}: {self.total_time * 1e3:.3f} ms, "
                f"{len(self.result)} row(s), batches={self.batches}, "
                f"host_wait={self.host_wait_total * 1e3:.3f} ms, "
                f"device_stall={self.device_stall_time * 1e3:.3f} ms")

    #: Version of the :meth:`to_dict` payload layout.  Bump whenever a
    #: key is added, removed or changes meaning; ``docs/observability.md``
    #: documents each version.  v2: ``schema_version`` added, the
    #: ``resilience`` block is always present (zeros for clean runs)
    #: instead of appearing only on degraded ones.  v3: the ``cluster``
    #: block is always present (empty ``{}`` for single-device runs;
    #: populated by the scatter-gather executor, docs/cluster.md).
    #: v4: cluster reports carry an always-present
    #: ``cluster["speculation"]`` sub-block (policy, clone events,
    #: wasted time — docs/robustness.md); single-device payloads are
    #: unchanged apart from this version number, and a NULL
    #: deadline/speculation config reproduces v3 reports byte for byte
    #: modulo ``schema_version`` (pinned by the golden-report test).
    #: v5: an always-present ``adaptivity`` block audits mid-query
    #: re-planning (enabled flag, replan count, wasted time, correction
    #: factor, per-event trail — docs/adaptivity.md); non-adaptive runs
    #: carry the null block and are otherwise byte-identical to v4
    #: (adaptivity off ≡ no breaker hook, pinned by the golden tests).
    SCHEMA_VERSION = 5

    def to_dict(self, include_rows=False, include_timeline=False):
        """JSON-serialisable view of the report (for tooling/logs).

        The payload layout is stable per :attr:`SCHEMA_VERSION`: every
        key below is always present (``resilience`` included — all-zero
        for fault-free runs), so consumers never need existence checks;
        only ``rows``/``columns``/``timeline`` are opt-in via the flags.
        """
        payload = {
            "schema_version": self.SCHEMA_VERSION,
            "strategy": self.strategy,
            "split_index": self.split_index,
            "total_time": self.total_time,
            "result_rows": len(self.result),
            "setup_time": self.setup_time,
            "host_wait_initial": self.host_wait_initial,
            "host_wait_other": self.host_wait_other,
            "transfer_time": self.transfer_time,
            "host_processing_time": self.host_processing_time,
            "device_busy_time": self.device_busy_time,
            "device_stall_time": self.device_stall_time,
            "batches": self.batches,
            "intermediate_rows": self.intermediate_rows,
            "intermediate_bytes": self.intermediate_bytes,
            "host_counters": self.host_counters.as_dict(),
            "device_counters": self.device_counters.as_dict(),
            "host_stage_shares": self.host_stage_shares(),
            "device_operation_shares": self.device_operation_shares(),
            "resource_stats": self.resource_stats,
            "trace_metrics": dict(self.trace_metrics),
            "notes": {key: value for key, value in self.notes.items()
                      if isinstance(value, (str, int, float, bool, list))},
        }
        payload["cluster"] = dict(self.cluster)
        adaptivity = {
            "enabled": False,
            "replans": 0,
            "correction_factor": 1.0,
            "wasted_time": 0.0,
            "events": [],
        }
        adaptivity.update(self.adaptivity)
        payload["adaptivity"] = adaptivity
        payload["resilience"] = {
            "fallback_from": self.fallback_from,
            "retries": self.retries,
            "faults_injected": dict(self.faults_injected),
            "wasted_device_time": self.wasted_device_time,
            "admission_wait_time": self.admission_wait_time,
        }
        if include_rows:
            payload["rows"] = self.result.rows
            payload["columns"] = self.result.columns
        if include_timeline:
            payload["timeline"] = [
                {"actor": p.actor, "kind": p.kind, "start": p.start,
                 "end": p.end, "label": p.label, "resource": p.resource}
                for p in self.timeline]
        return payload
