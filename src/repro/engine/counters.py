"""Physical work counters.

Operators increment these while executing; the timing model converts
them into simulated seconds.  Categories follow the on-device breakdown
the paper reports in Table 4 (memcmp, internal-key compares, index-block
seeks, selection processing, data-block seeks, flash load, other).
"""

from dataclasses import dataclass, fields


@dataclass
class WorkCounters:
    """Aggregated physical work of one execution (or one batch)."""

    # I/O
    flash_bytes_read: int = 0         # bytes pulled off flash
    index_block_reads: int = 0        # sparse-index block fetches
    data_block_reads: int = 0         # data-block fetches
    # Compute
    records_evaluated: int = 0        # predicate evaluations over records
    predicate_ops: int = 0            # primitive comparison ops
    memcmp_bytes: int = 0             # bytes compared (LIKE / string ops)
    key_comparisons: int = 0          # internal key compares (LSM seeks)
    hash_probes: int = 0              # hash-table build+probe operations
    index_seeks: int = 0              # point seeks through an index
    # Data movement inside the engine
    bytes_materialized: int = 0       # memcpy into caches/buffers
    block_cache_hits: int = 0         # block reads served from cache
    # Output
    output_rows: int = 0
    output_bytes: int = 0

    def merge(self, other):
        """Accumulate another counter set into this one."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))
        return self

    def absorb_read_stats(self, stats):
        """Fold an LSM :class:`ReadStats` into these counters."""
        self.flash_bytes_read += stats.bytes_read
        self.index_block_reads += stats.index_blocks_read
        self.data_block_reads += stats.data_blocks_read
        self.key_comparisons += stats.key_comparisons
        self.block_cache_hits += stats.cache_hits
        return self

    def copy(self):
        """An independent copy."""
        duplicate = WorkCounters()
        duplicate.merge(self)
        return duplicate

    def as_dict(self):
        """Plain-dict view for reporting."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def total_events(self):
        """Rough magnitude of work, for sanity checks in tests."""
        return sum(self.as_dict().values())
