"""Retained row-at-a-time reference executor.

This module preserves the pre-columnar pipeline verbatim — dict rows,
``for row in source`` inner loops, per-row counter increments — migrated
only to the :class:`~repro.relational.scan.ScanRequest` call surface.
It is the equivalence baseline the columnar
:class:`~repro.engine.pipeline.PipelineExecutor` is tested against
(tests/test_columnar_equivalence.py): for any plan, both executors must
produce identical rows *and* identical :class:`WorkCounters`.

It is not wired into any engine; production execution is columnar.
"""

from repro.engine.pipeline import (_POINTER_BYTES, finalize_rows,
                                   predicate_cost, stable_hash)
from repro.errors import ExecutionError
from repro.lsm.store import ReadStats
from repro.query.ast import ColumnRef, Comparison, InList, Literal, conjuncts
from repro.query.physical import AccessPath, JoinAlgorithm
from repro.relational.scan import ScanRequest

__all__ = ["RowPipelineExecutor", "finalize_rows"]


class RowPipelineExecutor:
    """Row-at-a-time twin of :class:`repro.engine.pipeline.PipelineExecutor`."""

    def __init__(self, catalog, config, counters):
        self.catalog = catalog
        self.config = config
        self.counters = counters
        self._row_bytes = {}
        self.stage_trace = []
        if config.block_cache_bytes > 0:
            from repro.lsm.cache import BlockCache
            self.block_cache = BlockCache(config.block_cache_bytes)
        else:
            self.block_cache = None

    def _stats(self):
        stats = ReadStats()
        stats.cache = self.block_cache
        return stats

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, entries, tables, residual_conjuncts=(), input_rows=None,
            input_row_bytes=0, input_aliases=(), driving_shard=None):
        """Execute stages over ``entries``; see the columnar twin."""
        self._tables = tables
        pending_residual = list(residual_conjuncts)
        if input_rows is not None:
            rows = list(input_rows)
            row_bytes = input_row_bytes
            available = set(input_aliases)
            stages = entries
        else:
            if not entries:
                raise ExecutionError("pipeline needs at least one stage")
            rows, row_bytes = self._driving(entries[0], shard=driving_shard)
            available = {entries[0].alias}
            rows, pending_residual = self._apply_residual(
                rows, pending_residual, available)
            self.stage_trace.append((entries[0].alias, len(rows)))
            stages = entries[1:]

        for entry in stages:
            rows, row_bytes = self._join(rows, row_bytes, entry)
            available.add(entry.alias)
            rows, pending_residual = self._apply_residual(
                rows, pending_residual, available)
            self.stage_trace.append((entry.alias, len(rows)))
            if self.config.max_rows and len(rows) > self.config.max_rows:
                raise ExecutionError(
                    f"intermediate result exceeded {self.config.max_rows} rows")
        return rows, row_bytes

    # ------------------------------------------------------------------
    # Per-entry decode planning
    # ------------------------------------------------------------------
    def _decode_plan(self, entry):
        table = self.catalog.table(entry.table_name)
        needed = set(entry.projection or table.schema.column_names)
        if entry.local_filter is not None:
            for ref in entry.local_filter.column_refs():
                if ref.alias == entry.alias:
                    needed.add(ref.column)
        for edge in entry.join_edges:
            needed.add(edge.column_of(entry.alias))
        needed = sorted(needed)
        projection = entry.projection or table.schema.column_names
        qualified_projection = [f"{entry.alias}.{name}"
                                for name in projection]
        exact = set(projection) == set(needed)
        return needed, qualified_projection, exact

    @staticmethod
    def _project_qualified(row, qualified_projection, exact):
        if exact:
            return row
        return {name: row[name] for name in qualified_projection}

    # ------------------------------------------------------------------
    # Driving table
    # ------------------------------------------------------------------
    def _driving(self, entry, shard=None):
        table = self.catalog.table(entry.table_name)
        predicate = self._compiled_filter(entry)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        needed, q_projection, exact = self._decode_plan(entry)
        pk_qualified = None
        if shard is not None:
            pk = table.schema.primary_key
            pk_qualified = f"{entry.alias}.{pk}"
            if pk not in needed:
                needed = sorted(set(needed) | {pk})
                exact = False
        stats = self._stats()
        rows = []
        if shard is not None and shard.is_empty:
            source = ()
        elif entry.access_path is AccessPath.SECONDARY_LOOKUP:
            source = self._secondary_driving(table, entry, stats, needed)
        elif entry.access_path is AccessPath.PK_RANGE:
            lo, hi = self._pk_bounds(entry)
            if shard is not None:
                lo, hi = shard.clamp(lo, hi)
            source = table.scan(ScanRequest(
                stats=stats, pk_lo=lo, pk_hi=hi, columns=tuple(needed),
                qualified_as=entry.alias))
        else:
            if shard is not None and shard.pk_lo is not None:
                source = table.scan(ScanRequest(
                    stats=stats, pk_lo=shard.pk_lo, pk_hi=shard.pk_hi,
                    columns=tuple(needed), qualified_as=entry.alias))
            else:
                source = table.scan(ScanRequest(
                    stats=stats, columns=tuple(needed),
                    qualified_as=entry.alias))
        row_bytes = self._materialized_bytes(entry)
        counters = self.counters
        for row in source:
            if (shard is not None
                    and not shard.contains(row[pk_qualified])):
                continue
            counters.records_evaluated += 1
            counters.predicate_ops += ops
            counters.memcmp_bytes += memcmp
            if predicate is not None and not predicate(row):
                continue
            rows.append(self._project_qualified(row, q_projection, exact))
            counters.bytes_materialized += row_bytes
        counters.absorb_read_stats(stats)
        self._row_bytes[entry.alias] = row_bytes
        return rows, row_bytes

    def _secondary_driving(self, table, entry, stats, needed):
        constants = self._index_constants(entry)
        for value in constants:
            self.counters.index_seeks += 1
            yield from table.index_lookup(entry.index_column, value,
                                          stats=stats, columns=needed,
                                          qualified_as=entry.alias)

    def _index_constants(self, entry):
        values = []
        for conjunct in conjuncts(entry.local_filter):
            if (isinstance(conjunct, Comparison) and conjunct.op == "="
                    and isinstance(conjunct.left, ColumnRef)
                    and conjunct.left.column == entry.index_column
                    and isinstance(conjunct.right, Literal)):
                values.append(conjunct.right.value)
            elif (isinstance(conjunct, InList) and not conjunct.negated
                    and isinstance(conjunct.operand, ColumnRef)
                    and conjunct.operand.column == entry.index_column):
                values.extend(conjunct.values)
        if not values:
            raise ExecutionError(
                f"no constant bound to index column {entry.index_column!r}")
        return values

    def _pk_bounds(self, entry):
        lo = hi = None
        pk = self.catalog.table(entry.table_name).schema.primary_key
        for conjunct in conjuncts(entry.local_filter):
            if not (isinstance(conjunct, Comparison)
                    and isinstance(conjunct.left, ColumnRef)
                    and conjunct.left.column == pk
                    and isinstance(conjunct.right, Literal)):
                continue
            value = conjunct.right.value
            if conjunct.op in ("=",):
                lo = hi = value
            elif conjunct.op in ("<", "<="):
                bound = value if conjunct.op == "<=" else value - 1
                hi = bound if hi is None else min(hi, bound)
            elif conjunct.op in (">", ">="):
                bound = value if conjunct.op == ">=" else value + 1
                lo = bound if lo is None else max(lo, bound)
        return lo, hi

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join(self, outer_rows, outer_row_bytes, entry):
        if entry.join_algorithm in (JoinAlgorithm.BNLJI, JoinAlgorithm.NLJ) \
                and entry.index_column is not None:
            return self._join_bnlji(outer_rows, outer_row_bytes, entry)
        if entry.join_algorithm is JoinAlgorithm.GHJ:
            return self._join_ghj(outer_rows, outer_row_bytes, entry)
        if entry.join_algorithm is JoinAlgorithm.NLJ:
            return self._join_nlj(outer_rows, outer_row_bytes, entry)
        return self._join_bnlj(outer_rows, outer_row_bytes, entry)

    def _join_bnlji(self, outer_rows, outer_row_bytes, entry):
        table = self.catalog.table(entry.table_name)
        predicate = self._compiled_filter(entry)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        index_edge = None
        extra_edges = []
        for edge in entry.join_edges:
            if (edge.column_of(entry.alias) == entry.index_column
                    and index_edge is None):
                index_edge = edge
            else:
                extra_edges.append(edge)
        if index_edge is None:
            raise ExecutionError(
                f"{entry.alias}: BNLJI without an edge on the index column")
        other_alias, other_column = index_edge.other(entry.alias)
        outer_key = f"{other_alias}.{other_column}"
        use_pk = entry.index_column == table.schema.primary_key
        needed, q_projection, exact = self._decode_plan(entry)

        stats = self._stats()
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters
        result = []
        for outer in outer_rows:
            value = outer.get(outer_key)
            if value is None:
                continue
            counters.index_seeks += 1
            if use_pk:
                match = table.get_by_pk(value, stats=stats,
                                        columns=needed,
                                        qualified_as=entry.alias)
                matches = () if match is None else (match,)
            else:
                matches = table.index_lookup(
                    entry.index_column, value, stats=stats,
                    columns=needed, qualified_as=entry.alias)
            for row in matches:
                counters.records_evaluated += 1
                counters.predicate_ops += ops
                counters.memcmp_bytes += memcmp
                if predicate is not None and not predicate(row):
                    continue
                merged = dict(outer)
                merged.update(self._project_qualified(row, q_projection,
                                                      exact))
                if not self._extra_edges_hold(merged, extra_edges):
                    continue
                result.append(merged)
                counters.bytes_materialized += out_bytes
        counters.absorb_read_stats(stats)
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_bnlj(self, outer_rows, outer_row_bytes, entry):
        table = self.catalog.table(entry.table_name)
        predicate = self._compiled_filter(entry)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]

        per_row = max(1, outer_row_bytes)
        rows_per_block = max(1, self.config.join_buffer_bytes // per_row)
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters

        result = []
        for start in range(0, max(len(outer_rows), 1), rows_per_block):
            block = outer_rows[start:start + rows_per_block]
            if not block:
                break
            hash_table = {}
            for outer in block:
                key = tuple(outer.get(name) for name in outer_keys)
                if None in key:
                    continue
                hash_table.setdefault(key, []).append(outer)
                counters.hash_probes += 1
            counters.bytes_materialized += len(block) * per_row
            for row in self._inner_scan(table, entry, needed):
                counters.records_evaluated += 1
                counters.predicate_ops += ops
                counters.memcmp_bytes += memcmp
                if predicate is not None and not predicate(row):
                    continue
                key = tuple(row.get(column) for column in inner_columns)
                if None in key:
                    continue
                counters.hash_probes += 1
                partners = hash_table.get(key)
                if not partners:
                    continue
                inner_projected = self._project_qualified(
                    row, q_projection, exact)
                for outer in partners:
                    merged = dict(outer)
                    merged.update(inner_projected)
                    result.append(merged)
                    counters.bytes_materialized += out_bytes
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_nlj(self, outer_rows, outer_row_bytes, entry):
        table = self.catalog.table(entry.table_name)
        predicate = self._compiled_filter(entry)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters
        result = []
        for outer in outer_rows:
            key = tuple(outer.get(name) for name in outer_keys)
            if None in key:
                continue
            for row in self._inner_scan(table, entry, needed):
                counters.records_evaluated += 1
                counters.predicate_ops += ops + len(edges)
                counters.memcmp_bytes += memcmp
                if predicate is not None and not predicate(row):
                    continue
                if tuple(row.get(c) for c in inner_columns) != key:
                    continue
                merged = dict(outer)
                merged.update(self._project_qualified(row, q_projection,
                                                      exact))
                result.append(merged)
                counters.bytes_materialized += out_bytes
        counters.output_rows += len(result)
        return result, out_bytes

    def _join_ghj(self, outer_rows, outer_row_bytes, entry):
        table = self.catalog.table(entry.table_name)
        predicate = self._compiled_filter(entry)
        ops, memcmp = predicate_cost(entry.local_filter, self.catalog,
                                     self._tables)
        edges = entry.join_edges
        outer_keys = [f"{edge.other(entry.alias)[0]}."
                      f"{edge.other(entry.alias)[1]}" for edge in edges]
        needed, q_projection, exact = self._decode_plan(entry)
        inner_columns = [f"{entry.alias}.{edge.column_of(entry.alias)}"
                         for edge in edges]
        inner_bytes = self._materialized_bytes(entry)
        out_bytes = outer_row_bytes + inner_bytes
        counters = self.counters

        per_row = max(1, outer_row_bytes)
        outer_bytes_total = len(outer_rows) * per_row
        partitions = max(1, -(-outer_bytes_total
                              // self.config.join_buffer_bytes))

        outer_parts = [[] for _ in range(partitions)]
        for outer in outer_rows:
            key = tuple(outer.get(name) for name in outer_keys)
            if None in key:
                continue
            counters.hash_probes += 1
            counters.bytes_materialized += per_row
            outer_parts[stable_hash(key) % partitions].append((key, outer))

        inner_parts = [[] for _ in range(partitions)]
        for row in self._inner_scan(table, entry, needed):
            counters.records_evaluated += 1
            counters.predicate_ops += ops
            counters.memcmp_bytes += memcmp
            if predicate is not None and not predicate(row):
                continue
            key = tuple(row.get(c) for c in inner_columns)
            if None in key:
                continue
            counters.hash_probes += 1
            counters.bytes_materialized += inner_bytes
            inner_parts[stable_hash(key) % partitions].append((key, row))

        result = []
        for outer_part, inner_part in zip(outer_parts, inner_parts):
            hash_table = {}
            for key, outer in outer_part:
                hash_table.setdefault(key, []).append(outer)
            for key, row in inner_part:
                counters.hash_probes += 1
                partners = hash_table.get(key)
                if not partners:
                    continue
                inner_projected = self._project_qualified(
                    row, q_projection, exact)
                for outer in partners:
                    merged = dict(outer)
                    merged.update(inner_projected)
                    result.append(merged)
                    counters.bytes_materialized += out_bytes
        counters.output_rows += len(result)
        return result, out_bytes

    def _inner_scan(self, table, entry, needed):
        stats = self._stats()
        if (entry.access_path is AccessPath.SECONDARY_LOOKUP
                and entry.index_column is not None
                and entry.index_column not in
                [edge.column_of(entry.alias) for edge in entry.join_edges]):
            for value in self._index_constants(entry):
                self.counters.index_seeks += 1
                yield from table.index_lookup(entry.index_column, value,
                                              stats=stats, columns=needed,
                                              qualified_as=entry.alias)
        else:
            yield from table.scan(ScanRequest(stats=stats,
                                              columns=tuple(needed),
                                              qualified_as=entry.alias))
        self.counters.absorb_read_stats(stats)

    # ------------------------------------------------------------------
    # Residual predicates
    # ------------------------------------------------------------------
    def _apply_residual(self, rows, pending, available):
        ready = [conjunct for conjunct in pending
                 if conjunct.aliases() <= available]
        if not ready:
            return rows, pending
        remaining = [conjunct for conjunct in pending
                     if conjunct not in ready]
        total_ops = 0
        total_memcmp = 0
        for conjunct in ready:
            ops, memcmp = predicate_cost(conjunct, self.catalog, self._tables)
            total_ops += ops
            total_memcmp += memcmp
        kept = []
        for row in rows:
            self.counters.records_evaluated += 1
            self.counters.predicate_ops += total_ops
            self.counters.memcmp_bytes += total_memcmp
            if all(conjunct.eval(row) for conjunct in ready):
                kept.append(row)
        return kept, remaining

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _compiled_filter(self, entry):
        expr = entry.local_filter
        if expr is None:
            return None
        return expr.eval

    def _materialized_bytes(self, entry):
        """Bytes one projected row of this table occupies in caches."""
        if self.config.pointer_cache:
            return _POINTER_BYTES * max(1, entry.projection_field_count)
        return max(4, entry.projection_bytes)

    @staticmethod
    def _extra_edges_hold(merged, edges):
        for edge in edges:
            left = merged.get(f"{edge.left_alias}.{edge.left_column}")
            right = merged.get(f"{edge.right_alias}.{edge.right_column}")
            if left is None or right is None or left != right:
                return False
        return True
