"""Execution stacks (paper Fig 10).

* ``BLK``    — traditional file-system stack; all data moves to the host.
* ``NATIVE`` — direct NVMe into user space; still host-only processing.
* ``NDP``    — full on-device execution of the QEP.
* ``HYBRID`` — hybridNDP cooperative execution at a split point.

:class:`StackRunner` wires a catalog + device into the engines and runs a
query (SQL or prebuilt plan) on any stack, returning an
:class:`ExecutionReport` whose result rows are identical across stacks.
"""

import enum

from repro.engine.cooperative import CooperativeExecutor
from repro.engine.host import HostEngine, HostEngineConfig
from repro.engine.ndp import NDPEngine, NDPEngineConfig
from repro.engine.timing import HostIOPath, TimingModel
from repro.errors import PlanError, ReproError, ResourceError
from repro.query.optimizer import build_plan
from repro.storage.machines import HOST_I5


class Stack(enum.Enum):
    """Which software/hardware stack executes the query."""

    BLK = "blk"
    NATIVE = "native"
    NDP = "ndp"
    HYBRID = "hybrid"


class StackRunner:
    """Convenience facade: run queries on any stack over one catalog."""

    def __init__(self, catalog, database, device, host_spec=None,
                 buffer_scale=1.0, host_config=None, ndp_config=None):
        self.catalog = catalog
        self.database = database
        self.device = device
        self.host_spec = host_spec or HOST_I5
        if host_config is None:
            # The host page cache is a share of host DRAM; like the device
            # buffers it is scaled to the synthetic dataset so the
            # cache-to-data ratio matches the paper's 4 GB vs 16 GB.
            page_cache = max(64 * 1024,
                             int(self.host_spec.memory_bytes // 2
                                 * buffer_scale))
            host_config = HostEngineConfig(
                join_buffer_bytes=max(
                    64 * 1024, int(32 * 1024 * 1024 * buffer_scale * 16)),
                block_cache_bytes=page_cache,
            )
        self._host_config = host_config
        self._ndp_config = ndp_config or NDPEngineConfig(
            buffer_scale=buffer_scale)

        self._timing_native = TimingModel(device, self.host_spec,
                                          io_path=HostIOPath.NATIVE)
        self._timing_blk = TimingModel(device, self.host_spec,
                                       io_path=HostIOPath.BLOCK)

        self._host_native = HostEngine(catalog, self._timing_native,
                                       self._host_config)
        self._host_blk = HostEngine(catalog, self._timing_blk,
                                    self._host_config)
        self._ndp = NDPEngine(catalog, database, device, self._ndp_config)
        self._cooperative = CooperativeExecutor(
            self._host_native, self._ndp, self._timing_native)

    @property
    def ndp_engine(self):
        """The NDP engine (exposed for planners and tests)."""
        return self._ndp

    @property
    def timing(self):
        """The native-path timing model used for NDP/hybrid runs."""
        return self._timing_native

    def plan(self, sql):
        """Build the baseline physical plan for SQL text."""
        return build_plan(sql, self.catalog)

    def run(self, query, stack, split_index=None):
        """Execute ``query`` (SQL text or QueryPlan) on ``stack``.

        For ``Stack.HYBRID`` a ``split_index`` (the k of Hk) is required.
        """
        plan = self.plan(query) if isinstance(query, str) else query
        if stack is Stack.BLK:
            return self._host_blk.execute(plan, strategy="host-only(blk)")
        if stack is Stack.NATIVE:
            return self._host_native.execute(plan,
                                             strategy="host-only(native)")
        if stack is Stack.NDP:
            return self._cooperative.run_full_ndp(plan)
        if stack is Stack.HYBRID:
            if split_index is None:
                raise PlanError("hybrid execution needs a split_index")
            return self._cooperative.run_split(plan, split_index)
        raise PlanError(f"unknown stack {stack!r}")

    def run_all_splits(self, query):
        """Run every strategy: BLK, H0..H(n-1), full NDP.

        Returns ``{strategy_name: ExecutionReport}`` — the raw material
        of the paper's Figs 12 and 16.  The key of each entry matches the
        report's own ``strategy`` label; the baseline runs on the BLK
        stack under the matrix's canonical ``"host-only"`` name.  Only
        repro errors (device overload and friends) are recorded as
        infeasible strategies — programming errors propagate.
        """
        plan = self.plan(query) if isinstance(query, str) else query
        reports = {"host-only": self._host_blk.execute(
            plan, strategy="host-only")}
        for k in range(plan.table_count):
            try:
                reports[f"H{k}"] = self.run(plan, Stack.HYBRID,
                                            split_index=k)
            except (ReproError, ResourceError) as error:
                # overload -> strategy infeasible
                reports[f"H{k}"] = error
        try:
            reports["full-ndp"] = self.run(plan, Stack.NDP)
        except (ReproError, ResourceError) as error:
            reports["full-ndp"] = error
        return reports
