"""Execution stacks (paper Fig 10).

* ``BLK``    — traditional file-system stack; all data moves to the host.
* ``NATIVE`` — direct NVMe into user space; still host-only processing.
* ``NDP``    — full on-device execution of the QEP.
* ``HYBRID`` — hybridNDP cooperative execution at a split point.

:class:`StackRunner` wires a catalog + device into the engines and runs a
query (SQL or prebuilt plan) on any stack, returning an
:class:`ExecutionReport` whose result rows are identical across stacks.
"""

import enum

from repro.context import ExecutionContext, reject_removed_kwargs
from repro.engine.cooperative import (EXEC_TRACK, HOST_RESOURCE,
                                      CooperativeExecutor)
from repro.engine.host import HostEngine, HostEngineConfig
from repro.engine.ndp import NDPEngine, NDPEngineConfig
from repro.engine.timing import HostIOPath, TimingModel
from repro.errors import PlanError, ReproError, RetriesExhaustedError
from repro.faults import FAULTS_TRACK
from repro.query.optimizer import build_plan
from repro.storage.machines import HOST_I5


class Stack(enum.Enum):
    """Which software/hardware stack executes the query."""

    BLK = "blk"
    NATIVE = "native"
    NDP = "ndp"
    HYBRID = "hybrid"


class StackRunner:
    """Convenience facade: run queries on any stack over one catalog."""

    def __init__(self, catalog, database, device, host_spec=None,
                 buffer_scale=1.0, host_config=None, ndp_config=None):
        self.catalog = catalog
        self.database = database
        self.device = device
        self.host_spec = host_spec or HOST_I5
        if host_config is None:
            # The host page cache is a share of host DRAM; like the device
            # buffers it is scaled to the synthetic dataset so the
            # cache-to-data ratio matches the paper's 4 GB vs 16 GB.
            page_cache = max(64 * 1024,
                             int(self.host_spec.memory_bytes // 2
                                 * buffer_scale))
            host_config = HostEngineConfig(
                join_buffer_bytes=max(
                    64 * 1024, int(32 * 1024 * 1024 * buffer_scale * 16)),
                block_cache_bytes=page_cache,
            )
        self._host_config = host_config
        self._ndp_config = ndp_config or NDPEngineConfig(
            buffer_scale=buffer_scale)

        self._timing_native = TimingModel(device, self.host_spec,
                                          io_path=HostIOPath.NATIVE)
        self._timing_blk = TimingModel(device, self.host_spec,
                                       io_path=HostIOPath.BLOCK)

        self._host_native = HostEngine(catalog, self._timing_native,
                                       self._host_config)
        self._host_blk = HostEngine(catalog, self._timing_blk,
                                    self._host_config)
        self._ndp = NDPEngine(catalog, database, device, self._ndp_config)
        self._cooperative = CooperativeExecutor(
            self._host_native, self._ndp, self._timing_native)
        self._plan_cache = {}   # sql -> (statistics_version, QueryPlan)
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._plan_cache_invalidations = 0

    @property
    def ndp_engine(self):
        """The NDP engine (exposed for planners and tests)."""
        return self._ndp

    @property
    def timing(self):
        """The native-path timing model used for NDP/hybrid runs."""
        return self._timing_native

    @property
    def cooperative(self):
        """The cooperative executor (exposed for the workload scheduler)."""
        return self._cooperative

    def plan(self, sql):
        """Build the physical plan for SQL text (memoised per SQL text).

        Sweeps and the concurrent scheduler re-run the same JOB queries
        many times; parsing and join-order optimisation are pure
        functions of the SQL and the catalog *statistics*, so the built
        plan is cached keyed by ``(sql, statistics_version)``: writes
        refresh the statistics and bump
        :meth:`~repro.relational.catalog.Catalog.statistics_version`, so
        a stale cached plan (built when cardinality estimates were
        different) is invalidated instead of silently reused.  Plans are
        read-only during execution — engines pull live table data
        through the catalog at run time, so updates between runs are
        still observed either way; the version only affects *estimates*.
        :meth:`plan_cache_stats` exposes the hit/miss/invalidation
        counts for reports and benches.
        """
        version = self.catalog.statistics_version()
        entry = self._plan_cache.get(sql)
        if entry is not None:
            cached_version, plan = entry
            if cached_version == version:
                self._plan_cache_hits += 1
                return plan
            self._plan_cache_invalidations += 1
        else:
            self._plan_cache_misses += 1
        plan = build_plan(sql, self.catalog)
        self._plan_cache[sql] = (version, plan)
        return plan

    def plan_cache_stats(self):
        """``{hits, misses, invalidations, entries}`` of the plan cache."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "invalidations": self._plan_cache_invalidations,
            "entries": len(self._plan_cache),
        }

    def run(self, query, stack, split_index=None, ctx=None, **removed):
        """Execute ``query`` (SQL text or QueryPlan) on ``stack``.

        For ``Stack.HYBRID`` a ``split_index`` (the k of Hk) is required.
        ``ctx`` (an :class:`~repro.context.ExecutionContext`) carries the
        run's tracer, fault plan and retry policy — the legacy
        ``tracer=`` / ``faults=`` keywords were removed and raise.
        Tracing records the execution as structured spans for the
        Perfetto exporter at zero cost when absent.  A fault plan
        degrades NDP/hybrid runs deterministically; when an offload
        exhausts its retries the runner falls back to host-only
        execution mid-query and the report records the degradation
        (``fallback_from``, ``retries``, ``wasted_device_time``).
        """
        reject_removed_kwargs("StackRunner.run", removed)
        ctx = ExecutionContext.coerce(ctx)
        plan = self.plan(query) if isinstance(query, str) else query
        if stack is Stack.BLK:
            return self._traced_host(self._host_blk, plan,
                                     "host-only(blk)", ctx.tracer)
        if stack is Stack.NATIVE:
            return self._traced_host(self._host_native, plan,
                                     "host-only(native)", ctx.tracer)
        if stack is Stack.NDP:
            try:
                return self._cooperative.run_full_ndp(plan, ctx)
            except RetriesExhaustedError as failure:
                return self._host_fallback(plan, failure, ctx.tracer)
        if stack is Stack.HYBRID:
            if split_index is None:
                raise PlanError("hybrid execution needs a split_index")
            try:
                return self._cooperative.run_split(plan, split_index, ctx)
            except RetriesExhaustedError as failure:
                return self._host_fallback(plan, failure, ctx.tracer)
        raise PlanError(f"unknown stack {stack!r}")

    def _host_fallback(self, plan, failure, tracer):
        """Graceful degradation: finish the query host-only.

        The offload abandoned after bounded retries
        (:class:`~repro.errors.RetriesExhaustedError`); re-execute the
        whole plan on the host's native path and account the wasted
        device attempt on the degraded report, so the caller still gets
        correct rows plus an honest timeline.
        """
        if tracer is not None and tracer.enabled:
            tracer.instant(FAULTS_TRACK, "fallback", failure.wasted_time,
                           args={"from": failure.strategy,
                                 "retries": failure.retries})
        report = self._traced_host(self._host_native, plan,
                                   "host-only(fallback)", tracer)
        report.fallback_from = failure.strategy
        report.retries = failure.retries
        report.faults_injected = dict(failure.faults_injected)
        report.wasted_device_time = failure.wasted_time
        # The failed attempts happened before the host re-run started.
        report.total_time += failure.wasted_time
        return report

    def _traced_host(self, engine, plan, strategy, tracer):
        """Run a host-only plan, recording its breakdown as trace spans.

        Host-only execution is not event-driven (one timing charge covers
        the whole plan), so its trace is the Table-4 breakdown laid out
        sequentially on the host compute track under one root span.
        """
        report = engine.execute(plan, strategy=strategy)
        if tracer is not None and tracer.enabled:
            root = tracer.begin(EXEC_TRACK, strategy, 0.0,
                                category="execution",
                                args={"strategy": strategy})
            offset = 0.0
            for category, seconds in vars(report.host_breakdown).items():
                if seconds <= 0:
                    continue
                tracer.span("host/compute", category, offset,
                            offset + seconds, category="compute",
                            parent=root,
                            args={"placement": "HOST",
                                  "resource": HOST_RESOURCE,
                                  "operator": category})
                offset += seconds
            tracer.end(root, report.total_time)
            report.trace_metrics = tracer.metrics()
        return report

    def run_all_splits(self, query, ctx_factory=None, **removed):
        """Run every strategy: BLK, H0..H(n-1), full NDP.

        Returns ``{strategy_name: ExecutionReport}`` — the raw material
        of the paper's Figs 12 and 16.  The key of each entry matches the
        report's own ``strategy`` label; the baseline runs on the BLK
        stack under the matrix's canonical ``"host-only"`` name.  Only
        repro errors (device overload and friends) are recorded as
        infeasible strategies — programming errors propagate.

        ``ctx_factory(strategy_name)`` — when given — is called once per
        strategy and must return an
        :class:`~repro.context.ExecutionContext` (or ``None``); the sweep
        layer uses it to emit one Perfetto trace per strategy.  The
        legacy ``tracer_factory=`` hook was removed and raises.
        """
        reject_removed_kwargs("StackRunner.run_all_splits", removed)

        def _ctx(name):
            ctx = ctx_factory(name) if ctx_factory else None
            return ExecutionContext.coerce(ctx)

        plan = self.plan(query) if isinstance(query, str) else query
        baseline = self._traced_host(self._host_blk, plan, "host-only",
                                     _ctx("host-only").tracer)
        reports = {"host-only": baseline}
        for k in range(plan.table_count):
            try:
                reports[f"H{k}"] = self.run(plan, Stack.HYBRID,
                                            split_index=k,
                                            ctx=_ctx(f"H{k}"))
            except ReproError as error:
                # overload -> strategy infeasible
                reports[f"H{k}"] = error
        try:
            reports["full-ndp"] = self.run(plan, Stack.NDP,
                                           ctx=_ctx("full-ndp"))
        except ReproError as error:
            reports["full-ndp"] = error
        return reports
