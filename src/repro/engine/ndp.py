"""The on-device NDP engine.

Executes the NDP-side fragment of a plan on the smart storage device:
reserves pipeline buffers under the paper's 17/17/7 MB policy, captures
the shared-state snapshot that makes execution intervention-free, runs
the volcano pipeline with device-side buffer sizes, and switches the
intermediate cache from *row* format to *pointer* format when more than
two tables are processed (paper §4.2).
"""

from dataclasses import dataclass, field

from repro.engine.counters import WorkCounters
from repro.engine.pipeline import PipelineConfig, PipelineExecutor, finalize
from repro.errors import OffloadError
from repro.lsm.snapshot import SharedState


@dataclass
class NDPCommand:
    """The extended nKV NDP invocation (paper Fig 7.A).

    Carries everything the device needs for autonomous execution: the
    pipeline fragment, predicates, projections, index usage, physical
    placements, and the shared-state snapshot.
    """

    entries: list                      # TableAccess fragment (device side)
    tables: dict                       # alias -> table name
    residual_conjuncts: list = field(default_factory=list)
    shared_state: SharedState = None
    aggregates_on_device: bool = False
    select_items: list = field(default_factory=list)
    group_by: list = field(default_factory=list)
    #: Driving-table partition for cluster scatter-gather (a
    #: :class:`repro.cluster.TableShard`), None for whole-table runs.
    shard: object = None

    @property
    def payload_bytes(self):
        """Approximate command size on the wire."""
        base = 256                                    # fixed header
        base += 192 * len(self.entries)               # per-op descriptors
        base += 64 * len(self.residual_conjuncts)
        if self.shard is not None:
            base += 48                                # partition descriptor
        if self.shared_state is not None:
            base += self.shared_state.payload_bytes
        return base

    @property
    def aliases(self):
        """Aliases processed on the device."""
        return [entry.alias for entry in self.entries]

    def pipeline_shape(self):
        """(selections, secondary selections, joins, group-bys) counts."""
        selections = len(self.entries)
        secondary = sum(1 for entry in self.entries
                        if entry.uses_secondary_index)
        joins = sum(1 for entry in self.entries
                    if entry.join_algorithm is not None)
        group_bys = 1 if (self.aggregates_on_device and self.group_by) else 0
        return selections, secondary, joins, group_bys


@dataclass
class NDPExecution:
    """Result of one on-device fragment execution."""

    rows: list
    row_bytes: int
    counters: WorkCounters
    reservation: object
    pointer_cache: bool
    result: object = None              # QueryResult when aggregated on device
    stage_trace: list = field(default_factory=list)  # (alias, rows) pairs


@dataclass
class NDPEngineConfig:
    """Device-side execution knobs.

    ``buffer_scale`` shrinks the paper's absolute buffer sizes to the
    synthetic dataset scale, preserving the dataset-to-buffer ratio that
    produces the paper's buffer-pressure effects.
    """

    buffer_scale: float = 1.0
    max_rows: int = None
    pointer_cache_threshold: int = 2   # >2 tables -> pointer cache (§4.2)
    # Absolute join-buffer size in bytes, bypassing scale and floor —
    # used by the §5 buffer-size ablation.
    join_buffer_override: int = None
    # Probe bloom filters on the device (paper §2.2 future work for
    # more powerful smart storage; off on COSMOS+).
    use_bloom_filters: bool = False
    # Device data-block/index-block buffers (part of the 520 MB temp
    # reservation, §5) act as the on-device block cache.
    block_cache_base_bytes: int = 520 * 1024 * 1024


class NDPEngine:
    """Runs NDP commands on the smart-storage device model."""

    def __init__(self, catalog, database, device, config=None):
        self.catalog = catalog
        self.database = database
        self.device = device
        self.config = config or NDPEngineConfig()

    # ------------------------------------------------------------------
    # Command preparation (host side, but owned here for cohesion)
    # ------------------------------------------------------------------
    def prepare_command(self, plan, entries, residual_conjuncts,
                        aggregates_on_device=False, shard=None):
        """Build the NDP invocation for a plan fragment.

        Captures the shared-state snapshot of every involved column
        family (primary + any secondary index CFs), per nKV §2.1.
        ``shard`` restricts the driving-table scan to one partition
        (cluster scatter-gather).
        """
        if not self.device.ndp_mode:
            raise OffloadError("device is not mounted in NDP mode")
        family_names = []
        for entry in entries:
            table = self.catalog.table(entry.table_name)
            family_names.extend(table.column_families())
        shared_state = SharedState.capture(self.database, family_names)
        return NDPCommand(
            entries=list(entries),
            tables=dict(plan.spec.tables),
            residual_conjuncts=list(residual_conjuncts),
            shared_state=shared_state,
            aggregates_on_device=aggregates_on_device,
            select_items=list(plan.select_items),
            group_by=list(plan.group_by),
            shard=shard,
        )

    # ------------------------------------------------------------------
    # Device-side execution
    # ------------------------------------------------------------------
    def join_buffer_bytes(self):
        """Effective per-join buffer on the device."""
        if self.config.join_buffer_override is not None:
            return max(256, int(self.config.join_buffer_override))
        return max(4096,
                   int(self.device.spec.join_buffer_bytes
                       * self.config.buffer_scale))

    def block_cache_bytes(self):
        """Effective on-device block cache."""
        return max(8192,
                   int(self.config.block_cache_base_bytes
                       * self.config.buffer_scale))

    def execute(self, command):
        """Execute an NDP command; returns an :class:`NDPExecution`.

        Raises :class:`DeviceOverloadError` when the pipeline does not
        fit the device buffer budget — the caller then falls back to a
        host(-heavier) strategy, as the optimizer preconditions demand.
        """
        shape = command.pipeline_shape()
        reservation = self.device.reserve_pipeline(*shape)
        try:
            pointer_cache = (len(command.entries)
                             > self.config.pointer_cache_threshold)
            counters = WorkCounters()
            pipeline_config = PipelineConfig(
                join_buffer_bytes=self.join_buffer_bytes(),
                pointer_cache=pointer_cache,
                max_rows=self.config.max_rows,
                block_cache_bytes=self.block_cache_bytes(),
            )
            # Update-aware NDP (§2.1): execute against the shared-state
            # snapshot, never the live trees — host writes issued after
            # command preparation are invisible to this execution.
            device_catalog = self._device_catalog(command)
            executor = PipelineExecutor(device_catalog, pipeline_config,
                                        counters)
            rows, row_bytes = executor.run(
                command.entries, command.tables,
                residual_conjuncts=command.residual_conjuncts,
                driving_shard=command.shard)
            result = None
            if command.aggregates_on_device:
                result_rows, columns = finalize(
                    rows, command.select_items, command.group_by, counters)
                from repro.engine.results import QueryResult
                result = QueryResult(result_rows, columns)
            counters.output_bytes += len(rows) * row_bytes
            return NDPExecution(
                rows=rows,
                row_bytes=row_bytes,
                counters=counters,
                reservation=reservation,
                pointer_cache=pointer_cache,
                result=result,
                stage_trace=list(executor.stage_trace),
            )
        except Exception:
            self.device.release_pipeline(reservation)
            raise

    def _device_catalog(self, command):
        """The snapshot catalog one command's execution reads through."""
        from repro.relational.snapshot_table import SnapshotCatalog
        if command.shared_state is None:
            return self.catalog
        table_names = {command.tables[alias] for alias in command.aliases}
        return SnapshotCatalog(self.catalog, command.shared_state,
                               table_names,
                               use_bloom_filters=self.config.use_bloom_filters)

    def release(self, execution):
        """Return the pipeline's buffers to the device."""
        self.device.release_pipeline(execution.reservation)

    def can_offload(self, entries, with_group_by=False):
        """Pre-flight buffer check for a candidate fragment."""
        selections = len(entries)
        secondary = sum(1 for entry in entries if entry.uses_secondary_index)
        joins = sum(1 for entry in entries
                    if entry.join_algorithm is not None)
        return self.device.can_host_pipeline(
            selections, secondary, joins, 1 if with_group_by else 0)
