"""Execution engines: host, on-device NDP, and cooperative execution.

Execution is *functional* — operators really evaluate predicates, probe
indexes and join rows over the stored data — while every operator counts
its physical work (flash bytes, record evaluations, memcmp bytes, seeks).
The :class:`TimingModel` prices those counters for host or device
placement, and the cooperative executor replays block-wise production and
consumption on a simulated timeline (paper §4, Figs. 7/8/17).

Operators exchange :class:`ColumnBatch` values — schema-tagged numpy
column arrays — rather than lists of dicts; ``ColumnBatch.rows()`` is
the compatibility view for row-oriented consumers.  Work counters are
derived from batch arithmetic, so traces are byte-identical to the
retained row-at-a-time reference executor
(:class:`repro.engine.rowref.RowPipelineExecutor`).  See
``docs/engine.md`` for the exchange protocol.
"""

from repro.columns import ColumnBatch
from repro.engine.counters import WorkCounters
from repro.engine.timing import ExecutionLocation, TimingModel
from repro.engine.results import ExecutionReport, QueryResult, TimelinePhase
from repro.engine.host import HostEngine
from repro.engine.ndp import NDPCommand, NDPEngine
from repro.engine.cooperative import CooperativeExecutor
from repro.engine.stacks import Stack, StackRunner
from repro.engine.adaptive import AdaptiveRunner

__all__ = [
    "AdaptiveRunner",
    "ColumnBatch",
    "WorkCounters",
    "ExecutionLocation",
    "TimingModel",
    "QueryResult",
    "ExecutionReport",
    "TimelinePhase",
    "HostEngine",
    "NDPEngine",
    "NDPCommand",
    "CooperativeExecutor",
    "Stack",
    "StackRunner",
]
