"""Cooperative (overlapping) host/device execution (paper §4, Fig 7).

For a split point Hk the device runs the pipeline prefix (tables 0..k and
their k joins) and streams intermediate-result batches through a bounded
set of shared buffer slots; the host fetches each batch over PCIe and
joins it with the remaining tables while the device autonomously produces
the next batch.  The device stalls when all slots are full; the host
waits when no batch is ready — both are accounted, reproducing the
Fig 17 timeline and the Table 4 stage breakdown.
"""

import math

from repro.engine.counters import WorkCounters
from repro.engine.results import ExecutionReport, QueryResult, TimelinePhase
from repro.engine.timing import ExecutionLocation
from repro.errors import PlanError
from repro.query.ast import conjuncts


class CooperativeExecutor:
    """Runs hybrid splits and full-NDP executions."""

    def __init__(self, host_engine, ndp_engine, timing_model):
        self.host = host_engine
        self.ndp = ndp_engine
        self.timing = timing_model

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _slot_bytes(self):
        device = self.ndp.device
        return max(1024, int(device.spec.shared_buffer_slot_bytes
                             * self.ndp.config.buffer_scale))

    def _split_residual(self, plan, device_aliases):
        device_side = []
        host_side = []
        for conjunct in conjuncts(plan.residual):
            if conjunct.aliases() <= set(device_aliases):
                device_side.append(conjunct)
            else:
                host_side.append(conjunct)
        return device_side, host_side

    # ------------------------------------------------------------------
    # Hybrid split execution
    # ------------------------------------------------------------------
    def run_split(self, plan, split_index):
        """Execute the plan with split point ``H{split_index}``."""
        if not 0 <= split_index < plan.table_count:
            raise PlanError(
                f"split index {split_index} out of range for "
                f"{plan.table_count} tables")
        device_entries = plan.prefix(split_index)
        host_entries = plan.suffix(split_index)
        device_aliases = [entry.alias for entry in device_entries]
        device_residual, host_residual = self._split_residual(
            plan, device_aliases)

        # --- device fragment -----------------------------------------
        command = self.ndp.prepare_command(plan, device_entries,
                                           device_residual)
        execution = self.ndp.execute(command)
        try:
            device_time, device_breakdown = self.timing.charge(
                execution.counters, ExecutionLocation.DEVICE)
            setup_time = self.timing.command_setup_time(command.payload_bytes)

            # --- batching over shared buffer slots --------------------
            slot_bytes = self._slot_bytes()
            row_bytes = max(1, execution.row_bytes)
            batch_rows = max(1, slot_bytes // row_bytes)
            rows = execution.rows
            n_batches = max(1, math.ceil(len(rows) / batch_rows))
            slots = self.ndp.device.spec.shared_buffer_slots
            per_batch_device = device_time / n_batches

            timeline = []
            timeline.append(TimelinePhase("host", "setup", 0.0, setup_time,
                                          "NDP command"))

            # --- simulate producer/consumer ---------------------------
            host_counters = WorkCounters()
            session = None
            if host_entries or host_residual:
                session = self.host.fragment_session(
                    plan, host_entries, device_aliases, host_counters,
                    residual_conjuncts=host_residual)
            joined_rows = []
            fetch_complete = [0.0] * n_batches
            device_clock = setup_time
            device_stall = 0.0
            host_clock = setup_time
            host_wait_initial = 0.0
            host_wait_other = 0.0
            transfer_total = 0.0
            host_processing = 0.0
            ready = [0.0] * n_batches

            for i in range(n_batches):
                batch = rows[i * batch_rows:(i + 1) * batch_rows]
                # Device side: wait for a free slot if `slots` ahead.
                if i >= slots:
                    free_at = fetch_complete[i - slots]
                    if free_at > device_clock:
                        timeline.append(TimelinePhase(
                            "device", "stall", device_clock, free_at,
                            f"slots full before batch {i}"))
                        device_stall += free_at - device_clock
                        device_clock = free_at
                produce_start = device_clock
                device_clock += per_batch_device
                ready[i] = device_clock
                timeline.append(TimelinePhase(
                    "device", "compute", produce_start, device_clock,
                    f"batch {i} ({len(batch)} rows)"))

                # Host side: wait for the batch, fetch it, process it.
                if ready[i] > host_clock:
                    wait = ready[i] - host_clock
                    if i == 0:
                        host_wait_initial += wait
                    else:
                        host_wait_other += wait
                    timeline.append(TimelinePhase(
                        "host", "wait", host_clock, ready[i],
                        f"waiting for batch {i}"))
                    host_clock = ready[i]
                batch_bytes = max(len(batch) * row_bytes, 64)
                transfer = self.timing.transfer_time(batch_bytes)
                transfer_total += transfer
                fetch_complete[i] = host_clock + transfer
                timeline.append(TimelinePhase(
                    "host", "transfer", host_clock, fetch_complete[i],
                    f"fetch batch {i}"))
                host_clock = fetch_complete[i]

                before = host_counters.copy()
                if session is not None:
                    fragment_rows, _fragment_bytes = session.process_batch(
                        batch, row_bytes)
                else:
                    fragment_rows = batch
                joined_rows.extend(fragment_rows)
                delta = host_counters.copy()
                for name, value in before.as_dict().items():
                    setattr(delta, name, getattr(delta, name) - value)
                batch_time, _ = self.timing.charge(
                    delta, ExecutionLocation.HOST)
                host_processing += batch_time
                timeline.append(TimelinePhase(
                    "host", "compute", host_clock, host_clock + batch_time,
                    f"process batch {i}"))
                host_clock += batch_time

            # --- epilogue: aggregation/projection on the host ----------
            before = host_counters.copy()
            result = self.host.finalize_fragment(plan, joined_rows,
                                                 host_counters)
            delta = host_counters.copy()
            for name, value in before.as_dict().items():
                setattr(delta, name, getattr(delta, name) - value)
            final_time, host_breakdown = self.timing.charge(
                host_counters, ExecutionLocation.HOST)
            epilogue, _ = self.timing.charge(delta, ExecutionLocation.HOST)
            del final_time
            timeline.append(TimelinePhase(
                "host", "compute", host_clock, host_clock + epilogue,
                "finalize"))
            host_clock += epilogue
            host_processing += epilogue

            total = max(host_clock, device_clock)
            return ExecutionReport(
                strategy=f"H{split_index}",
                total_time=total,
                result=result,
                split_index=split_index,
                host_counters=host_counters,
                device_counters=execution.counters,
                host_breakdown=host_breakdown,
                device_breakdown=device_breakdown,
                setup_time=setup_time,
                host_wait_initial=host_wait_initial,
                host_wait_other=host_wait_other,
                transfer_time=transfer_total,
                host_processing_time=host_processing,
                device_busy_time=device_time,
                device_stall_time=device_stall,
                batches=n_batches,
                intermediate_rows=len(rows),
                intermediate_bytes=len(rows) * row_bytes,
                timeline=timeline,
                notes={"pointer_cache": execution.pointer_cache,
                       "device_aliases": device_aliases,
                       "device_stage_rows": execution.stage_trace},
            )
        finally:
            self.ndp.release(execution)

    # ------------------------------------------------------------------
    # Full NDP execution
    # ------------------------------------------------------------------
    def run_full_ndp(self, plan):
        """Execute the whole QEP on the device (aggregation included)."""
        device_entries = plan.entries
        device_residual = conjuncts(plan.residual)
        command = self.ndp.prepare_command(
            plan, device_entries, device_residual, aggregates_on_device=True)
        execution = self.ndp.execute(command)
        try:
            device_time, device_breakdown = self.timing.charge(
                execution.counters, ExecutionLocation.DEVICE)
            setup_time = self.timing.command_setup_time(command.payload_bytes)
            result = execution.result
            if result is None:
                result = QueryResult(execution.rows, [])
            if execution.result is not None:
                # Aggregated on device: a handful of scalar rows.
                result_bytes = max(64, len(result.rows) * 64)
            else:
                result_bytes = max(
                    64, len(result.rows) * max(1, execution.row_bytes))
            slot_bytes = self._slot_bytes()
            commands = max(1, math.ceil(result_bytes / max(1, slot_bytes)))
            transfer = self.timing.transfer_time(result_bytes,
                                                 commands=commands)
            total = setup_time + device_time + transfer
            timeline = [
                TimelinePhase("host", "setup", 0.0, setup_time, "NDP command"),
                TimelinePhase("device", "compute", setup_time,
                              setup_time + device_time, "full QEP"),
                TimelinePhase("host", "wait", setup_time,
                              setup_time + device_time, "full NDP wait"),
                TimelinePhase("host", "transfer", setup_time + device_time,
                              total, "result fetch"),
            ]
            return ExecutionReport(
                strategy="full-ndp",
                total_time=total,
                result=result,
                split_index=plan.table_count - 1,
                device_counters=execution.counters,
                device_breakdown=device_breakdown,
                setup_time=setup_time,
                host_wait_initial=device_time,
                transfer_time=transfer,
                device_busy_time=device_time,
                batches=1,
                intermediate_rows=len(execution.rows),
                intermediate_bytes=len(execution.rows) * execution.row_bytes,
                timeline=timeline,
                notes={"pointer_cache": execution.pointer_cache},
            )
        finally:
            self.ndp.release(execution)
