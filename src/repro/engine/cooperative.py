"""Cooperative (overlapping) host/device execution (paper §4, Fig 7).

For a split point Hk the device runs the pipeline prefix (tables 0..k and
their k joins) and streams intermediate-result batches through a bounded
set of shared buffer slots; the host fetches each batch over PCIe and
joins it with the remaining tables while the device autonomously produces
the next batch.  The device stalls when all slots are full; the host
waits when no batch is ready — both are accounted, reproducing the
Fig 17 timeline and the Table 4 stage breakdown.

The timeline is built on the :mod:`repro.sim` kernel: the PCIe link, the
device's NDP core and the host CPU are :class:`~repro.sim.BusyResource`\\ s
driven by an :class:`~repro.sim.EventLoop`.  Everything that crosses the
link — the NDP command payload, the device's per-batch result pushes and
the host's fetch/completion commands — acquires the link resource, so
transfers serialize with queuing delays that feed the ``host_wait_*`` /
``device_stall_time`` accounting instead of silently overlapping.

A single-query run owns a private kernel (its own clock, loop and
resources, all starting at time zero).  The concurrent workload
scheduler (:mod:`repro.sched`) instead *stages* splits with
:meth:`CooperativeExecutor.prepare_split` and starts many of them on one
shared :class:`~repro.sim.SimContext`, so queries contend for the same
link/core/CPU and the same device DRAM budget.
"""

import math

from repro.context import ExecutionContext, reject_removed_kwargs
from repro.engine.counters import WorkCounters
from repro.engine.results import ExecutionReport, QueryResult, TimelinePhase
from repro.engine.timing import ExecutionLocation
from repro.errors import (DeadlineExceededError, PlanError, ReplanTriggered,
                          ReproError, RetriesExhaustedError,
                          TransientDeviceError)
from repro.faults import FAULTS_TRACK, NULL_INJECTOR
from repro.query.ast import conjuncts
from repro.sim import (DEVICE_RESOURCE, HOST_RESOURCE, LINK_RESOURCE,
                       BusyResource, EventLoop, SimClock, as_tracer)

#: Track that carries one root span per traced execution.
EXEC_TRACK = "exec"


def _counter_deltas(counters):
    """Non-zero entries of a :class:`WorkCounters` delta, for trace args."""
    return {name: value for name, value in counters.as_dict().items()
            if value}


class _SplitSimulation:
    """Discrete-event producer/consumer simulation of one hybrid split.

    The device process produces intermediate batches on ``core`` and DMAs
    each finished batch over ``link`` into a shared buffer slot; the host
    process posts a small fetch/completion command on ``link`` per batch,
    joins the batch on ``cpu``, which frees the slot.  The device blocks
    when all ``slots`` slots hold unconsumed batches; the host blocks when
    the next batch has not arrived yet.  Real host-side join work happens
    inside the consume events, in batch order, so results are identical to
    the sequential implementation.

    With ``kernel`` (a :class:`~repro.sim.SimContext`) the simulation
    runs on *shared* clock/loop/resources: :meth:`start` schedules the
    begin event at an absolute workload time and completion is signalled
    through ``on_complete`` instead of draining a private loop.  Without
    it the simulation owns a private kernel and :meth:`run` drains it —
    the original single-query behaviour, byte for byte.
    """

    def __init__(self, executor, timing, plan, batches, per_batch_device,
                 row_bytes, slots, setup_time, session, host_counters,
                 tracer=None, strategy_label="split", injector=None,
                 start_offset=0.0, kernel=None, trace_label=None,
                 finalize=True):
        self.executor = executor
        self.timing = timing
        self.plan = plan
        self.batches = batches
        self.n_batches = len(batches)
        self.per_batch_device = per_batch_device
        self.row_bytes = row_bytes
        self.slots = max(1, slots)
        self.setup_time = setup_time
        self.session = session
        self.host_counters = host_counters
        self.tracer = as_tracer(tracer)
        self.strategy_label = strategy_label
        self.trace_label = trace_label or strategy_label
        self.root_span = None
        self.injector = injector or NULL_INJECTOR
        self.start_offset = start_offset   # admission-control wait
        #: Scatter-gather partitions defer the epilogue: the cluster
        #: merges all partitions' joined rows and finalizes *once*.
        self.finalize = finalize

        self.kernel = kernel
        self.shared = kernel is not None
        self.origin = 0.0                  # workload time this run begins
        self.on_complete = None            # shared mode: completion hook
        self.on_abandon = None             # shared mode: retries-exhausted
        if kernel is None:
            self.exec_track = EXEC_TRACK
            self.clock = SimClock()
            self.loop = EventLoop(self.clock, tracer=self.tracer)
            self.link = BusyResource(LINK_RESOURCE, tracer=self.tracer)
            self.core = BusyResource(DEVICE_RESOURCE, tracer=self.tracer)
            self.cpu = BusyResource(HOST_RESOURCE, tracer=self.tracer)
        else:
            # Per-query root spans get their own track so concurrent
            # executions don't interleave X events on one track.
            self.exec_track = f"{EXEC_TRACK}/{self.trace_label}"
            self.clock = kernel.clock
            self.loop = kernel.loop
            self.link = kernel.link
            self.core = kernel.core
            self.cpu = kernel.cpu

        self.timeline = []
        self.joined_rows = []
        self.result = None
        self.ready = [None] * self.n_batches      # batch i in its slot
        self.consumed = [None] * self.n_batches   # slot of batch i freed
        self.device_blocked = None                # (batch index, since)
        self.host_blocked = None                  # (batch index, since)

        self.host_wait_initial = 0.0
        self.host_wait_other = 0.0
        self.device_stall = 0.0
        self.transfer_total = 0.0
        self.host_processing = 0.0
        self.host_end = 0.0
        self.retries = 0          # failed NDP command submissions
        self.wasted_time = 0.0    # failed-attempt link time + backoffs
        self.slow_time = 0.0      # extra compute from SlowDeviceModel
        self.completed = False    # host epilogue ran
        self.cancelled = False    # cooperatively cancelled (see cancel())
        self.cancelled_at = None
        self.cancel_reason = None
        #: Optional pipeline-breaker callback ``hook(sim, batch_index)``,
        #: invoked as each device batch lands host-side — the point where
        #: observed cardinality can be checked against the planner's
        #: estimate (docs/adaptivity.md).  The hook may cooperatively
        #: ``cancel()`` the run to trigger mid-query re-planning.  None
        #: (the default) is zero-cost: no call, no trace delta, byte-
        #: identical to builds without the hook.
        self.breaker_hook = None

    # -- helpers -------------------------------------------------------
    def _phase(self, actor, kind, start, end, label, resource="",
               operator="", extra=None):
        self.timeline.append(
            TimelinePhase(actor, kind, start, end, label, resource=resource))
        if self.tracer.enabled:
            args = {"placement": "DEVICE" if actor == "device" else "HOST"}
            if resource:
                args["resource"] = resource
            if operator:
                args["operator"] = operator
            if extra:
                args.update(extra)
            self.tracer.span(f"{actor}/{kind}", label or kind, start, end,
                             category=kind, parent=self.root_span, args=args)

    def _host_wait(self, index, start, end, label):
        if end <= start:
            return
        if index == 0:
            self.host_wait_initial += end - start
        else:
            self.host_wait_other += end - start
        self._phase("host", "wait", start, end, label, operator="wait",
                    extra={"batch": index} if self.tracer.enabled else None)

    def _host_charge(self, work):
        """Price host-side work with this run's injector attached.

        Serial runs execute inside ``run_split``'s injector-attachment
        window, so attaching again would be redundant; shared-kernel runs
        interleave many queries with distinct injectors on one flash
        model, so each pricing call attaches its own for its duration.
        """
        if self.shared and self.injector.enabled:
            with self.injector.attached(self.executor.ndp.device):
                return work()
        return work()

    # -- simulation ----------------------------------------------------
    def run(self):
        """Run the simulation on the private kernel; returns total time."""
        if self.shared:
            raise ReproError(
                "run() drives a private kernel; shared-kernel simulations "
                "are started with start() and drained by their scheduler")
        if self.tracer.enabled:
            self.root_span = self.tracer.begin(
                self.exec_track, self.strategy_label, 0.0,
                category="execution",
                args={"strategy": self.strategy_label,
                      "batches": self.n_batches, "slots": self.slots})
        self.loop.schedule_at(0.0, self._begin, label="begin")
        self.loop.run()
        total = max(self.link.free_at, self.core.free_at, self.cpu.free_at)
        if self.root_span is not None:
            self.tracer.end(self.root_span, total)
        return total

    def start(self, at, on_complete=None, on_abandon=None):
        """Begin this run at workload time ``at`` on the shared kernel.

        ``on_complete(sim)`` fires (as an event) when the host epilogue
        finishes; ``on_abandon(sim, error)`` replaces the
        :class:`~repro.errors.RetriesExhaustedError` raise when command
        submission exhausts its retries, so one query's degradation
        doesn't unwind the whole workload's event loop.
        """
        if not self.shared:
            raise ReproError("start() requires a shared kernel; "
                             "single runs use run()")
        self.origin = at
        self.on_complete = on_complete
        self.on_abandon = on_abandon
        if self.tracer.enabled:
            self.root_span = self.tracer.begin(
                self.exec_track, self.trace_label, at, category="execution",
                args={"strategy": self.strategy_label,
                      "batches": self.n_batches, "slots": self.slots})
        self.loop.schedule_at(at, self._begin,
                              label=f"begin {self.trace_label}")

    def cancel(self, now, reason="cancelled"):
        """Cooperatively cancel this run at simulated time ``now``.

        Already-scheduled events become no-ops (every event entry point
        checks the flag), so no *new* resource time is booked after the
        cancellation; busy intervals already *served* stand — they are
        the honest wasted cost, which the caller audits as
        ``now - origin`` — but a booking still in flight at ``now`` is
        truncated (:meth:`~repro.sim.resources.BusyResource.truncate`),
        so a cancelled straggler does not hold its core into the far
        future.  Device DRAM buffers are *not* released here:
        the owning :class:`PreparedSplit` (or ``run_split``'s finally)
        calls ``release()``, keeping reservation accounting in exactly
        one place.  Returns False if the run already completed or was
        already cancelled.
        """
        if self.cancelled or self.completed:
            return False
        self.cancelled = True
        self.cancelled_at = now
        self.cancel_reason = reason
        for resource in (self.core, self.link, self.cpu):
            resource.truncate(now)
        if self.tracer.enabled:
            self.tracer.instant(
                FAULTS_TRACK, f"cancelled: {reason}", now,
                args={"strategy": self.strategy_label,
                      "label": self.trace_label})
        if self.root_span is not None:
            self.tracer.end(self.root_span, now)
            self.root_span = None
        return True

    def _begin(self):
        if self.cancelled:
            return
        offset = self.origin + self.start_offset
        if self.start_offset > 0.0:
            # Admission control waited for a DRAM-pressure window to
            # pass instead of raising DeviceOverloadError outright.
            self.host_wait_initial += self.start_offset
            self._phase("host", "wait", self.origin, offset,
                        "buffer admission wait", operator="admission-wait")
        self._submit(0, offset)

    def _submit(self, attempt, at):
        if self.cancelled:
            return
        # The host assembles the NDP command and pushes its payload over
        # the link; the device cannot start before the command arrived.
        # Submission may fail transiently (fault injection): each failed
        # attempt still crossed the link, then backs off exponentially in
        # simulated time before retrying, bounded by the retry policy.
        setup = self.setup_time
        if self.injector.enabled:
            setup = self.injector.scale_transfer(at, setup)
        begin, end = self.link.acquire(at, setup,
                                       label="NDP command payload")
        if self.injector.enabled:
            try:
                self.injector.check_submission(attempt)
            except TransientDeviceError:
                self._submission_failed(attempt, begin, end)
                return
        self._phase("host", "setup", begin, end, "NDP command",
                    resource=LINK_RESOURCE, operator="ndp-command")
        self.loop.schedule_at(end, lambda: self._device_next(0),
                              label="device start")
        self.loop.schedule_at(end, lambda: self._host_want(0),
                              label="host start")

    def _submission_failed(self, attempt, begin, end):
        self.retries += 1
        self.wasted_time += end - begin
        self._phase("host", "setup", begin, end,
                    f"NDP command (attempt {attempt + 1}: transient "
                    f"failure)", resource=LINK_RESOURCE,
                    operator="ndp-command")
        if self.tracer.enabled:
            self.tracer.instant(FAULTS_TRACK, "transient-command-failure",
                                end, args={"attempt": attempt + 1,
                                           "strategy": self.strategy_label})
        policy = self.injector.retry
        if attempt >= policy.max_retries:
            self._abandon(end)
            return
        backoff = policy.backoff(attempt)
        self.wasted_time += backoff
        self.host_wait_initial += backoff
        self._phase("host", "wait", end, end + backoff,
                    f"retry backoff {attempt + 1}", operator="retry-backoff")
        self.loop.schedule_at(end + backoff,
                              lambda: self._submit(attempt + 1, end + backoff),
                              label=f"resubmit attempt {attempt + 2}")

    def _abandon(self, now):
        """Give up on the offload: close the trace and fail the run.

        Without an ``on_abandon`` hook (single-query runs) the error
        propagates out of the private event loop for the caller's host
        fallback; with one (scheduler runs) the hook absorbs it so the
        shared loop keeps draining the other queries' events.
        """
        if self.tracer.enabled:
            self.tracer.instant(FAULTS_TRACK, "retries-exhausted", now,
                                args={"attempts": self.retries,
                                      "strategy": self.strategy_label})
        if self.root_span is not None:
            self.tracer.end(self.root_span, now)
            self.root_span = None
        # Wasted time is the *elapsed* attempt time, not the absolute sim
        # time: on a shared kernel this attempt started at origin > 0, and
        # a partition that cascades through several devices accumulates
        # each attempt's elapsed cost — absolute times would over-count.
        error = RetriesExhaustedError(
            f"{self.strategy_label}: NDP command submission failed "
            f"{self.retries} time(s), retries exhausted",
            strategy=self.strategy_label, retries=self.retries,
            wasted_time=now - self.origin,
            faults_injected=self.injector.faults_injected())
        if self.on_abandon is not None:
            self.on_abandon(self, error)
            return
        raise error

    # -- device process ------------------------------------------------
    def _device_next(self, i):
        """Try to start producing batch ``i`` at the current sim time."""
        if self.cancelled or i >= self.n_batches:
            return
        if i >= self.slots and self.consumed[i - self.slots] is None:
            # All slots hold unconsumed batches: stall until one frees.
            self.device_blocked = (i, self.clock.now)
            return
        self._device_produce(i)

    def _device_produce(self, i):
        if self.cancelled:
            return
        now = self.clock.now
        if self.injector.enabled:
            online = self.injector.core_offline_until(now)
            if online > now:
                # The NDP core is in an unavailability window: the lost
                # time is a device stall, and production resumes when
                # the core comes back.
                self.device_stall += online - now
                self._phase("device", "stall", now, online,
                            f"NDP core offline before batch {i}",
                            operator="stall")
                self.loop.schedule_at(online,
                                      lambda: self._device_produce(i),
                                      label=f"core online for batch {i}")
                return
        per_batch = self.per_batch_device
        if self.injector.enabled:
            per_batch = self.injector.scale_compute(now, per_batch)
            self.slow_time += per_batch - self.per_batch_device
        begin, end = self.core.acquire(now, per_batch,
                                       label=f"produce batch {i}")
        if self.shared and begin > now:
            # Another query's fragment occupies the NDP core: the wait
            # is this query's device stall (cross-query contention).
            self.device_stall += begin - now
            self._phase("device", "stall", now, begin,
                        f"core busy before batch {i}", operator="stall")
        self._phase("device", "compute", begin, end,
                    f"batch {i} ({len(self.batches[i])} rows)",
                    resource=DEVICE_RESOURCE, operator="pqep-prefix",
                    extra={"batch": i, "rows": len(self.batches[i])}
                    if self.tracer.enabled else None)
        self.loop.schedule_at(end, lambda: self._device_produced(i),
                              label=f"device produced {i}")

    def _device_produced(self, i):
        if self.cancelled:
            return
        now = self.clock.now
        batch = self.batches[i]
        if batch:
            push = self.timing.transfer_time(len(batch) * self.row_bytes)
            if self.injector.enabled:
                push = self.injector.scale_transfer(now, push)
            begin, end = self.link.acquire(now, push,
                                           label=f"push batch {i}")
            if begin > now:
                # The link is carrying another transfer: queuing delay.
                self.device_stall += begin - now
                self._phase("device", "stall", now, begin,
                            f"link busy before push {i}", operator="stall")
            self._phase("device", "transfer", begin, end,
                        f"push batch {i}", resource=LINK_RESOURCE,
                        operator="dma-push",
                        extra={"batch": i,
                               "bytes": len(batch) * self.row_bytes}
                        if self.tracer.enabled else None)
            self.transfer_total += end - begin
            self.loop.schedule_at(end, lambda: self._batch_ready(i),
                                  label=f"batch {i} ready")
        else:
            # Zero-row batch: nothing crosses the link.
            self.loop.schedule_at(now, lambda: self._batch_ready(i),
                                  label=f"batch {i} ready (empty)")
        # Production of the next batch pipelines with the push DMA.
        self._device_next(i + 1)

    def _batch_ready(self, i):
        if self.cancelled:
            return
        self.ready[i] = self.clock.now
        if self.breaker_hook is not None:
            # Pipeline breaker: batch ``i`` just crossed the device→host
            # exchange.  Let the adaptive controller compare observed
            # cardinality against the decision's estimate; it may cancel
            # this run to re-plan the remaining QEP.
            self.breaker_hook(self, i)
            if self.cancelled:
                return
        if self.host_blocked is not None and self.host_blocked[0] == i:
            index, since = self.host_blocked
            self.host_blocked = None
            self._host_wait(index, since, self.clock.now,
                            f"waiting for batch {index}")
            self._host_fetch(index)

    # -- host process --------------------------------------------------
    def _host_want(self, i):
        if self.cancelled:
            return
        if i >= self.n_batches:
            self._host_epilogue()
            return
        if self.ready[i] is not None:
            self._host_fetch(i)
        else:
            self.host_blocked = (i, self.clock.now)

    def _host_fetch(self, i):
        if self.cancelled:
            return
        now = self.clock.now
        if self.batches[i]:
            fetch = self.timing.fetch_command_time()
            if self.injector.enabled:
                fetch = self.injector.scale_transfer(now, fetch)
            begin, end = self.link.acquire(now, fetch,
                                           label=f"fetch batch {i}")
            # A device push may occupy the link: the host keeps waiting.
            self._host_wait(i, now, begin, f"link busy before fetch {i}")
            self._phase("host", "transfer", begin, end,
                        f"fetch batch {i}", resource=LINK_RESOURCE,
                        operator="fetch-command",
                        extra={"batch": i} if self.tracer.enabled else None)
            self.transfer_total += end - begin
            self.loop.schedule_at(end, lambda: self._host_consume(i),
                                  label=f"host consume {i}")
        else:
            self.loop.schedule_at(now, lambda: self._host_consume(i),
                                  label=f"host consume {i} (empty)")

    def _host_consume(self, i):
        if self.cancelled:
            return
        now = self.clock.now
        self.consumed[i] = now
        if (self.device_blocked is not None
                and self.device_blocked[0] - self.slots == i):
            index, since = self.device_blocked
            self.device_blocked = None
            if now > since:
                self.device_stall += now - since
                self._phase("device", "stall", since, now,
                            f"slots full before batch {index}",
                            operator="stall")
            self._device_produce(index)

        batch_time, delta = self._host_charge(
            lambda: self.executor._process_batch(
                self.session, self.batches[i], self.row_bytes,
                self.host_counters, self.joined_rows))
        begin, end = self.cpu.acquire(now, batch_time,
                                      label=f"process batch {i}")
        if self.shared and begin > now:
            # Another query holds the host CPU: queueing counts as host
            # wait, not as processing.
            self._host_wait(i, now, begin, f"cpu busy before batch {i}")
        self._phase("host", "compute", begin, end, f"process batch {i}",
                    resource=HOST_RESOURCE, operator="fragment-join",
                    extra={"batch": i, "counters": _counter_deltas(delta)}
                    if self.tracer.enabled else None)
        self.host_processing += batch_time
        self.loop.schedule_at(end, lambda: self._host_want(i + 1),
                              label=f"host want {i + 1}")

    def _host_epilogue(self):
        if self.cancelled:
            return
        now = self.clock.now
        if self.finalize:
            epilogue, delta = self._host_charge(
                lambda: self.executor._finalize_time(self))
            begin, end = self.cpu.acquire(now, epilogue, label="finalize")
            self._phase("host", "compute", begin, end, "finalize",
                        resource=HOST_RESOURCE, operator="finalize",
                        extra={"counters": _counter_deltas(delta)}
                        if self.tracer.enabled else None)
            self.host_processing += epilogue
        else:
            # Deferred epilogue: the partition's joined rows stay raw in
            # ``joined_rows``; the scatter-gather merge finalizes them.
            end = now
        self.host_end = end
        self.completed = True
        if self.shared:
            if self.root_span is not None:
                self.tracer.end(self.root_span, end)
                self.root_span = None
            if self.on_complete is not None:
                self.loop.schedule_at(
                    end, lambda: self.on_complete(self),
                    label=f"complete {self.trace_label}")

    def resource_stats(self, horizon):
        """Per-resource busy/wait/utilization over ``[0, horizon]``."""
        return {resource.name: resource.stats(horizon)
                for resource in (self.link, self.core, self.cpu)}


class PreparedSplit:
    """A hybrid split staged for execution.

    The device fragment already ran (its pipeline buffers are *reserved*
    on the device until :meth:`release`), intermediate batches are
    staged, and the host fragment session is open.  ``run_split`` drives
    one to completion on a private kernel; the workload scheduler starts
    many on a shared kernel and calls :meth:`finish` as their completion
    events fire — the held reservations are what concurrent admission
    control arbitrates.
    """

    def __init__(self, executor, plan, split_index, execution, sim,
                 device_time, device_breakdown, setup_time, n_batches,
                 row_bytes, intermediate_rows, host_counters,
                 device_aliases, admission_wait, injector, tracer):
        self.executor = executor
        self.plan = plan
        self.split_index = split_index
        self.execution = execution
        self.sim = sim
        self.device_time = device_time
        self.device_breakdown = device_breakdown
        self.setup_time = setup_time
        self.n_batches = n_batches
        self.row_bytes = row_bytes
        self.intermediate_rows = intermediate_rows
        self.host_counters = host_counters
        self.device_aliases = device_aliases
        self.admission_wait = admission_wait
        self.injector = injector
        self.tracer = tracer
        self._released = False

    @property
    def reservation_bytes(self):
        """Device DRAM bytes this split's pipeline holds while staged."""
        return self.execution.reservation.total_bytes

    def start(self, at, on_complete=None, on_abandon=None):
        """Start the staged simulation on its shared kernel at ``at``."""
        self.sim.start(at, on_complete=on_complete, on_abandon=on_abandon)

    def cancel(self, now, reason="cancelled"):
        """Cooperatively cancel the in-flight simulation and release.

        Safe at any point of the life cycle: a completed or already
        cancelled simulation is left alone, and the DRAM reservation
        release is idempotent.  Returns whether the simulation was
        actually cancelled by this call.
        """
        cancelled = self.sim.cancel(now, reason=reason)
        self.release()
        return cancelled

    def release(self):
        """Release the device pipeline buffers (idempotent)."""
        if not self._released:
            self._released = True
            self.executor.ndp.release(self.execution)

    def build_report(self, total_time, resource_stats=None):
        """The :class:`ExecutionReport` for the completed simulation."""
        sim = self.sim
        _final_time, host_breakdown = sim._host_charge(
            lambda: self.executor.timing.charge(self.host_counters,
                                                ExecutionLocation.HOST))
        report = ExecutionReport(
            strategy=f"H{self.split_index}",
            total_time=total_time,
            result=sim.result,
            split_index=self.split_index,
            host_counters=self.host_counters,
            device_counters=self.execution.counters,
            host_breakdown=host_breakdown,
            device_breakdown=self.device_breakdown,
            setup_time=self.setup_time,
            host_wait_initial=sim.host_wait_initial,
            host_wait_other=sim.host_wait_other,
            transfer_time=sim.transfer_total,
            host_processing_time=sim.host_processing,
            device_busy_time=self.device_time + sim.slow_time,
            device_stall_time=sim.device_stall,
            batches=self.n_batches,
            intermediate_rows=self.intermediate_rows,
            intermediate_bytes=self.intermediate_rows * self.row_bytes,
            timeline=sim.timeline,
            resource_stats=resource_stats if resource_stats is not None
            else {},
            trace_metrics=self.tracer.metrics(),
            notes={"pointer_cache": self.execution.pointer_cache,
                   "device_aliases": self.device_aliases,
                   "device_stage_rows": self.execution.stage_trace},
        )
        if self.injector.enabled:
            report.retries = sim.retries
            report.faults_injected = self.injector.faults_injected()
            report.wasted_device_time = sim.wasted_time
            report.admission_wait_time = self.admission_wait
        return report

    def finish(self, total_time, resource_stats=None):
        """Build the report, then release the device pipeline."""
        try:
            return self.build_report(total_time,
                                     resource_stats=resource_stats)
        finally:
            self.release()


class CooperativeExecutor:
    """Runs hybrid splits and full-NDP executions."""

    def __init__(self, host_engine, ndp_engine, timing_model):
        self.host = host_engine
        self.ndp = ndp_engine
        self.timing = timing_model

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _slot_bytes(self):
        device = self.ndp.device
        return max(1024, int(device.spec.shared_buffer_slot_bytes
                             * self.ndp.config.buffer_scale))

    def _split_residual(self, plan, device_aliases):
        device_side = []
        host_side = []
        for conjunct in conjuncts(plan.residual):
            if conjunct.aliases() <= set(device_aliases):
                device_side.append(conjunct)
            else:
                host_side.append(conjunct)
        return device_side, host_side

    def _split_fragments(self, plan, split_index):
        """(device_entries, host_entries, aliases, residual split) for Hk."""
        if not 0 <= split_index < plan.table_count:
            raise PlanError(
                f"split index {split_index} out of range for "
                f"{plan.table_count} tables")
        device_entries = plan.prefix(split_index)
        host_entries = plan.suffix(split_index)
        device_aliases = [entry.alias for entry in device_entries]
        device_residual, host_residual = self._split_residual(
            plan, device_aliases)
        return (device_entries, host_entries, device_aliases,
                device_residual, host_residual)

    def _process_batch(self, session, batch, row_bytes, host_counters,
                       joined_rows):
        """Join one device batch on the host.

        Returns ``(charged_seconds, counter_delta)`` — the delta is the
        host work this batch added, which traced runs attach to the
        batch's compute span.
        """
        before = host_counters.copy()
        if session is not None:
            fragment_rows, _fragment_bytes = session.process_batch(
                batch, row_bytes)
        else:
            fragment_rows = batch
        # Each fragment is one ColumnBatch; finalize concatenates them.
        joined_rows.append(fragment_rows)
        delta = host_counters.copy()
        for name, value in before.as_dict().items():
            setattr(delta, name, getattr(delta, name) - value)
        batch_time, _ = self.timing.charge(delta, ExecutionLocation.HOST)
        return batch_time, delta

    def _finalize_time(self, sim):
        """Run the host epilogue for ``sim``.

        Returns ``(charged_seconds, counter_delta)`` like
        :meth:`_process_batch`.
        """
        counters = sim.host_counters
        before = counters.copy()
        sim.result = self.host.finalize_fragment(sim.plan, sim.joined_rows,
                                                 counters)
        delta = counters.copy()
        for name, value in before.as_dict().items():
            setattr(delta, name, getattr(delta, name) - value)
        epilogue, _ = self.timing.charge(delta, ExecutionLocation.HOST)
        return epilogue, delta

    # ------------------------------------------------------------------
    # Hybrid split execution
    # ------------------------------------------------------------------
    def run_split(self, plan, split_index, ctx=None, breaker_hook=None,
                  **removed):
        """Execute the plan with split point ``H{split_index}``.

        ``ctx`` (an :class:`~repro.context.ExecutionContext`) carries the
        run's tracer, fault plan and retry policy — the legacy
        ``tracer=`` / ``faults=`` keywords were removed and raise.
        Tracing records the run as structured spans; faults degrade the
        run — transient submission failures retry with backoff in
        simulated time, and exhausting the retries raises
        :class:`~repro.errors.RetriesExhaustedError` for the caller's
        host fallback.

        ``breaker_hook(sim, batch_index)`` — when given — fires at every
        pipeline breaker (docs/adaptivity.md); a hook that cancels the
        simulation makes this method raise
        :class:`~repro.errors.ReplanTriggered` for the adaptive driver.
        """
        reject_removed_kwargs("CooperativeExecutor.run_split", removed)
        ctx = ExecutionContext.coerce(ctx)
        tracer = ctx.sim_tracer()
        injector = ctx.injector()
        fragments = self._split_fragments(plan, split_index)
        with injector.attached(self.ndp.device):
            prepared = self._prepare_split_attached(
                plan, split_index, tracer, injector, *fragments)
            try:
                sim = prepared.sim
                sim.breaker_hook = breaker_hook
                if ctx.deadline is not None:
                    sim.loop.schedule_at(
                        ctx.deadline,
                        lambda: sim.cancel(ctx.deadline, reason="deadline"),
                        label="deadline")
                total = sim.run()
                if sim.cancelled and sim.cancel_reason == "replan":
                    raise ReplanTriggered(
                        f"H{split_index}: cancelled at a pipeline breaker "
                        f"to re-plan the remaining QEP",
                        strategy=f"H{split_index}", at=sim.cancelled_at,
                        elapsed=sim.cancelled_at - sim.origin,
                        batches_consumed=sum(
                            1 for t in sim.consumed if t is not None),
                        batches_total=sim.n_batches)
                if sim.cancelled:
                    raise DeadlineExceededError(
                        f"H{split_index}: deadline {ctx.deadline}s expired "
                        f"before completion (cancelled in flight)",
                        deadline=ctx.deadline, elapsed=ctx.deadline,
                        retries=sim.retries, wasted_time=ctx.deadline,
                        faults_injected=injector.faults_injected(),
                        partial={
                            "strategy": f"H{split_index}",
                            "batches_total": sim.n_batches,
                            "batches_consumed": sum(
                                1 for t in sim.consumed if t is not None),
                        })
                return prepared.build_report(
                    total,
                    resource_stats=prepared.sim.resource_stats(total))
            finally:
                prepared.release()

    def prepare_split(self, plan, split_index, ctx=None, *, kernel,
                      trace_label=None, shard=None, finalize=True):
        """Stage split ``H{split_index}`` for execution on ``kernel``.

        Runs the device fragment eagerly — its pipeline buffers stay
        *reserved* on the device until ``release()``/``finish()``, which
        is what the concurrent scheduler's admission control arbitrates —
        and returns a :class:`PreparedSplit` ready to ``start(at)`` on
        the shared event loop.  Raises
        :class:`~repro.errors.DeviceOverloadError` when the pipeline does
        not fit the remaining device DRAM budget.

        ``shard`` restricts the driving-table scan to one partition
        (cluster scatter-gather); ``finalize=False`` defers the host
        epilogue so the cluster can merge partitions and finalize once.
        """
        ctx = ExecutionContext.coerce(ctx)
        tracer = ctx.sim_tracer()
        injector = ctx.injector()
        fragments = self._split_fragments(plan, split_index)
        with injector.attached(self.ndp.device):
            return self._prepare_split_attached(
                plan, split_index, tracer, injector, *fragments,
                kernel=kernel, trace_label=trace_label, shard=shard,
                finalize=finalize)

    def _prepare_split_attached(self, plan, split_index, tracer, injector,
                                device_entries, host_entries,
                                device_aliases, device_residual,
                                host_residual, kernel=None,
                                trace_label=None, shard=None,
                                finalize=True):
        # --- device fragment -----------------------------------------
        command = self.ndp.prepare_command(plan, device_entries,
                                           device_residual, shard=shard)
        admission_wait = 0.0
        if injector.enabled:
            needed = self.ndp.device.pipeline_cost_bytes(
                *command.pipeline_shape())
            admission_wait = injector.admission_delay(
                needed, self.ndp.device.available_bytes,
                query=trace_label or f"H{split_index}",
                device=self.ndp.device.spec.name)
        execution = self.ndp.execute(command)
        try:
            device_time, device_breakdown = self.timing.charge(
                execution.counters, ExecutionLocation.DEVICE)
            setup_time = self.timing.command_setup_time(command.payload_bytes)

            # --- batching over shared buffer slots --------------------
            slot_bytes = self._slot_bytes()
            row_bytes = max(1, execution.row_bytes)
            batch_rows = max(1, slot_bytes // row_bytes)
            rows = execution.rows
            n_batches = max(1, math.ceil(len(rows) / batch_rows))
            batches = [rows[i * batch_rows:(i + 1) * batch_rows]
                       for i in range(n_batches)]
            slots = self.ndp.device.spec.shared_buffer_slots
            per_batch_device = device_time / n_batches

            host_counters = WorkCounters()
            session = None
            if host_entries or host_residual:
                session = self.host.fragment_session(
                    plan, host_entries, device_aliases, host_counters,
                    residual_conjuncts=host_residual)

            sim = _SplitSimulation(
                self, self.timing, plan, batches, per_batch_device,
                row_bytes, slots, setup_time, session, host_counters,
                tracer=tracer, strategy_label=f"H{split_index}",
                injector=injector, start_offset=admission_wait,
                kernel=kernel, trace_label=trace_label, finalize=finalize)
            return PreparedSplit(
                executor=self, plan=plan, split_index=split_index,
                execution=execution, sim=sim, device_time=device_time,
                device_breakdown=device_breakdown, setup_time=setup_time,
                n_batches=n_batches, row_bytes=row_bytes,
                intermediate_rows=len(rows), host_counters=host_counters,
                device_aliases=device_aliases,
                admission_wait=admission_wait, injector=injector,
                tracer=tracer)
        except BaseException:
            self.ndp.release(execution)
            raise

    # ------------------------------------------------------------------
    # Full NDP execution
    # ------------------------------------------------------------------
    def run_full_ndp(self, plan, ctx=None, **removed):
        """Execute the whole QEP on the device (aggregation included).

        ``ctx`` carries tracer/faults like :meth:`run_split`; the legacy
        ``tracer=`` / ``faults=`` keywords were removed and raise.
        """
        reject_removed_kwargs("CooperativeExecutor.run_full_ndp", removed)
        ctx = ExecutionContext.coerce(ctx)
        tracer = ctx.sim_tracer()
        injector = ctx.injector()
        with injector.attached(self.ndp.device):
            return self._run_full_ndp_attached(plan, tracer, injector,
                                               deadline=ctx.deadline)

    def _run_full_ndp_attached(self, plan, tracer, injector, deadline=None):
        device_entries = plan.entries
        device_residual = conjuncts(plan.residual)
        command = self.ndp.prepare_command(
            plan, device_entries, device_residual, aggregates_on_device=True)
        admission_wait = 0.0
        if injector.enabled:
            needed = self.ndp.device.pipeline_cost_bytes(
                *command.pipeline_shape())
            admission_wait = injector.admission_delay(
                needed, self.ndp.device.available_bytes,
                query="full-ndp", device=self.ndp.device.spec.name)
        execution = self.ndp.execute(command)
        try:
            device_time, device_breakdown = self.timing.charge(
                execution.counters, ExecutionLocation.DEVICE)
            setup_time = self.timing.command_setup_time(command.payload_bytes)
            result = execution.result
            if result is None:
                result = QueryResult(execution.rows.rows(), [])
            if execution.result is not None:
                # Aggregated on device: a handful of scalar rows.
                result_bytes = max(64, len(result.rows) * 64)
            else:
                result_bytes = max(
                    64, len(result.rows) * max(1, execution.row_bytes))
            slot_bytes = self._slot_bytes()
            commands = max(1, math.ceil(result_bytes / max(1, slot_bytes)))
            transfer = self.timing.transfer_time(result_bytes,
                                                 commands=commands)

            # Serialize command payload, device compute, and the result
            # push on the sim kernel's resources.
            link = BusyResource(LINK_RESOURCE, tracer=tracer)
            core = BusyResource(DEVICE_RESOURCE, tracer=tracer)
            cpu = BusyResource(HOST_RESOURCE, tracer=tracer)
            root_span = None
            if tracer.enabled:
                root_span = tracer.begin(
                    EXEC_TRACK, "full-ndp", 0.0, category="execution",
                    args={"strategy": "full-ndp", "batches": 1})
            timeline = []
            retries = 0
            extra_wait = admission_wait   # admission + retry backoffs
            wasted_time = 0.0
            at = admission_wait
            if admission_wait > 0.0:
                timeline.append(TimelinePhase(
                    "host", "wait", 0.0, admission_wait,
                    "buffer admission wait"))
            # Submit the NDP command; submission may fail transiently
            # (fault injection) and retries back off in simulated time.
            attempt = 0
            while True:
                setup = setup_time
                if injector.enabled:
                    setup = injector.scale_transfer(at, setup)
                _s0, setup_end = link.acquire(at, setup,
                                              label="NDP command payload")
                if not injector.enabled:
                    break
                try:
                    injector.check_submission(attempt)
                    break
                except TransientDeviceError:
                    retries += 1
                    wasted_time += setup_end - _s0
                    timeline.append(TimelinePhase(
                        "host", "setup", _s0, setup_end,
                        f"NDP command (attempt {attempt + 1}: transient "
                        f"failure)", resource=LINK_RESOURCE))
                    if tracer.enabled:
                        tracer.instant(
                            FAULTS_TRACK, "transient-command-failure",
                            setup_end, args={"attempt": attempt + 1,
                                             "strategy": "full-ndp"})
                    policy = injector.retry
                    if attempt >= policy.max_retries:
                        if tracer.enabled:
                            tracer.instant(
                                FAULTS_TRACK, "retries-exhausted", setup_end,
                                args={"attempts": retries,
                                      "strategy": "full-ndp"})
                        if root_span is not None:
                            tracer.end(root_span, setup_end)
                        raise RetriesExhaustedError(
                            f"full-ndp: NDP command submission failed "
                            f"{retries} time(s), retries exhausted",
                            strategy="full-ndp", retries=retries,
                            wasted_time=setup_end,
                            faults_injected=injector.faults_injected())
                    backoff = policy.backoff(attempt)
                    wasted_time += backoff
                    extra_wait += backoff
                    timeline.append(TimelinePhase(
                        "host", "wait", setup_end, setup_end + backoff,
                        f"retry backoff {attempt + 1}"))
                    at = setup_end + backoff
                    attempt += 1
            core_stall = 0.0
            compute_start = setup_end
            if injector.enabled:
                online = injector.core_offline_until(setup_end)
                if online > setup_end:
                    core_stall = online - setup_end
                    timeline.append(TimelinePhase(
                        "device", "stall", setup_end, online,
                        "NDP core offline", resource=DEVICE_RESOURCE))
                    compute_start = online
            effective_device_time = device_time
            if injector.enabled:
                effective_device_time = injector.scale_compute(
                    compute_start, device_time)
            _c0, compute_end = core.acquire(compute_start,
                                            effective_device_time,
                                            label="full QEP")
            if injector.enabled:
                transfer = injector.scale_transfer(compute_end, transfer)
            push_begin, total = link.acquire(compute_end, transfer,
                                             label="result push")
            cpu.acquire(at, setup_time,   # host assembles the command
                        label="assemble NDP command")
            timeline.extend([
                TimelinePhase("host", "setup", _s0, setup_end, "NDP command",
                              resource=LINK_RESOURCE),
                TimelinePhase("device", "compute", _c0, compute_end,
                              "full QEP", resource=DEVICE_RESOURCE),
                TimelinePhase("host", "wait", setup_end, compute_end,
                              "full NDP wait"),
                TimelinePhase("host", "transfer", push_begin, total,
                              "result fetch", resource=LINK_RESOURCE),
            ])
            if tracer.enabled:
                _OPERATORS = {"setup": "ndp-command", "compute": "full-qep",
                              "wait": "wait", "transfer": "result-fetch",
                              "stall": "stall"}
                for phase in timeline:
                    args = {"placement": ("DEVICE" if phase.actor == "device"
                                          else "HOST"),
                            "operator": _OPERATORS[phase.kind]}
                    if phase.resource:
                        args["resource"] = phase.resource
                    if phase.kind == "compute":
                        args["counters"] = _counter_deltas(execution.counters)
                    tracer.span(f"{phase.actor}/{phase.kind}", phase.label,
                                phase.start, phase.end, category=phase.kind,
                                parent=root_span, args=args)
                tracer.end(root_span, total)
            if deadline is not None and total > deadline:
                # A full-NDP offload is one non-cancellable command: the
                # host gives up waiting at the deadline and the device's
                # result is discarded.
                if root_span is not None:
                    tracer.end(root_span, deadline)
                raise DeadlineExceededError(
                    f"full-ndp: deadline {deadline}s expired before the "
                    f"result push finished (would have taken {total:.6f}s)",
                    deadline=deadline, elapsed=deadline, retries=retries,
                    wasted_time=deadline,
                    faults_injected=injector.faults_injected(),
                    partial={"strategy": "full-ndp",
                             "would_have_taken": total})
            resource_stats = {r.name: r.stats(total)
                              for r in (link, core, cpu)}
            host_wait = effective_device_time
            if injector.enabled:
                host_wait += core_stall + extra_wait
            report = ExecutionReport(
                strategy="full-ndp",
                total_time=total,
                result=result,
                split_index=plan.table_count - 1,
                device_counters=execution.counters,
                device_breakdown=device_breakdown,
                setup_time=setup_time,
                host_wait_initial=host_wait,
                transfer_time=transfer,
                device_busy_time=effective_device_time,
                device_stall_time=core_stall,
                batches=1,
                intermediate_rows=len(execution.rows),
                intermediate_bytes=len(execution.rows) * execution.row_bytes,
                timeline=timeline,
                resource_stats=resource_stats,
                trace_metrics=tracer.metrics(),
                notes={"pointer_cache": execution.pointer_cache},
            )
            if injector.enabled:
                report.retries = retries
                report.faults_injected = injector.faults_injected()
                report.wasted_device_time = wasted_time
                report.admission_wait_time = admission_wait
            return report
        finally:
            self.ndp.release(execution)
