"""The execution context: one handle for every cross-cutting collaborator.

Tracing (PR 2) and fault injection (PR 3) were threaded through the
engine as separate ``tracer=`` / ``faults=`` keyword arguments; the
concurrent scheduler would have added a third.  :class:`ExecutionContext`
stops the kwarg sprawl: every run entry point (``StackRunner.run``,
``Environment.run``, ``CooperativeExecutor.run_split`` /
``run_full_ndp``, ``run_all_splits``, the chaos and bench harnesses)
accepts a single ``ctx=`` carrying all of them.  The old keywords keep
working through :meth:`ExecutionContext.coerce`, the one compatibility
shim — internal code only ever passes contexts.

The context is frozen: it describes *how* to run, never accumulates
per-run state.  Mutable per-run collaborators (an active
:class:`~repro.faults.FaultInjector`) are derived from it per execution
via :meth:`injector`.
"""

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.faults import FaultPlan, as_injector
from repro.sim.trace import as_tracer


@dataclass(frozen=True)
class ExecutionContext:
    """Immutable bundle of the cross-cutting run collaborators.

    ``tracer``
        A :class:`repro.sim.Tracer` recording the run as structured
        spans, or ``None`` for zero-cost no-op tracing.
    ``faults``
        A :class:`repro.faults.FaultPlan` (a fresh injector is created
        per execution) or an already-active injector, or ``None``.
    ``retry_policy``
        A :class:`repro.faults.RetryPolicy` overriding the fault plan's
        policy, or ``None`` to use the plan's own.
    ``scheduler``
        The :class:`repro.sched.WorkloadScheduler` a run belongs to when
        it executes as part of a concurrent workload, or ``None`` for
        standalone runs.  Scheduler-driven executions share the
        scheduler's simulated kernel instead of building private
        resources.
    """

    tracer: object = None
    faults: object = None
    retry_policy: object = None
    scheduler: object = None

    @classmethod
    def coerce(cls, ctx=None, tracer=None, faults=None):
        """Normalise ``(ctx, legacy kwargs)`` to one context.

        This is the compatibility shim for the pre-context ``tracer=`` /
        ``faults=`` keywords: passing them *alongside* an explicit
        context is ambiguous and raises.
        """
        if ctx is None:
            if tracer is None and faults is None:
                return NULL_CONTEXT
            return cls(tracer=tracer, faults=faults)
        if not isinstance(ctx, ExecutionContext):
            raise ReproError(
                f"ctx must be an ExecutionContext, got {type(ctx).__name__}")
        if tracer is not None or faults is not None:
            raise ReproError(
                "pass tracer/faults inside the ExecutionContext, "
                "not alongside it")
        return ctx

    def sim_tracer(self):
        """The context's tracer as a usable (possibly null) tracer."""
        return as_tracer(self.tracer)

    def injector(self):
        """A per-execution fault injector honouring ``retry_policy``.

        A :class:`~repro.faults.FaultPlan` yields a *fresh* injector per
        call (each execution draws its own RNG stream); an active
        injector passes through so one injector's counts can span a
        retry plus its fallback.
        """
        faults = self.faults
        if self.retry_policy is not None and isinstance(faults, FaultPlan):
            faults = replace(faults, retry=self.retry_policy)
        return as_injector(faults)

    def with_scheduler(self, scheduler):
        """A copy of this context bound to ``scheduler``."""
        return replace(self, scheduler=scheduler)


#: The do-nothing context: no tracing, no faults, no scheduler.
NULL_CONTEXT = ExecutionContext()
