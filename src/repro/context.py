"""The execution context: one handle for every cross-cutting collaborator.

Tracing (PR 2) and fault injection (PR 3) were threaded through the
engine as separate ``tracer=`` / ``faults=`` keyword arguments; the
concurrent scheduler would have added a third.  :class:`ExecutionContext`
stops the kwarg sprawl: every run entry point (``StackRunner.run``,
``Environment.run``, ``CooperativeExecutor.run_split`` /
``run_full_ndp``, ``run_all_splits``, the chaos and bench harnesses)
accepts a single ``ctx=`` carrying all of them.  The legacy keywords are
*gone*: passing ``tracer=`` / ``faults=`` (or ``tracer_factory=`` to
``run_all_splits``) raises a :class:`~repro.errors.ReproError` naming
the replacement — see :func:`reject_removed_kwargs`.

The context is frozen: it describes *how* to run, never accumulates
per-run state.  Mutable per-run collaborators (an active
:class:`~repro.faults.FaultInjector`) are derived from it per execution
via :meth:`injector`.
"""

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.faults import FaultPlan, as_injector
from repro.sim.trace import as_tracer


@dataclass(frozen=True)
class ExecutionContext:
    """Immutable bundle of the cross-cutting run collaborators.

    ``tracer``
        A :class:`repro.sim.Tracer` recording the run as structured
        spans, or ``None`` for zero-cost no-op tracing.
    ``faults``
        A :class:`repro.faults.FaultPlan` (a fresh injector is created
        per execution) or an already-active injector, or ``None``.
    ``retry_policy``
        A :class:`repro.faults.RetryPolicy` overriding the fault plan's
        policy, or ``None`` to use the plan's own.
    ``scheduler``
        The :class:`repro.sched.WorkloadScheduler` a run belongs to when
        it executes as part of a concurrent workload, or ``None`` for
        standalone runs.  Scheduler-driven executions share the
        scheduler's simulated kernel instead of building private
        resources.
    ``deadline``
        A per-query *simulated-time* budget in seconds, or ``None`` for
        unbounded runs.  Enforced cooperatively at every layer: a single
        run past its deadline is cancelled (reservations released) and
        raises :class:`~repro.errors.DeadlineExceededError` with a
        partial audit; the workload scheduler sheds queued jobs whose
        deadline already passed and cancels in-flight offloads at the
        deadline (docs/robustness.md, "Stragglers, speculation, and
        deadlines").
    """

    tracer: object = None
    faults: object = None
    retry_policy: object = None
    scheduler: object = None
    deadline: float = None

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError("deadline must be a positive number of "
                             "simulated seconds (or None)")

    @classmethod
    def coerce(cls, ctx=None):
        """Normalise an optional ``ctx`` argument to a usable context."""
        if ctx is None:
            return NULL_CONTEXT
        if not isinstance(ctx, ExecutionContext):
            raise ReproError(
                f"ctx must be an ExecutionContext, got {type(ctx).__name__}")
        return ctx

    def sim_tracer(self):
        """The context's tracer as a usable (possibly null) tracer."""
        return as_tracer(self.tracer)

    def injector(self):
        """A per-execution fault injector honouring ``retry_policy``.

        A :class:`~repro.faults.FaultPlan` yields a *fresh* injector per
        call (each execution draws its own RNG stream); an active
        injector passes through so one injector's counts can span a
        retry plus its fallback.
        """
        faults = self.faults
        if self.retry_policy is not None and isinstance(faults, FaultPlan):
            faults = replace(faults, retry=self.retry_policy)
        return as_injector(faults)

    def with_scheduler(self, scheduler):
        """A copy of this context bound to ``scheduler``."""
        return replace(self, scheduler=scheduler)


#: The do-nothing context: no tracing, no faults, no scheduler.
NULL_CONTEXT = ExecutionContext()


#: Keywords deleted by a context migration, with their replacement
#: spelling and the migration that removed them (for the error message).
_REMOVED_KWARGS = {
    "tracer": ("ctx=ExecutionContext(tracer=...)",
               "ExecutionContext"),
    "faults": ("ctx=ExecutionContext(faults=...)",
               "ExecutionContext"),
    "tracer_factory": ("ctx_factory=lambda name: "
                       "ExecutionContext(tracer=...)",
                       "ExecutionContext"),
    "device_load": ("context=PlanningContext(device_load=...)",
                    "PlanningContext"),
}


def reject_removed_kwargs(where, kwargs):
    """Fail loudly on keywords a context migration removed.

    Entry points that used to take ``tracer=`` / ``faults=`` (or
    ``tracer_factory=``, or the planner's ``device_load=``) collect
    stray keywords into ``**kwargs`` and route them here: a removed
    keyword raises a :class:`~repro.errors.ReproError` naming its
    replacement, anything else raises ``TypeError`` like a normal
    unexpected keyword.
    """
    for name in kwargs:
        replacement = _REMOVED_KWARGS.get(name)
        if replacement is not None:
            replacement, migration = replacement
            raise ReproError(
                f"{where}() no longer accepts {name}=; pass {replacement} "
                f"instead (the legacy keywords were removed with the "
                f"{migration} migration)")
    if kwargs:
        unexpected = sorted(kwargs)[0]
        raise TypeError(
            f"{where}() got an unexpected keyword argument {unexpected!r}")
