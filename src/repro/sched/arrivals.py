"""Seeded, deterministic arrival processes for workload scheduling.

Two standard shapes from queueing-theory benchmarks:

* **Open loop** — queries arrive on a Poisson process at a fixed offered
  rate, independent of completions (models "heavy traffic from millions
  of users": load does not back off when the system is slow).
* **Closed loop** — a fixed population of clients each submits its next
  query only after the previous one completed, plus think time (models a
  bounded set of sessions; throughput self-regulates).

Both are pure functions of their seed: the same spec always yields the
same arrival times, which the scheduler's deterministic event loop turns
into a byte-for-byte reproducible workload timeline.
"""

import random
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class OpenLoopArrivals:
    """Poisson arrivals at ``rate_qps`` offered queries per second."""

    rate_qps: float
    seed: int = 0

    def schedule(self, names):
        """``[(arrival_time, name), ...]`` for ``names`` in order."""
        if self.rate_qps <= 0:
            raise ReproError(f"open-loop rate must be positive, "
                             f"got {self.rate_qps}")
        rng = random.Random(self.seed)
        at = 0.0
        arrivals = []
        for name in names:
            at += rng.expovariate(self.rate_qps)
            arrivals.append((at, name))
        return arrivals


@dataclass(frozen=True)
class ClosedLoopArrivals:
    """A fixed client population; each client runs its queries serially.

    ``think_time`` is the pause between one query's completion and the
    client's next submission; ``stagger`` spreads the clients' first
    submissions over a short window so they don't all hit the scheduler
    at the same instant (drawn from the seeded RNG, hence still
    deterministic).
    """

    clients: int = 4
    think_time: float = 0.0
    stagger: float = 0.0
    seed: int = 0

    def start_times(self):
        """Deterministic first-submission time per client."""
        if self.clients <= 0:
            raise ReproError(f"need at least one client, got {self.clients}")
        rng = random.Random(self.seed)
        if self.stagger <= 0:
            return [0.0] * self.clients
        return sorted(rng.uniform(0.0, self.stagger)
                      for _ in range(self.clients))


def assign_clients(names, clients):
    """Round-robin partition of ``names`` over ``clients`` queues.

    Returns a list of per-client lists.  Deterministic and
    order-preserving within each client.
    """
    if clients <= 0:
        raise ReproError(f"need at least one client, got {clients}")
    queues = [[] for _ in range(clients)]
    for index, name in enumerate(names):
        queues[index % clients].append(name)
    return queues
