"""Concurrent multi-query workload scheduling on the sim kernel.

Single-query execution (PR 1-3) answers "how fast is query Q on
strategy S?".  The paper's device-side resource reservations (17 MB per
selection, 7 MB per join out of ~400 MB usable DRAM) only *bind* when
multiple queries compete for the device — this package adds that
dimension: a :class:`WorkloadScheduler` admits many JOB queries onto one
shared simulated device + host, with admission control over the DRAM
budget and load-aware placement through the cost model's
:class:`~repro.core.cost_model.DeviceLoad` hook.

Everything stays deterministic: arrivals are seeded processes
(:mod:`repro.sched.arrivals`), the shared
:class:`~repro.sim.SimContext`'s event loop breaks timestamp ties by
insertion order, and a fixed seed reproduces the whole workload timeline
byte for byte.
"""

from repro.sched.arrivals import (ClosedLoopArrivals, OpenLoopArrivals,
                                  assign_clients)
from repro.sched.scheduler import QueryJob, WorkloadResult, WorkloadScheduler

__all__ = ["WorkloadScheduler", "WorkloadResult", "QueryJob",
           "OpenLoopArrivals", "ClosedLoopArrivals", "assign_clients"]
