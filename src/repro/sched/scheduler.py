"""The concurrent workload scheduler.

One :class:`WorkloadScheduler` owns a shared
:class:`~repro.sim.SimContext` — one clock, one event loop, one PCIe
link, one NDP core, one host CPU — and admits many queries onto it.
Each admitted offload runs as an interleaved
:class:`~repro.engine.cooperative._SplitSimulation` on the shared
resources, so queries contend for link bandwidth, device compute, host
CPU *and* the device's token-tracked DRAM budget, exactly the regime the
paper's per-operator buffer reservations (17 MB per selection, 7 MB per
join) were designed for.

Admission control and placement per arriving query:

1. **Load-aware placement** — re-run the hybrid planner with the
   kernel's current utilization folded into the cost model
   (:class:`~repro.core.cost_model.DeviceLoad`): a hot device inflates
   device-side costs, pushing marginal queries back to the host.
2. **DRAM admission** — stage the chosen split with
   :meth:`~repro.engine.cooperative.CooperativeExecutor.prepare_split`,
   which reserves the pipeline's buffers.  If the reservation does not
   fit the remaining budget the query waits in a FIFO queue until a
   completion frees buffers (head-of-line blocking keeps admission
   fair and deterministic); a query that would not fit even an *idle*
   device runs on the host instead.
3. **Host placement** — host-only queries execute eagerly (same rows as
   serial execution by construction) and their service time serializes
   on the shared host CPU resource.

Determinism: arrivals are seeded, the event loop breaks timestamp ties
by insertion order, per-query fault injectors draw from their own seeded
RNG streams, and host work is priced by the same counters as serial
runs — the same seed reproduces the whole workload timeline byte for
byte.
"""

from dataclasses import dataclass, field

from repro.context import ExecutionContext
from repro.core import (CardinalityFeedback, DeviceLoad, ExecutionStrategy,
                        PlanningContext)
from repro.engine.stacks import Stack
from repro.errors import (AdmissionTimeoutError, DeviceOverloadError,
                          ReproError)
from repro.sched.arrivals import ClosedLoopArrivals, assign_clients
from repro.sim import ClusterSimContext, SimContext
from repro.workloads.job_queries import query as job_query

#: Trace track for scheduler decisions (admissions, queueing, placement).
SCHED_TRACK = "sched"


@dataclass
class QueryJob:
    """One query's life cycle inside a workload."""

    seq: int                    # submission order, unique per workload
    name: str                   # JOB query name, e.g. "8c"
    sql: str
    arrival: float              # simulated submission time
    client: int = None          # closed-loop client id, None for open loop
    deadline: float = None      # simulated-time budget after arrival
    plan: object = None
    decision: object = None     # HybridDecision under load, if planned
    placement: str = None       # "host-only" | "Hk" | "host-fallback"
                                # | "deadline-shed"
    admitted_at: float = None   # when execution actually started
    completed_at: float = None
    shed_at: float = None       # when the deadline shed/cancelled it
    report: object = None       # ExecutionReport once finished
    error: str = None           # abandon reason, if any

    @property
    def latency(self):
        """Submission-to-completion latency (includes queueing)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    @property
    def queue_wait(self):
        """Time between submission and admission."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.arrival

    @property
    def label(self):
        """Unique display label, e.g. ``8c#3``."""
        return f"{self.name}#{self.seq}"

    @property
    def deadline_at(self):
        """Absolute simulated time the deadline expires, or None."""
        if self.deadline is None:
            return None
        return self.arrival + self.deadline

    def to_dict(self, include_report=False):
        out = {
            "seq": self.seq,
            "name": self.name,
            "client": self.client,
            "arrival": self.arrival,
            "admitted_at": self.admitted_at,
            "completed_at": self.completed_at,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "placement": self.placement,
            "deadline": self.deadline,
            "shed_at": self.shed_at,
            "rows": (len(self.report.result.rows)
                     if self.report is not None and self.report.result
                     else None),
            "error": self.error,
        }
        if include_report and self.report is not None:
            out["report"] = self.report.to_dict(include_timeline=True)
        return out


@dataclass
class WorkloadResult:
    """The outcome of one scheduled workload."""

    jobs: list
    makespan: float
    resource_stats: dict
    device_budget_bytes: int
    peak_reserved_bytes: int
    seed: int = None
    extras: dict = field(default_factory=dict)

    def completed(self):
        """Jobs that finished (everything not shed by a deadline)."""
        return [job for job in self.jobs if job.completed_at is not None]

    def shed(self):
        """Jobs a deadline shed from the queue or cancelled in flight."""
        return [job for job in self.jobs if job.shed_at is not None]

    def latencies(self):
        """Per-job latencies in completion order."""
        return [job.latency for job in self.completed()]

    def queries_per_second(self):
        """Completed queries over the workload makespan."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completed()) / self.makespan

    def placements(self):
        """``{placement: count}`` over all jobs."""
        counts = {}
        for job in self.jobs:
            counts[job.placement] = counts.get(job.placement, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self, include_reports=False):
        """JSON-ready summary; stable key order for determinism checks."""
        return {
            "schema_version": 3,
            "seed": self.seed,
            "makespan": self.makespan,
            "queries": len(self.jobs),
            "queries_per_second": self.queries_per_second(),
            "placements": self.placements(),
            "shed_jobs": len(self.shed()),
            "device_budget_bytes": self.device_budget_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "resource_stats": self.resource_stats,
            "jobs": [job.to_dict(include_report=include_reports)
                     for job in self.jobs],
            **self.extras,
        }


class WorkloadScheduler:
    """Admits queries onto one shared simulated device + host.

    With ``cluster`` (a :class:`repro.cluster.DeviceCluster`) the
    scheduler runs the same admission policy over ``n`` devices on one
    :class:`~repro.sim.ClusterSimContext`: each admitted offload is
    placed *whole* on the least-loaded device (earliest free NDP core,
    then fewest reserved bytes) — correct for any device because the
    cluster's storage is mirrored — and per-device DRAM budgets are
    arbitrated independently.  Scatter-gather execution of a *single*
    query across devices lives in
    :class:`repro.cluster.ScatterGatherExecutor` instead.
    """

    def __init__(self, env, ctx=None, max_inflight=None, cluster=None,
                 queries=None, correction=None, replan=None):
        self.env = env
        self.runner = env.runner
        self.planner = env.planner
        self.cluster = cluster
        #: Shared :class:`~repro.core.planning.CostCorrection` EWMA store
        #: feeding every admission decision (None = plan from raw
        #: statistics — byte-identical to pre-adaptive behaviour).
        self.correction = correction
        #: :class:`~repro.core.planning.ReplanPolicy` enabling mid-query
        #: re-planning at pipeline breakers (None = no breaker hook).
        self.replan = replan
        #: Optional ``{name: sql}`` mapping consulted before the JOB
        #: catalog, so generated workloads (:mod:`repro.workloads.sqlgen`)
        #: schedule exactly like named JOB queries.
        self.queries = dict(queries) if queries else {}
        base = ExecutionContext.coerce(ctx)
        #: The context scheduler-driven executions run under.
        self.ctx = base.with_scheduler(self)
        self.tracer = self.ctx.sim_tracer()
        if cluster is not None:
            self.devices = list(cluster.devices)
            self.device = self.devices[0]
            self.kernel = ClusterSimContext.fresh(cluster.n_devices,
                                                  tracer=self.ctx.tracer)
            self._device_inflight_by = [0] * cluster.n_devices
        else:
            self.devices = [env.device]
            self.device = env.device
            self.kernel = SimContext.fresh(tracer=self.ctx.tracer)
            self._device_inflight_by = [0]
        self.max_inflight = max_inflight   # None = DRAM budget only
        self.jobs = []
        self._queue = []           # FIFO of jobs awaiting admission
        self._inflight = 0         # queries currently executing
        self._device_inflight = 0  # of which hold device reservations
        self._peak_reserved = 0
        self._client_queues = {}   # client id -> remaining query names
        self._client_think = 0.0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _sql_for(self, name):
        """Resolve a query name: the ``queries`` mapping wins, then the
        JOB catalog."""
        if name in self.queries:
            return self.queries[name]
        return job_query(name)

    def submit(self, name, at=0.0, client=None, deadline=None):
        """Submit query ``name`` (JOB or ``queries=``-registered) at
        simulated time ``at``.

        ``deadline`` is the job's simulated-time budget after arrival
        (defaulting to the scheduler context's ``deadline``): a job
        still queued when it expires is *shed* (placement
        ``"deadline-shed"``, no report), an in-flight offload is
        cooperatively cancelled with its reservation released.  Host
        executions already booked on the CPU run to completion —
        cancellation is cooperative, never preemptive.
        """
        if deadline is None:
            deadline = self.ctx.deadline
        job = QueryJob(seq=len(self.jobs), name=name, sql=self._sql_for(name),
                       arrival=at, client=client, deadline=deadline)
        # Adaptive bookkeeping (same private-attribute convention as
        # ``job._prepared``): replan count, cancelled-attempt time and
        # the audit trail of breaker decisions.
        job._replans = 0
        job._adapt_wasted = 0.0
        job._adapt_events = []
        self.jobs.append(job)
        self.kernel.loop.schedule_at(at, lambda: self._arrive(job),
                                     label=f"arrive {job.label}")
        if deadline is not None:
            self.kernel.loop.schedule_at(
                job.deadline_at, lambda: self._deadline_check(job),
                label=f"deadline {job.label}")
        return job

    def submit_open_loop(self, names, arrivals):
        """Submit ``names`` on an :class:`OpenLoopArrivals` process."""
        for at, name in arrivals.schedule(names):
            self.submit(name, at=at)

    def submit_closed_loop(self, names, arrivals=None):
        """Run ``names`` as a closed-loop client population.

        ``arrivals`` is a :class:`ClosedLoopArrivals` spec (defaults to
        4 clients, no think time).  Queries are partitioned round-robin;
        each client submits its next query when the previous one
        completes plus think time.
        """
        arrivals = arrivals or ClosedLoopArrivals()
        queues = assign_clients(names, arrivals.clients)
        starts = arrivals.start_times()
        self._client_think = arrivals.think_time
        for client, (start, queue) in enumerate(zip(starts, queues)):
            if not queue:
                continue
            self._client_queues[client] = list(queue[1:])
            self.submit(queue[0], at=start, client=client)

    # ------------------------------------------------------------------
    # Run to completion
    # ------------------------------------------------------------------
    def run(self, max_events=5_000_000):
        """Drain the workload; returns a :class:`WorkloadResult`."""
        self.kernel.loop.run(max_events=max_events)
        unfinished = [job.label for job in self.jobs
                      if job.completed_at is None and job.shed_at is None]
        if unfinished or self._queue:
            raise ReproError(
                f"workload drained with unfinished queries: {unfinished}")
        makespan = self.kernel.horizon
        extras = {"plan_cache": self.runner.plan_cache_stats()}
        if self.replan is not None or self.correction is not None:
            extras["adaptivity"] = {
                "replans": sum(job._replans for job in self.jobs),
                "wasted_time": sum(job._adapt_wasted for job in self.jobs),
                "correction": (self.correction.snapshot()
                               if self.correction is not None else {}),
                "observations": (self.correction.observations
                                 if self.correction is not None else 0),
            }
        if self.cluster is not None:
            extras["cluster"] = {
                "n_devices": self.cluster.n_devices,
                "partitioner": self.cluster.partitioner.describe(),
            }
        return WorkloadResult(
            jobs=self.jobs,
            makespan=makespan,
            resource_stats=self.kernel.resource_stats(makespan),
            device_budget_bytes=sum(device.buffer_budget
                                    for device in self.devices),
            peak_reserved_bytes=self._peak_reserved,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # Load measurement
    # ------------------------------------------------------------------
    def _device_resources(self, index):
        """``(link, core)`` busy resources of device ``index``."""
        if self.cluster is None:
            return self.kernel.link, self.kernel.core
        return self.kernel.links[index], self.kernel.cores[index]

    def current_load(self, device_index=0):
        """One device's pressure snapshot fed to load-aware planning.

        Utilization is busy time over the horizon each resource is
        booked until — counting work already committed to the future,
        which is what the *next* query will actually contend with.
        """
        def _utilization(resource):
            horizon = max(self.kernel.now, resource.free_at)
            if horizon <= 0:
                return 0.0
            return min(1.0, resource.busy_time / horizon)

        link, core = self._device_resources(device_index)
        device = self.devices[device_index]
        return DeviceLoad(
            core_utilization=_utilization(core),
            link_utilization=_utilization(link),
            reserved_fraction=(device.reserved_bytes
                               / max(1, device.buffer_budget)),
            inflight=self._device_inflight_by[device_index],
        )

    def _least_loaded_device(self):
        """The device the next offload should land on.

        Earliest-free NDP core first (work committed to the future is
        what the query will wait behind), fewest reserved DRAM bytes
        second, lowest index last — a deterministic total order.
        """
        def _key(index):
            _link, core = self._device_resources(index)
            return (core.free_at, self.devices[index].reserved_bytes,
                    index)

        return min(range(len(self.devices)), key=_key)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _arrive(self, job):
        job.plan = self.runner.plan(job.sql)
        self._queue.append(job)
        if self.tracer.enabled:
            self.tracer.instant(SCHED_TRACK, f"arrive {job.label}",
                                self.kernel.now,
                                args={"query": job.name, "seq": job.seq,
                                      "queued": len(self._queue)})
        self._drain()

    def _drain(self):
        """Admit queued queries in FIFO order until one cannot start.

        The head of the queue blocks admission (no overtaking): this
        keeps admission order — and therefore the whole timeline — a
        deterministic function of arrival order, at some utilization
        cost versus backfilling.
        """
        while self._queue:
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                return
            job = self._queue[0]
            if not self._try_start(job):
                return
            self._queue.pop(0)

    def _try_start(self, job):
        """Plan and start ``job`` now; False if it must keep waiting."""
        now = self.kernel.now
        target = self._least_loaded_device()
        load = self.current_load(target)
        job.decision = self.planner.decide(
            job.plan,
            context=PlanningContext(device_load=load,
                                    correction=self.correction,
                                    key=job.sql, replan=self.replan))
        if (job.decision.strategy is ExecutionStrategy.HOST_ONLY
                or job.decision.split_index is None):
            self._start_host(job)
            return True
        # FULL_NDP maps to the H(n-1) split: the whole join pipeline
        # runs on-device and only the epilogue (aggregation/sort) runs
        # host-side, which keeps result rows identical to serial
        # execution on one shared code path.
        split_index = job.decision.split_index
        if self.cluster is None:
            cooperative = self.runner.cooperative
            kernel = self.kernel
        else:
            cooperative = self.cluster.executors[target]
            kernel = self.kernel.view(target)
        try:
            prepared = cooperative.prepare_split(
                job.plan, split_index, self.ctx, kernel=kernel,
                trace_label=job.label)
        except AdmissionTimeoutError as error:
            # Admission gave up: the DRAM pressure window outlasts the
            # retry policy's admission timeout, so waiting for a
            # completion cannot help.  Degrade to the host and attribute
            # the fallback to the query and device in the resilience
            # block (error.query / error.device name them too).
            job.error = str(error)
            where = (f"admission-timeout@d{target}"
                     if self.cluster is not None else "admission-timeout")
            self._start_host(job, fallback_from=where,
                             faults_injected={"dram_admission_timeout": 1})
            return True
        except DeviceOverloadError:
            if self._device_inflight > 0:
                # Buffers are held by running queries; a completion
                # will re-drain the queue.
                return False
            # Would not fit even an idle device: run on the host.
            self._start_host(job)
            return True
        job.placement = (f"H{split_index}" if self.cluster is None
                         else f"H{split_index}@d{target}")
        job.admitted_at = now
        job._prepared = prepared
        job._target = target
        self._inflight += 1
        self._device_inflight += 1
        self._device_inflight_by[target] += 1
        reserved = sum(device.reserved_bytes for device in self.devices)
        self._peak_reserved = max(self._peak_reserved, reserved)
        if self.tracer.enabled:
            self.tracer.instant(
                SCHED_TRACK, f"admit {job.label}", now,
                args={"placement": job.placement,
                      "reserved_bytes": reserved,
                      "core_utilization": round(load.core_utilization, 4)})
        self._launch(job, prepared, target, now)
        return True

    def _launch(self, job, prepared, target, now):
        """Start a prepared offload, wiring completion and adaptivity."""
        if self.replan is not None:
            prepared.sim.breaker_hook = (
                lambda sim, i, job=job, prepared=prepared, target=target:
                    self._breaker_check(job, prepared, target, sim, i))
        prepared.start(
            now,
            on_complete=lambda sim, job=job, prepared=prepared:
                self._offload_done(job, prepared, target),
            on_abandon=lambda sim, error, job=job, prepared=prepared:
                self._offload_abandoned(job, prepared, error, target))

    # ------------------------------------------------------------------
    # Mid-query re-planning
    # ------------------------------------------------------------------
    def _breaker_check(self, job, prepared, target, sim, i):
        """Pipeline-breaker feedback: second-guess the in-flight plan.

        Called by the split simulation each time a device batch lands
        host-side.  Extrapolates the intermediate-result cardinality
        from the batches observed so far (exact once the device fragment
        finished — it executes eagerly and announces the batch count
        with the first push), compares it against the estimate baked
        into the admission decision, and — past the policy threshold or
        on device saturation — asks the decision to revise itself.  A
        revision that changes the placement cooperatively cancels the
        offload (reason ``"replan"``) and either sheds the query to the
        host or restarts it at the revised split point on the same
        device; the cancelled attempt's elapsed time is accounted as
        ``wasted_time`` on the job's adaptivity audit.
        """
        policy = self.replan
        if policy is None or job._replans >= policy.max_replans:
            return
        batches_seen = i + 1
        if batches_seen < policy.min_batches:
            return
        decision = job.decision
        estimate = decision.estimate_for()
        if estimate.intermediate_rows is None:
            return
        now = sim.clock.now
        observed_so_far = sum(len(batch)
                              for batch in sim.batches[:batches_seen])
        observed_total = int(round(observed_so_far * sim.n_batches
                                   / batches_seen))
        load = self.current_load(target)
        saturated = load.core_utilization >= policy.saturation_shed
        feedback = CardinalityFeedback(
            observed_rows=observed_total,
            estimated_rows=estimate.intermediate_rows,
            batches_observed=batches_seen,
            batches_total=sim.n_batches,
            raw_rows=estimate.raw_rows,
            at=now,
            device_saturated=saturated)
        if feedback.error < policy.error_threshold and not saturated:
            return
        revised = decision.revise(feedback)
        event = {
            "at": now,
            "batches_observed": batches_seen,
            "batches_total": sim.n_batches,
            "observed_rows": observed_total,
            "estimated_rows": estimate.intermediate_rows,
            "error": round(feedback.error, 6),
            "device_saturated": saturated,
            "from": decision.strategy_name,
            "to": revised.strategy_name,
        }
        if revised.strategy_name == decision.strategy_name:
            # Re-pricing with the observed cardinality still prefers the
            # running plan: record the audit, keep going.
            event["action"] = "kept"
            job._adapt_events.append(event)
            job._replans += 1
            return
        if not prepared.cancel(now, reason="replan"):
            return               # completed at this very timestamp
        job._replans += 1
        wasted = max(0.0, now - job.admitted_at)
        job._adapt_wasted += wasted
        job._prepared = None
        self._device_inflight -= 1
        self._device_inflight_by[target] -= 1
        self._inflight -= 1      # _start_host / restart re-increments
        old_placement = job.placement
        if self.tracer.enabled:
            self.tracer.instant(
                SCHED_TRACK, f"replan {job.label}", now,
                args={"from": decision.strategy_name,
                      "to": revised.strategy_name,
                      "error": round(feedback.error, 4),
                      "saturated": saturated})
        if (revised.strategy is ExecutionStrategy.HOST_ONLY
                or revised.split_index is None):
            event["action"] = "shed-to-host"
            job._adapt_events.append(event)
            job.decision = revised
            self._start_host(job, fallback_from=f"replan:{old_placement}",
                             wasted_time=wasted)
            self._drain()
            return
        # Shift the split point: restart on the same device at the
        # revised k.  If the new reservation no longer fits (other
        # queries grabbed the freed buffers is impossible mid-event,
        # but a *larger* split may simply not fit), shed to the host.
        split_index = revised.split_index
        if self.cluster is None:
            cooperative = self.runner.cooperative
            kernel = self.kernel
        else:
            cooperative = self.cluster.executors[target]
            kernel = self.kernel.view(target)
        try:
            restarted = cooperative.prepare_split(
                job.plan, split_index, self.ctx, kernel=kernel,
                trace_label=job.label)
        except (AdmissionTimeoutError, DeviceOverloadError) as error:
            event["action"] = "shed-to-host"
            event["restart_failed"] = type(error).__name__
            job._adapt_events.append(event)
            job.decision = revised
            self._start_host(job, fallback_from=f"replan:{old_placement}",
                             wasted_time=wasted)
            self._drain()
            return
        event["action"] = "shift-split"
        job._adapt_events.append(event)
        job.decision = revised
        job.placement = (f"H{split_index}" if self.cluster is None
                         else f"H{split_index}@d{target}")
        job._prepared = restarted
        job._target = target
        self._inflight += 1
        self._device_inflight += 1
        self._device_inflight_by[target] += 1
        reserved = sum(device.reserved_bytes for device in self.devices)
        self._peak_reserved = max(self._peak_reserved, reserved)
        self._launch(job, restarted, target, now)
        self._drain()

    # ------------------------------------------------------------------
    # Host-side execution
    # ------------------------------------------------------------------
    def _start_host(self, job, fallback_from=None, wasted_time=0.0,
                    retries=0, faults_injected=None):
        """Run ``job`` host-only; service time serializes on the CPU.

        The rows come from an eager native-path run (identical to serial
        execution); the shared host CPU resource then prices when that
        service time actually fits between the other queries' host work.
        """
        now = self.kernel.now
        report = self.runner.run(job.plan, Stack.NATIVE)
        service = report.total_time
        begin, end = self.kernel.cpu.acquire(
            now, service, label=f"host-only {job.label}")
        job.placement = "host-fallback" if fallback_from else "host-only"
        job.admitted_at = begin
        job.report = report
        self._inflight += 1
        if fallback_from is not None:
            report.fallback_from = fallback_from
            report.retries = retries
            report.faults_injected = dict(faults_injected or {})
            report.wasted_device_time = wasted_time
        if self.tracer.enabled:
            self.tracer.span(
                f"exec/{job.label}", job.placement, begin, end,
                category="execution",
                args={"query": job.name, "service_time": service,
                      "strategy": report.strategy})
        self.kernel.loop.schedule_at(
            end, lambda: self._host_done(job, end),
            label=f"complete {job.label}")

    def _host_done(self, job, end):
        job.report.total_time = end - job.arrival
        self._finish(job, end)

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def _offload_done(self, job, prepared, device_index=0):
        now = self.kernel.now
        job.report = prepared.finish(total_time=now - job.arrival)
        job._prepared = None
        self._device_inflight -= 1
        self._device_inflight_by[device_index] -= 1
        if self.correction is not None and job.decision is not None:
            # Fold the observed intermediate-result cardinality into the
            # EWMA against the *uncorrected* estimate, so the factor
            # converges to the true statistics error.
            estimate = job.decision.estimate_for()
            if estimate.raw_rows is not None:
                self.correction.observe(job.sql, estimate.raw_rows,
                                        prepared.intermediate_rows)
        self._finish(job, now)

    def _offload_abandoned(self, job, prepared, error, device_index=0):
        """Mid-workload graceful degradation: re-run on the host.

        Mirrors :meth:`StackRunner._host_fallback` — the wasted device
        attempt is accounted on the degraded report — but the fallback
        executes on the *shared* host CPU at the simulated time the
        offload gave up, so the rest of the workload feels it.
        """
        now = self.kernel.now
        prepared.release()
        job._prepared = None
        self._device_inflight -= 1
        self._device_inflight_by[device_index] -= 1
        self._inflight -= 1      # _start_host re-increments
        job.error = str(error)
        # The attempt's own elapsed cost, not now - arrival: queue wait
        # is not wasted device time, and successive fallbacks must each
        # account only their own attempt.
        wasted = max(0.0, now - (job.admitted_at
                                 if job.admitted_at is not None
                                 else job.arrival))
        fallback_from = (error.strategy if self.cluster is None
                         else f"{error.strategy}@d{device_index}")
        self._start_host(job, fallback_from=fallback_from,
                         wasted_time=wasted, retries=error.retries,
                         faults_injected=error.faults_injected)
        self._drain()

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    def _deadline_check(self, job):
        """The job's deadline fired: shed or cancel whatever is left.

        A job still queued is shed outright; an in-flight offload is
        cooperatively cancelled (its DRAM reservation released, its
        booked busy intervals standing as honest wasted cost).  A host
        execution already booked on the CPU runs to completion, and a
        finished job is left alone.
        """
        if job.completed_at is not None or job.shed_at is not None:
            return
        now = self.kernel.now
        if job in self._queue:
            self._queue.remove(job)
            job.shed_at = now
            job.placement = "deadline-shed"
            job.error = (f"{job.label}: deadline {job.deadline}s expired "
                         f"before admission; job shed")
            if self.tracer.enabled:
                self.tracer.instant(
                    SCHED_TRACK, f"shed {job.label}", now,
                    args={"query": job.name, "deadline": job.deadline})
            self._drain()
            return
        prepared = getattr(job, "_prepared", None)
        if prepared is None:
            return               # host execution: runs to completion
        if not prepared.cancel(now, reason="deadline"):
            return               # completed at this very timestamp
        target = job._target
        job._prepared = None
        self._device_inflight -= 1
        self._device_inflight_by[target] -= 1
        self._inflight -= 1
        job.shed_at = now
        job.error = (f"{job.label}: deadline {job.deadline}s expired "
                     f"in flight on device {target}; offload cancelled "
                     f"after {now - job.admitted_at:.6f}s")
        if self.tracer.enabled:
            self.tracer.instant(
                SCHED_TRACK, f"deadline-cancel {job.label}", now,
                args={"query": job.name, "device": target,
                      "placement": job.placement})
        self._drain()

    def _finish(self, job, now):
        job.completed_at = now
        self._inflight -= 1
        if self.replan is not None and job.report is not None:
            job.report.adaptivity = {
                "enabled": True,
                "replans": job._replans,
                "correction_factor": (
                    self.correction.factor(job.sql)
                    if self.correction is not None else 1.0),
                "wasted_time": job._adapt_wasted,
                "events": list(job._adapt_events),
            }
            # total_time is wall clock since arrival, so the cancelled
            # attempt's elapsed time is already inside it — the audit
            # block records it separately, no double charge.
        if self.tracer.enabled:
            self.tracer.instant(SCHED_TRACK, f"finish {job.label}", now,
                                args={"placement": job.placement,
                                      "latency": round(job.latency, 6)})
        # Closed loop: this job's client submits its next query.
        if job.client is not None:
            remaining = self._client_queues.get(job.client)
            if remaining:
                self.submit(remaining.pop(0), at=now + self._client_think,
                            client=job.client)
        self._drain()
