"""repro — a full Python reproduction of hybridNDP (EDBT 2025).

hybridNDP automates operation-offloading decisions for near-data
processing DBMS: it splits a query execution plan into an on-device and a
host partial plan using a cost model over an abstract hardware model, and
executes the two parts cooperatively with overlapping progress.

Quickstart::

    from repro import open_database, Stack

    env = open_database()                   # synthetic JOB, tiny scale
    report = env.runner.run("SELECT ...", Stack.HYBRID, split_index=2)
    print(report.summary())

See README.md, DESIGN.md and EXPERIMENTS.md for the full tour.
"""

from repro.core import (CostModel, ExecutionStrategy, HardwareModel,
                        HybridDecision, HybridPlanner, SplitPlanner)
from repro.engine import (CooperativeExecutor, ExecutionReport, HostEngine,
                          NDPEngine, QueryResult, Stack, StackRunner,
                          TimingModel)
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.lsm import KVDatabase, LSMTree
from repro.relational import Catalog, TableSchema
from repro.storage import (COSMOS_PLUS, HOST_I5, FlashDevice,
                           HardwareProfiler, PCIeLink, SmartStorageDevice)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # core
    "HardwareModel",
    "CostModel",
    "SplitPlanner",
    "HybridPlanner",
    "HybridDecision",
    "ExecutionStrategy",
    # engine
    "Stack",
    "StackRunner",
    "HostEngine",
    "NDPEngine",
    "CooperativeExecutor",
    "TimingModel",
    "ExecutionReport",
    "QueryResult",
    # resilience
    "FaultPlan",
    # substrates
    "KVDatabase",
    "LSMTree",
    "Catalog",
    "TableSchema",
    "FlashDevice",
    "SmartStorageDevice",
    "PCIeLink",
    "HardwareProfiler",
    "COSMOS_PLUS",
    "HOST_I5",
    "open_database",
]


def open_database(scale=0.0005, seed=7, secondary_indexes=True):
    """Create a ready-to-query environment with synthetic JOB data.

    Returns a :class:`repro.workloads.loader.Environment` bundling the
    KV database, catalog, smart-storage device, hybrid planner and a
    :class:`StackRunner`.
    """
    from repro.workloads.loader import build_environment
    return build_environment(scale=scale, seed=seed,
                             secondary_indexes=secondary_indexes)
