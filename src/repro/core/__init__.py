"""hybridNDP core: hardware model, cost model, QEP splitting, planning.

This package implements the paper's primary contribution (§3): an
abstract hardware model filled in by the §3.1 profiler, the cost model of
eqs. (1)-(8), the split-point calculation of eqs. (9)-(12), and the
hybrid planner that decides host-only / full-NDP / Hk for a query.
"""

from repro.core.hardware import HardwareModel
from repro.core.cost_model import CostModel, DeviceLoad, NodeCost, PlanCost
from repro.core.planning import (NULL_PLANNING, CardinalityFeedback,
                                 CostCorrection, CostEstimate,
                                 PlanningContext, ReplanPolicy)
from repro.core.splitter import SplitChoice, SplitPlanner
from repro.core.strategy import ExecutionStrategy, HybridDecision
from repro.core.planner import HybridPlanner

__all__ = [
    "HardwareModel",
    "CostModel",
    "DeviceLoad",
    "NodeCost",
    "PlanCost",
    "SplitPlanner",
    "SplitChoice",
    "ExecutionStrategy",
    "HybridDecision",
    "HybridPlanner",
    "PlanningContext",
    "NULL_PLANNING",
    "CostEstimate",
    "CardinalityFeedback",
    "CostCorrection",
    "ReplanPolicy",
]
