"""Execution strategies and the planner's decision record."""

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError


class ExecutionStrategy(enum.Enum):
    """What the hybrid planner decided to do with a query."""

    HOST_ONLY = "host-only"
    FULL_NDP = "full-ndp"
    HYBRID = "hybrid"


@dataclass
class HybridDecision:
    """The outcome of hybrid planning for one query.

    ``estimates`` carries one typed
    :class:`~repro.core.planning.CostEstimate` per candidate strategy —
    including the predicted intermediate-result cardinality runtime
    feedback is checked against; :attr:`estimated_costs` remains as the
    flat ``{strategy: cost}`` view.  A decision produced by a planner
    can :meth:`revise` itself from a
    :class:`~repro.core.planning.CardinalityFeedback`, re-pricing every
    candidate with the observed cardinality — the entry point of
    mid-query re-planning (docs/adaptivity.md).
    """

    strategy: ExecutionStrategy
    split_index: int = None              # the k of Hk for HYBRID
    c_total_host: float = 0.0
    c_total_device: float = 0.0
    c_target: float = 0.0
    split_cpu: float = 0.0               # eq. (9), percent
    split_mem: float = 0.0               # eq. (11), percent
    cumulative_costs: list = field(default_factory=list)   # Fig-5 curve
    estimates: dict = field(default_factory=dict)  # strategy -> CostEstimate
    preconditions: dict = field(default_factory=dict)
    reason: str = ""
    #: Cardinality correction factor the decision was priced under
    #: (1.0 = raw statistics).
    correction_factor: float = 1.0
    #: The :class:`~repro.core.planning.ReplanPolicy` in force, or None.
    replan: object = None

    def __post_init__(self):
        self._reviser = None

    @property
    def strategy_name(self):
        """'host-only' / 'full-ndp' / 'H<k>'."""
        if self.strategy is ExecutionStrategy.HYBRID:
            return f"H{self.split_index}"
        return self.strategy.value

    @property
    def estimated_costs(self):
        """Flat ``{strategy: cost}`` view of :attr:`estimates`."""
        return {name: estimate.c_total
                for name, estimate in self.estimates.items()}

    def estimate_for(self, name=None):
        """The :class:`CostEstimate` of ``name`` (default: the winner)."""
        name = name or self.strategy_name
        estimate = self.estimates.get(name)
        if estimate is None:
            raise ReproError(
                f"decision has no estimate for {name!r} "
                f"(candidates: {sorted(self.estimates)})")
        return estimate

    def bind_reviser(self, reviser):
        """Attach the planner's revision closure (internal)."""
        self._reviser = reviser
        return self

    def revise(self, feedback):
        """Re-plan from runtime ``feedback``; returns a new decision.

        ``feedback`` is a
        :class:`~repro.core.planning.CardinalityFeedback` observed at a
        pipeline breaker.  The planner that produced this decision
        re-prices every candidate strategy with the observed
        intermediate cardinality pinned (and sheds to host when the
        feedback reports a saturated device); only decisions a planner
        produced can be revised.
        """
        if self._reviser is None:
            raise ReproError(
                "this decision cannot be revised: it was not produced by "
                "HybridPlanner.decide (construct decisions through the "
                "planner to enable mid-query re-planning)")
        return self._reviser(feedback)

    def summary(self):
        """One-line description of the decision."""
        return (f"{self.strategy_name}: c_host={self.c_total_host:.1f} "
                f"c_dev={self.c_total_device:.1f} "
                f"c_target={self.c_target:.1f} ({self.reason})")
