"""Execution strategies and the planner's decision record."""

import enum
from dataclasses import dataclass, field


class ExecutionStrategy(enum.Enum):
    """What the hybrid planner decided to do with a query."""

    HOST_ONLY = "host-only"
    FULL_NDP = "full-ndp"
    HYBRID = "hybrid"


@dataclass
class HybridDecision:
    """The outcome of hybrid planning for one query."""

    strategy: ExecutionStrategy
    split_index: int = None              # the k of Hk for HYBRID
    c_total_host: float = 0.0
    c_total_device: float = 0.0
    c_target: float = 0.0
    split_cpu: float = 0.0               # eq. (9), percent
    split_mem: float = 0.0               # eq. (11), percent
    cumulative_costs: list = field(default_factory=list)   # Fig-5 curve
    estimated_costs: dict = field(default_factory=dict)    # strategy -> cost
    preconditions: dict = field(default_factory=dict)
    reason: str = ""

    @property
    def strategy_name(self):
        """'host-only' / 'full-ndp' / 'H<k>'."""
        if self.strategy is ExecutionStrategy.HYBRID:
            return f"H{self.split_index}"
        return self.strategy.value

    def summary(self):
        """One-line description of the decision."""
        return (f"{self.strategy_name}: c_host={self.c_total_host:.1f} "
                f"c_dev={self.c_total_device:.1f} "
                f"c_target={self.c_target:.1f} ({self.reason})")
