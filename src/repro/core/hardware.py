"""The abstract hardware model (paper Table 2).

Different hardware cannot be compared directly, so hybridNDP abstracts
the smart-storage and host characteristics into a small parameter set:
flash clock frequencies (device-internal vs host path), CPU memcpy
efficiency / clock / core counts, memory sizes (host DRAM, device
selection and join buffers), and the interconnect (PCIe version/lanes).
The parameters are produced by the §3.1 profiler and would live in the
DBMS parameter file.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class HardwareModel:
    """Table 2 parameters (plus the profiler-derived rates they encode)."""

    # FLASH -----------------------------------------------------------
    ndp_hw_fcf: float            # flash clock frequency, device (pages/s)
    host_hw_fcf: float           # flash clock frequency, host path (pages/s)
    hw_fsw: float = 1.0          # flash weighting for hybrid-idx calculation
    # CPU --------------------------------------------------------------
    hw_cme_host: float = 8.0e9   # host memcpy efficiency (bytes/s)
    hw_cme_ndp: float = 0.6e9    # device memcpy efficiency (bytes/s)
    hw_ccf_host: float = 3.4e9   # host CPU clock (Hz)
    hw_ccf_ndp: float = 667e6    # device CPU clock (Hz)
    hw_ccn_host: int = 4         # host cores
    hw_ccn_ndp: int = 1          # device NDP cores
    eval_host: float = 3.9e7     # record-ops/s, host (profiler flops probe)
    eval_ndp: float = 1.2e6      # record-ops/s, device (complex ARM work)
    eval_ndp_streaming: float = 4.0e7   # FPGA scan units (stream probe)
    eval_ndp_index: float = 1.5e7       # DRAM-bound seeks (chase probe)
    # MEMORY -----------------------------------------------------------
    hw_msh: int = 4 * 1024 ** 3  # host memory size (bytes)
    hw_mss: int = 17 * 1024 ** 2  # device selection-buffer size (bytes)
    hw_msj: int = 7 * 1024 ** 2   # device join-buffer size (bytes)
    ndp_hw_msw: float = 1.0      # memory weighting for hybrid-idx
    # INTERCONNECT ------------------------------------------------------
    hw_ipl: int = 8              # PCIe lanes
    hw_ipv: int = 2              # PCIe version
    pcie_bandwidth: float = 3.2e9    # measured bytes/s
    pcie_latency: float = 8e-6       # measured command latency (s)
    flash_page_bytes: int = 16 * 1024
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.ndp_hw_fcf <= 0 or self.host_hw_fcf <= 0:
            raise ReproError("flash clock frequencies must be positive")
        if self.eval_host <= 0 or self.eval_ndp <= 0:
            raise ReproError("evaluation rates must be positive")

    # ------------------------------------------------------------------
    # Derived factors the cost model consumes
    # ------------------------------------------------------------------
    @property
    def compute_gap(self):
        """Host/device record-evaluation throughput ratio (~31x)."""
        return self.eval_host / self.eval_ndp

    def page_cost(self, on_device):
        """Relative cost of reading one flash page at a location.

        Normalised so the host path costs 1.0 per page; the device pays
        less when its internal flash frequency (weighted by hw_FSW) is
        higher — eq. (2)'s ``calc_frt`` hardware factor.
        """
        if on_device:
            return self.host_hw_fcf / (self.ndp_hw_fcf * self.hw_fsw)
        return 1.0

    def compute_factor(self, on_device):
        """``calc_pcf``: CPU cost factor relative to the host (eq. 3)."""
        if on_device:
            return self.compute_gap
        return 1.0

    def streaming_factor(self, on_device):
        """CPU factor for scan/selection work (FPGA streaming units)."""
        if on_device:
            return self.eval_host / self.eval_ndp_streaming
        return 1.0

    def index_factor(self, on_device):
        """CPU factor for seek/join/hash work (DRAM-bound on device)."""
        if on_device:
            return self.eval_host / self.eval_ndp_index
        return 1.0

    def memcpy_factor(self, on_device):
        """Relative memcpy cost (hw_CME), host = 1.0."""
        if on_device:
            return self.hw_cme_host / self.hw_cme_ndp
        return 1.0

    def cf_pcie(self):
        """``cf_pcie(hw_IPV, hw_IPL)``: cost per block moved over PCIe.

        Derived from the physical-layer properties (version -> rate and
        encoding, lane count), normalised so a PCIe 3.0 x16 link costs 1.
        """
        from repro.storage.interconnect import PCIeLink
        return PCIeLink(version=self.hw_ipv, lanes=self.hw_ipl).cost_factor()

    # ------------------------------------------------------------------
    # Construction from a profiler run
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(cls, report, hw_fsw=1.0, ndp_hw_msw=1.0):
        """Build the model from a :class:`ProfileReport` (§3.1 flow)."""
        return cls(
            ndp_hw_fcf=report.device_flash_page_rate,
            host_hw_fcf=report.host_flash_page_rate,
            hw_fsw=hw_fsw,
            hw_cme_host=report.host_memcpy_bandwidth,
            hw_cme_ndp=report.device_memcpy_bandwidth,
            hw_ccf_host=report.host_clock_hz,
            hw_ccf_ndp=report.device_clock_hz,
            hw_ccn_host=report.host_cores,
            hw_ccn_ndp=report.device_cores,
            eval_host=report.host_eval_ops_per_second,
            eval_ndp=report.device_eval_ops_per_second,
            eval_ndp_streaming=(report.device_streaming_ops_per_second
                                or report.device_eval_ops_per_second),
            eval_ndp_index=(report.device_index_ops_per_second
                            or report.device_eval_ops_per_second),
            hw_msh=report.host_memory_bytes,
            hw_mss=report.device_selection_buffer_bytes,
            hw_msj=report.device_join_buffer_bytes,
            ndp_hw_msw=ndp_hw_msw,
            hw_ipl=report.pcie_lanes,
            hw_ipv=report.pcie_version,
            pcie_bandwidth=report.pcie_bandwidth,
            pcie_latency=report.pcie_command_latency,
            flash_page_bytes=report.flash_page_size,
        )

    @classmethod
    def profile(cls, device, host_spec, hw_fsw=1.0, ndp_hw_msw=1.0):
        """Run the profiler against a device + host and build the model."""
        from repro.storage.profiler import HardwareProfiler
        report = HardwareProfiler(device, host_spec).run()
        return cls.from_profile(report, hw_fsw=hw_fsw, ndp_hw_msw=ndp_hw_msw)
