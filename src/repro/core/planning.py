"""Planning inputs and runtime feedback for the hybrid planner.

The planner used to take an ad-hoc ``device_load=`` keyword; everything
the decision depends on besides the query now travels in one frozen
:class:`PlanningContext` — the device pressure snapshot, the EWMA
correction state learned from prior executions, and the mid-query
re-planning thresholds.  Like :class:`~repro.context.ExecutionContext`,
the context describes *how* to plan and never accumulates per-run state;
the one mutable collaborator it points at (:class:`CostCorrection`) is
shared deliberately, so every decision made under the same context
benefits from every observation.

The feedback loop (docs/adaptivity.md):

1. :meth:`HybridPlanner.decide` bakes the predicted intermediate-result
   cardinality of every candidate strategy into typed
   :class:`CostEstimate` entries on the decision.
2. At each pipeline breaker (a device batch landing host-side) the
   executor compares the observed cardinality against that estimate; a
   relative error past :attr:`ReplanPolicy.error_threshold` builds a
   :class:`CardinalityFeedback` and asks the decision to
   :meth:`~repro.core.strategy.HybridDecision.revise` itself.
3. After the run, the observed/estimated ratio feeds the
   :class:`CostCorrection` EWMA keyed by SQL text (the same key the
   ``StackRunner`` plan cache uses), so the *next* decision for the same
   statement prices the intermediate result closer to reality.
"""

from dataclasses import dataclass, replace

from repro.errors import ReproError

#: Correction factors are clamped to this band: a single wild
#: observation (an empty intermediate result against a huge estimate)
#: must not zero out — or explode — every future costing of the key.
MIN_CORRECTION = 1.0 / 1024.0
MAX_CORRECTION = 1024.0


def _clamp_factor(value):
    return max(MIN_CORRECTION, min(MAX_CORRECTION, value))


@dataclass(frozen=True)
class CostEstimate:
    """One strategy's costing, as baked into a :class:`HybridDecision`.

    ``intermediate_rows`` is the predicted cardinality crossing the
    pipeline breaker (the split node's output) — the quantity runtime
    feedback checks the estimate against; ``None`` for host-only
    placement, which has no device→host exchange.  ``raw_rows`` is the
    same prediction *before* the EWMA correction: observations feed the
    :class:`CostCorrection` against it, so the factor converges to the
    true statistics error instead of chasing its own corrections.
    """

    strategy: str                  # 'host-only' | 'full-ndp' | 'H<k>'
    c_total: float
    split_index: int = None
    intermediate_rows: int = None
    raw_rows: int = None


@dataclass(frozen=True)
class ReplanPolicy:
    """When a running query is allowed to second-guess its plan.

    ``error_threshold``
        Relative cardinality error (``max(obs/est, est/obs)``) at a
        pipeline breaker that triggers a revision.  2.0 means "off by
        2x either way".
    ``min_batches``
        Breaker observations required before acting — the first batch
        of a many-batch stream is a noisy sample.
    ``saturation_shed``
        Device core utilization at or above which an in-flight offload
        sheds to the host regardless of cardinality error (scheduler
        runs only; single runs own an idle kernel).
    ``max_replans``
        Revision budget per execution; re-planning has a real cost
        (the cancelled attempt's elapsed time) and must terminate.
    """

    error_threshold: float = 2.0
    min_batches: int = 1
    saturation_shed: float = 0.95
    max_replans: int = 1

    def __post_init__(self):
        if self.error_threshold < 1.0:
            raise ReproError("error_threshold is a ratio >= 1.0")
        if self.max_replans < 0:
            raise ReproError("max_replans must be >= 0")


@dataclass(frozen=True)
class CardinalityFeedback:
    """What a pipeline breaker observed, for ``decision.revise()``.

    ``observed_rows`` extrapolates the intermediate-result cardinality
    from the batches that crossed so far (the NDP device executes its
    fragment eagerly and announces the batch count with the first push,
    so the extrapolation is exact after the device side finished).

    ``estimated_rows`` is the *corrected* prediction the running plan
    was admitted under — :attr:`error` measures how wrong the plan's
    working assumption was.  ``raw_rows`` is the uncorrected statistics
    prediction for the same node: :attr:`ratio` corrects against it, so
    a revision replaces a stale factor instead of compounding it.
    """

    observed_rows: int
    estimated_rows: int
    batches_observed: int
    batches_total: int
    raw_rows: int = None
    at: float = 0.0                 # simulated time of the observation
    device_saturated: bool = False

    @property
    def error(self):
        """Relative misestimation, ``>= 1.0`` (1.0 = spot on)."""
        observed = max(1, self.observed_rows)
        estimated = max(1, self.estimated_rows)
        return max(observed / estimated, estimated / observed)

    @property
    def ratio(self):
        """Observed-over-raw correction ratio (clamped).

        Falls back to ``estimated_rows`` when the raw prediction is
        unknown.
        """
        baseline = (self.raw_rows if self.raw_rows is not None
                    else self.estimated_rows)
        return _clamp_factor(max(1, self.observed_rows)
                             / max(1, baseline))


class CostCorrection:
    """EWMA cardinality-correction store, keyed like the plan cache.

    Maps a key (SQL text) to a multiplicative factor applied to the
    cost model's intermediate-result cardinalities.  Factors start at
    1.0 (trust the statistics) and move toward the observed/estimated
    ratio of each execution with weight ``alpha`` — pure arithmetic on
    observed counters, so identical workloads replay identical factor
    sequences (seed-determinism falls out for free).
    """

    def __init__(self, alpha=0.5):
        if not 0.0 < alpha <= 1.0:
            raise ReproError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._factors = {}
        self.observations = 0

    def factor(self, key):
        """Current correction factor for ``key`` (1.0 when unseen)."""
        return self._factors.get(key, 1.0)

    def prime(self, key, factor):
        """Seed ``key`` with an initial factor (a stale-statistics prior).

        Benches and tests use this to model an environment whose
        statistics start out wrong by a known ratio; subsequent
        :meth:`observe` calls wash the prior out at the EWMA rate.
        """
        self._factors[key] = _clamp_factor(factor)

    def observe(self, key, estimated_rows, observed_rows):
        """Fold one execution's observed cardinality into the EWMA.

        ``estimated_rows`` must be the *uncorrected* estimate (the raw
        statistics prediction), so the factor converges to the true
        statistics error instead of chasing its own corrections.
        Returns the updated factor.
        """
        if key is None:
            return 1.0
        target = _clamp_factor(max(1, observed_rows)
                               / max(1, estimated_rows))
        current = self._factors.get(key, 1.0)
        updated = _clamp_factor(
            (1.0 - self.alpha) * current + self.alpha * target)
        self._factors[key] = updated
        self.observations += 1
        return updated

    def snapshot(self):
        """JSON-ready ``{key: factor}`` view (sorted, deterministic)."""
        return {key: self._factors[key] for key in sorted(self._factors)}

    def __len__(self):
        return len(self._factors)


@dataclass(frozen=True)
class PlanningContext:
    """Immutable bundle of everything a decision depends on but the query.

    ``device_load``
        A :class:`~repro.core.cost_model.DeviceLoad` pressure snapshot,
        or ``None`` for an idle device.
    ``correction``
        A shared :class:`CostCorrection` store, or ``None`` to plan
        from raw statistics.
    ``key``
        The correction key for this query (SQL text, matching the
        ``StackRunner`` plan-cache key); ``None`` disables lookup.
    ``replan``
        A :class:`ReplanPolicy` enabling mid-query re-planning, or
        ``None`` — adaptivity off, byte-identical to builds without the
        feature (the ``NULL_TRACER``/``NULL_INJECTOR`` convention).
    ``factor_override``
        Pins the correction factor regardless of the store; used by
        ``revise()`` to re-price with the just-observed ratio.
    """

    device_load: object = None
    correction: object = None
    key: str = None
    replan: object = None
    factor_override: float = None

    @classmethod
    def coerce(cls, context=None):
        """Normalise an optional ``context`` argument."""
        if context is None:
            return NULL_PLANNING
        if not isinstance(context, PlanningContext):
            raise ReproError(
                f"context must be a PlanningContext, got "
                f"{type(context).__name__}")
        return context

    def correction_factor(self):
        """The cardinality correction this context plans under."""
        if self.factor_override is not None:
            return _clamp_factor(self.factor_override)
        if self.correction is not None and self.key is not None:
            return self.correction.factor(self.key)
        return 1.0

    def with_feedback(self, feedback):
        """A copy pricing with ``feedback``'s observed ratio pinned."""
        return replace(self, factor_override=feedback.ratio)

    def for_key(self, key):
        """A copy bound to correction key ``key``."""
        return replace(self, key=key)

    def with_load(self, device_load):
        """A copy planning under ``device_load``."""
        return replace(self, device_load=device_load)


#: The do-nothing planning context: idle device, raw statistics,
#: adaptivity off.
NULL_PLANNING = PlanningContext()
