"""The hybridNDP cost model (paper §3.2, eqs. 1-8).

Costs are abstract, dimensionless units (like MySQL's).  For every node
of the left-deep plan we compute scan, CPU and transfer costs for HOST
and DEVICE placement using the hardware model, plus the cumulative join
cost of eq. (8); the splitter then works over the cumulative curve.

Variable names follow Table 1: ``tbl_ren`` (matching records),
``tbl_sea`` (storage-engine access cost), ``tbl_pbn``/``tbl_tbn``
(projection/total bytes), ``tbl_nbs`` (block size), ``usr_rec`` (row
evaluation cost), ``calc_sel``, ``calc_frt``, ``calc_pcf``,
``calc_tvb``, ``node_ren``, ``node_brc``, ``node_pbn``, ``cf_pcie``.
"""

from dataclasses import dataclass, field

from repro.errors import PlanError

#: MySQL's classic row evaluation cost.
DEFAULT_USR_REC = 0.1
#: Bytes per record are normalised by this so c_cpu stays commensurable
#: with c_scan; corresponds to pricing CPU work per 64 processed bytes.
_BYTES_NORM = 64.0
#: Utilization above this is priced as if it were this: the M/M/1-style
#: inflation 1/(1-u) diverges at u=1 and the measured utilization of an
#: always-busy resource approaches it, so the cap keeps the inflated
#: costs finite (at most 20x) while still making a saturated device
#: deeply unattractive.
MAX_PRICED_UTILIZATION = 0.95


@dataclass(frozen=True)
class DeviceLoad:
    """A snapshot of device-side pressure, folded into the cost model.

    The concurrent scheduler measures these from its shared sim kernel
    before admitting a query; the planner then prices *device* placement
    as if served by the loaded device, so hot devices push work back to
    the host (load-aware placement).  All fields are dimensionless
    fractions in ``[0, 1]`` except ``inflight``.
    """

    core_utilization: float = 0.0    # NDP core busy fraction so far
    link_utilization: float = 0.0    # PCIe link busy fraction so far
    reserved_fraction: float = 0.0   # device DRAM budget already reserved
    inflight: int = 0                # queries currently using the device

    def compute_scale(self):
        """Inflation for on-device compute terms.

        Queueing-style ``1/(1-u)`` inflation on the core's utilization,
        compounded by DRAM pressure: a device whose pipeline buffers are
        mostly reserved makes every new fragment more expensive (smaller
        working sets, more refills).
        """
        u = min(MAX_PRICED_UTILIZATION, max(0.0, self.core_utilization))
        pressure = 1.0 + max(0.0, min(1.0, self.reserved_fraction))
        return pressure / (1.0 - u)

    def transfer_scale(self):
        """Inflation for PCIe transfer terms under link contention."""
        u = min(MAX_PRICED_UTILIZATION, max(0.0, self.link_utilization))
        return 1.0 / (1.0 - u)


@dataclass
class NodeCost:
    """Costs of one plan node (one table + its join with the prefix)."""

    alias: str
    c_scan: float
    c_cpu: float
    c_trans: float
    node_ren: int            # resulting records of this node (post-join)
    node_brc: float          # buffer-management cost of this node
    c_node: float            # cumulative cost up to and including this node

    @property
    def c_table(self):
        """Total access cost of the table itself (eq. 1 without join)."""
        return self.c_scan + self.c_cpu + self.c_trans


@dataclass
class PlanCost:
    """Cost of a full plan for one placement."""

    location: str            # 'host' | 'device'
    nodes: list = field(default_factory=list)

    @property
    def c_total(self):
        """Total QEP cost (cumulative cost of the last node)."""
        if not self.nodes:
            return 0.0
        return self.nodes[-1].c_node

    def cumulative(self):
        """The Fig-5 curve: cumulative cost at each split point H0..Hn-1."""
        return [node.c_node for node in self.nodes]

    def node(self, alias):
        """Cost record for one alias."""
        for node in self.nodes:
            if node.alias == alias:
                return node
        raise PlanError(f"no cost node for alias {alias!r}")


class CostModel:
    """Computes per-node and cumulative plan costs (eqs. 1-8)."""

    def __init__(self, hardware, usr_rec=DEFAULT_USR_REC,
                 block_bytes=16 * 1024, device_load=None, correction=1.0):
        self.hardware = hardware
        self.usr_rec = usr_rec
        self.block_bytes = block_bytes   # tbl_nbs
        self.device_load = device_load   # None = unloaded device
        #: Multiplicative correction on intermediate-result cardinalities
        #: (``node_ren``), learned from prior executions by the EWMA
        #: layer (:class:`~repro.core.planning.CostCorrection`).  1.0 =
        #: trust the sampled statistics; applied to *both* placements —
        #: a cardinality error is a property of the data, not of where
        #: the join runs.
        self.correction = correction

    def with_load(self, device_load, correction=None):
        """A copy of this model pricing device work under ``device_load``.

        Host-placement costs are unchanged — the load model captures
        *device* contention; host contention shows up in the simulated
        timeline, not the planning estimate.  ``correction`` optionally
        replaces the cardinality-correction factor in the same breath.
        """
        return CostModel(self.hardware, usr_rec=self.usr_rec,
                         block_bytes=self.block_bytes,
                         device_load=device_load,
                         correction=(self.correction if correction is None
                                     else correction))

    def corrected_rows(self, estimated_output_rows):
        """``node_ren`` after the EWMA cardinality correction.

        With the neutral factor this is exactly the historical
        ``max(1, estimated_output_rows)`` — corrected and uncorrected
        models price identically, so adaptivity off stays byte-identical.
        """
        node_ren = max(1, estimated_output_rows)
        if self.correction != 1.0:
            node_ren = max(1, int(round(node_ren * self.correction)))
        return node_ren

    # ------------------------------------------------------------------
    # Per-table components
    # ------------------------------------------------------------------
    def scan_cost(self, entry, on_device):
        """Eq. (2): c_scan = tbl_sea + calc_frt."""
        table_bytes = entry.table_rows * entry.record_bytes
        pages = max(1.0, table_bytes / self.hardware.flash_page_bytes)
        if entry.uses_secondary_index or entry.index_column is not None:
            # Index access touches a fraction of the pages proportional
            # to the estimated matching records.
            fraction = min(1.0, entry.estimated_rows
                           / max(1, entry.table_rows))
            pages = max(1.0, pages * fraction)
            tbl_sea = entry.estimated_rows * 0.05 + pages
        else:
            tbl_sea = pages
        calc_frt = pages * self.hardware.page_cost(on_device)
        return tbl_sea + calc_frt

    def cpu_cost(self, entry, on_device):
        """Eq. (3): c_cpu = tbl_ren * usr_rec * node_pbn * calc_pcf.

        ``calc_pcf`` depends on what the hardware executes: scans and
        selections run on the device's streaming units (near host
        parity), index-driven accesses on the DRAM-bound path.
        """
        tbl_ren = self._evaluated_rows(entry)
        node_pbn = max(4, entry.projection_bytes)
        if entry.index_column is not None:
            calc_pcf = self.hardware.index_factor(on_device)
        else:
            calc_pcf = self.hardware.streaming_factor(on_device)
        return tbl_ren * self.usr_rec * (node_pbn / _BYTES_NORM) * calc_pcf

    def transfer_cost(self, entry, on_device):
        """Eqs. (4)-(6): c_trans for one table.

        NDP placement ships only the selected records' projected bytes
        (eq. 5); host placement must move the full table (eq. 6).
        """
        cf_pcie = self.hardware.cf_pcie()
        if on_device:
            calc_tvb = (entry.estimated_selectivity * entry.table_rows
                        * max(4, entry.projection_bytes))
        else:
            calc_tvb = entry.table_rows * entry.record_bytes
        return calc_tvb * cf_pcie / self.block_bytes

    def _evaluated_rows(self, entry):
        """Records the engine actually evaluates for this table."""
        if entry.index_column is not None:
            return max(1, entry.estimated_rows)
        return max(1, entry.table_rows)

    # ------------------------------------------------------------------
    # Whole-plan cost (eq. 8 cumulation)
    # ------------------------------------------------------------------
    def plan_cost(self, plan, on_device):
        """Cost every node of the plan for one placement.

        Join handling follows §3.2: each table contributes its access
        cost (scan + cpu); the join adds ``node_ren * usr_rec`` for the
        produced records plus buffer-management cost; transfer costs are
        charged per table for host placement (everything moves) but only
        on the intermediate/final results for device placement.
        """
        nodes = []
        cumulative = 0.0
        hardware = self.hardware
        compute_scale = 1.0
        transfer_scale = 1.0
        if on_device and self.device_load is not None:
            compute_scale = self.device_load.compute_scale()
            transfer_scale = self.device_load.transfer_scale()
        for entry in plan.entries:
            c_scan = self.scan_cost(entry, on_device) * compute_scale
            c_cpu = self.cpu_cost(entry, on_device) * compute_scale
            node_ren = self.corrected_rows(entry.estimated_output_rows)
            node_pbn = self._prefix_row_bytes(plan, entry)
            # Buffer management: how many buffer refills the node's
            # output causes on its placement's buffer size.
            buffer_bytes = (hardware.hw_msj if on_device
                            else hardware.hw_msh // 64)
            node_brc = (node_ren * node_pbn / max(1, buffer_bytes)) * (
                hardware.memcpy_factor(on_device)) * compute_scale
            if on_device:
                c_trans = (node_ren * node_pbn / self.block_bytes
                           * hardware.cf_pcie()) * transfer_scale
            else:
                c_trans = self.transfer_cost(entry, on_device=False)
            join_cost = 0.0
            if entry.join_algorithm is not None:
                # Join work (seeks, hash probes) runs on the device's
                # DRAM-bound path, not the 31x CoreMark path.
                join_cost = node_ren * self.usr_rec * (
                    hardware.index_factor(on_device)) * compute_scale
            cumulative = (cumulative + c_scan + c_cpu + join_cost
                          + node_brc)
            # eq. (8): transfers are pending at the end for NDP; for the
            # host every table's transfer accrues as it is read.
            if not on_device:
                cumulative += c_trans
            nodes.append(NodeCost(
                alias=entry.alias,
                c_scan=c_scan,
                c_cpu=c_cpu + join_cost,
                c_trans=c_trans,
                node_ren=node_ren,
                node_brc=node_brc,
                c_node=cumulative + (c_trans if on_device else 0.0),
            ))
        return PlanCost(location="device" if on_device else "host",
                        nodes=nodes)

    def _prefix_row_bytes(self, plan, entry):
        """Projected bytes of one intermediate row up to ``entry``."""
        total = 0
        for candidate in plan.entries:
            total += max(4, candidate.projection_bytes)
            if candidate.alias == entry.alias:
                break
        return total

    def host_total(self, plan):
        """c_total for host-only execution (eq. 1/8, host placement)."""
        return self.plan_cost(plan, on_device=False).c_total

    def device_total(self, plan):
        """c_total for full on-device execution."""
        return self.plan_cost(plan, on_device=True).c_total
