"""Split-point calculation (paper §3.3, eqs. 9-12, Fig. 5).

Preconditions for splitting: the QEP must join at least two tables, all
tables must live in a compatible (nKV) engine, the device must be in NDP
mode, and the data to move must be large enough to exploit the on-device
bandwidth.  The planner computes a target cost ``c_target`` from the
host-to-device CPU and memory ratios and picks the split point whose
cumulative cost sits closest to the target.
"""

from dataclasses import dataclass

from repro.errors import PlanError

#: Minimum bytes a query must touch before offloading pays for the
#: command round-trip (precondition (b) in §3.3).
DEFAULT_MIN_TRANSFER_BYTES = 64 * 1024


@dataclass
class SplitChoice:
    """A selected split point with its surrounding numbers."""

    split_index: int
    c_target: float
    split_cpu: float
    split_mem: float
    cumulative_costs: list
    distance: float

    @property
    def name(self):
        """Hk label."""
        return f"H{self.split_index}"


class SplitPlanner:
    """Implements eqs. (9)-(12) over a cost-model cumulative curve."""

    def __init__(self, hardware, cost_model,
                 min_transfer_bytes=DEFAULT_MIN_TRANSFER_BYTES):
        self.hardware = hardware
        self.cost_model = cost_model
        self.min_transfer_bytes = min_transfer_bytes

    # ------------------------------------------------------------------
    # Preconditions (§3)
    # ------------------------------------------------------------------
    def check_preconditions(self, plan, device):
        """Evaluate all offloading preconditions; returns a dict."""
        transfer_volume = sum(
            entry.estimated_rows * max(4, entry.projection_bytes)
            for entry in plan.entries)
        return {
            "multi_table": plan.table_count >= 2,
            "ndp_mode": bool(device.ndp_mode),
            "transfer_volume": transfer_volume >= self.min_transfer_bytes,
            "device_fits_one_table": device.can_host_pipeline(1, 0, 0, 0),
        }

    # ------------------------------------------------------------------
    # Target cost (eqs. 9-12)
    # ------------------------------------------------------------------
    def split_cpu(self):
        """Eq. (9): host-to-device CPU performance ratio in percent.

        The paper writes the ratio over flash-weighted clock frequencies
        (the weighting cancels); we use the profiler's rates for the
        work an offloaded fragment actually performs — the DRAM-bound
        seek/join path — which is what the clock frequencies proxy.
        """
        hardware = self.hardware
        return (100.0 * (hardware.eval_ndp_index * hardware.hw_fsw)
                / (hardware.eval_host * hardware.hw_fsw))

    def split_mem(self, table_count):
        """Eqs. (10)-(11): device memory demand relative to host memory."""
        hardware = self.hardware
        split_dev = (table_count * hardware.hw_mss
                     + max(0, table_count - 1) * hardware.hw_msj)
        return (100.0 * (split_dev * hardware.ndp_hw_msw)
                / (hardware.hw_msh * hardware.ndp_hw_msw))

    def c_target(self, c_total, table_count):
        """Eq. (12): the cost the device side should carry."""
        return (c_total * (self.split_cpu() + self.split_mem(table_count))
                / (2.0 * 100.0))

    # ------------------------------------------------------------------
    # Split selection (Fig. 5)
    # ------------------------------------------------------------------
    def choose_split(self, plan):
        """Pick the split point closest to ``c_target``.

        The cumulative curve is evaluated with *device* placement (it is
        the NDP fragment that the cumulative cost describes), while the
        total cost anchoring the target uses the host plan, since the
        target expresses "how much of the query the device can carry".
        """
        if plan.table_count < 2:
            raise PlanError("split requires at least two tables")
        device_cost = self.cost_model.plan_cost(plan, on_device=True)
        cumulative = device_cost.cumulative()
        c_total = cumulative[-1]
        target = self.c_target(c_total, plan.table_count)
        best_index = 0
        best_distance = None
        for index, cost in enumerate(cumulative):
            distance = abs(cost - target)
            if best_distance is None or distance < best_distance:
                best_index, best_distance = index, distance
        return SplitChoice(
            split_index=best_index,
            c_target=target,
            split_cpu=self.split_cpu(),
            split_mem=self.split_mem(plan.table_count),
            cumulative_costs=cumulative,
            distance=best_distance,
        )
