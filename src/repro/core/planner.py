"""The hybrid planner: decide host-only / full-NDP / Hk for a query.

Ties together the baseline optimizer, the cost model, the splitter and
the device's buffer policy.  The decision flow follows §3: check the
offloading preconditions, compare total host and device QEP costs,
compute the split target, and estimate the hybrid cost as the parallel
composition of the two fragments (the cooperative model overlaps them).

Everything the decision depends on besides the query travels in a
frozen :class:`~repro.core.planning.PlanningContext` — device load,
EWMA correction state, re-planning thresholds.  The legacy
``device_load=`` keyword was removed and raises a
:class:`~repro.errors.ReproError` naming the replacement.
"""

from repro.context import reject_removed_kwargs
from repro.core.cost_model import CostModel
from repro.core.planning import CostEstimate, PlanningContext
from repro.core.splitter import SplitPlanner
from repro.core.strategy import ExecutionStrategy, HybridDecision
from repro.query.optimizer import build_plan


class HybridPlanner:
    """Produces a :class:`HybridDecision` for a query."""

    def __init__(self, catalog, device, hardware, cost_model=None,
                 split_planner=None):
        self.catalog = catalog
        self.device = device
        self.hardware = hardware
        self.cost_model = cost_model or CostModel(hardware)
        self.splitter = split_planner or SplitPlanner(hardware,
                                                      self.cost_model)

    def plan(self, sql):
        """Baseline physical plan for SQL text."""
        return build_plan(sql, self.catalog)

    def decide(self, query, context=None, **removed):
        """Make the offloading decision for SQL text or a QueryPlan.

        ``context`` (a :class:`~repro.core.planning.PlanningContext`)
        carries the device pressure snapshot, the EWMA cardinality
        correction learned from prior executions, and the mid-query
        re-planning policy.  A loaded device inflates device-side costs
        so placement drifts toward host-only / smaller splits; a
        correction factor re-prices intermediate-result cardinalities
        for *both* placements.  The returned decision carries typed
        per-strategy :class:`~repro.core.planning.CostEstimate` entries
        and can ``revise(feedback)`` itself from runtime observations.
        """
        reject_removed_kwargs("HybridPlanner.decide", removed)
        context = PlanningContext.coerce(context)
        plan = self.plan(query) if isinstance(query, str) else query
        cost_model = self.cost_model
        splitter = self.splitter
        factor = context.correction_factor()
        if context.device_load is not None or factor != 1.0:
            cost_model = cost_model.with_load(context.device_load,
                                              correction=factor)
            splitter = SplitPlanner(
                self.hardware, cost_model,
                min_transfer_bytes=self.splitter.min_transfer_bytes)
        host_cost = cost_model.plan_cost(plan, on_device=False)
        device_cost = cost_model.plan_cost(plan, on_device=True)
        c_total_host = host_cost.c_total
        c_total_device = device_cost.c_total

        preconditions = splitter.check_preconditions(plan, self.device)
        if not all(preconditions.values()):
            failed = sorted(name for name, ok in preconditions.items()
                            if not ok)
            decision = HybridDecision(
                strategy=ExecutionStrategy.HOST_ONLY,
                c_total_host=c_total_host,
                c_total_device=c_total_device,
                preconditions=preconditions,
                estimates={"host-only": CostEstimate(
                    strategy="host-only", c_total=c_total_host)},
                reason=f"preconditions failed: {', '.join(failed)}",
                correction_factor=factor,
                replan=context.replan,
            )
            return self._bind(decision, plan, context)

        choice = splitter.choose_split(plan)
        split_index = self._fit_to_device(plan, choice.split_index)

        last = plan.table_count - 1
        estimates = {
            "host-only": CostEstimate(
                strategy="host-only", c_total=c_total_host),
            "full-ndp": CostEstimate(
                strategy="full-ndp", c_total=c_total_device,
                split_index=last,
                intermediate_rows=device_cost.nodes[last].node_ren,
                raw_rows=max(1, plan.entries[last].estimated_output_rows)),
        }
        hybrid_estimate = self._hybrid_cost(plan, device_cost, host_cost,
                                            split_index)
        estimates[f"H{split_index}"] = CostEstimate(
            strategy=f"H{split_index}", c_total=hybrid_estimate,
            split_index=split_index,
            intermediate_rows=device_cost.nodes[split_index].node_ren,
            raw_rows=max(
                1, plan.entries[split_index].estimated_output_rows))

        winner = min(estimates,
                     key=lambda name: estimates[name].c_total)
        if winner == "host-only":
            strategy = ExecutionStrategy.HOST_ONLY
            index = None
            reason = "host plan cheapest"
        elif winner == "full-ndp":
            strategy = ExecutionStrategy.FULL_NDP
            index = last
            reason = "device plan cheapest"
        else:
            strategy = ExecutionStrategy.HYBRID
            index = split_index
            reason = (f"split closest to c_target "
                      f"(distance {choice.distance:.1f})")

        decision = HybridDecision(
            strategy=strategy,
            split_index=index,
            c_total_host=c_total_host,
            c_total_device=c_total_device,
            c_target=choice.c_target,
            split_cpu=choice.split_cpu,
            split_mem=choice.split_mem,
            cumulative_costs=choice.cumulative_costs,
            estimates=estimates,
            preconditions=preconditions,
            reason=reason,
            correction_factor=factor,
            replan=context.replan,
        )
        return self._bind(decision, plan, context)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bind(self, decision, plan, context):
        """Attach the revision closure enabling mid-query re-planning."""

        def _revise(feedback):
            revised = self.decide(plan,
                                  context=context.with_feedback(feedback))
            if (feedback.device_saturated
                    and revised.strategy is not ExecutionStrategy.HOST_ONLY):
                # A saturated device cannot absorb a restarted fragment:
                # shed to the host regardless of the cost comparison.
                revised.strategy = ExecutionStrategy.HOST_ONLY
                revised.split_index = None
                revised.reason = "device saturated at pipeline breaker"
            return revised

        return decision.bind_reviser(_revise)

    def _fit_to_device(self, plan, split_index):
        """Shrink the split until the NDP fragment fits device buffers."""
        while split_index > 0:
            fragment = plan.prefix(split_index)
            selections = len(fragment)
            secondary = sum(1 for entry in fragment
                            if entry.uses_secondary_index)
            joins = sum(1 for entry in fragment
                        if entry.join_algorithm is not None)
            if self.device.can_host_pipeline(selections, secondary, joins):
                return split_index
            split_index -= 1
        return split_index

    def _hybrid_cost(self, plan, device_cost, host_cost, split_index):
        """Estimated cost of Hk: fragments overlap, transfers accrue.

        The device carries the cumulative device-placement cost up to the
        split; the host carries its own placement cost for the remaining
        tables plus the intermediate-result transfer.  Cooperative
        execution overlaps the two, so the estimate is the maximum of the
        fragment costs plus the non-overlappable intermediate transfer.
        """
        device_part = device_cost.nodes[split_index].c_node
        host_part = host_cost.c_total - host_cost.nodes[split_index].c_node
        split_node = device_cost.nodes[split_index]
        transfer = split_node.c_trans
        return max(device_part, host_part) + transfer
