"""The hybrid planner: decide host-only / full-NDP / Hk for a query.

Ties together the baseline optimizer, the cost model, the splitter and
the device's buffer policy.  The decision flow follows §3: check the
offloading preconditions, compare total host and device QEP costs,
compute the split target, and estimate the hybrid cost as the parallel
composition of the two fragments (the cooperative model overlaps them).
"""

from repro.core.cost_model import CostModel
from repro.core.splitter import SplitPlanner
from repro.core.strategy import ExecutionStrategy, HybridDecision
from repro.query.optimizer import build_plan


class HybridPlanner:
    """Produces a :class:`HybridDecision` for a query."""

    def __init__(self, catalog, device, hardware, cost_model=None,
                 split_planner=None):
        self.catalog = catalog
        self.device = device
        self.hardware = hardware
        self.cost_model = cost_model or CostModel(hardware)
        self.splitter = split_planner or SplitPlanner(hardware,
                                                      self.cost_model)

    def plan(self, sql):
        """Baseline physical plan for SQL text."""
        return build_plan(sql, self.catalog)

    def decide(self, query, device_load=None):
        """Make the offloading decision for SQL text or a QueryPlan.

        ``device_load`` (a :class:`~repro.core.cost_model.DeviceLoad`)
        re-prices device placement for a busy device: the concurrent
        scheduler passes its measured utilization snapshot so placement
        is load-aware — a hot device inflates device-side costs and the
        decision drifts toward host-only / smaller splits.
        """
        plan = self.plan(query) if isinstance(query, str) else query
        cost_model = self.cost_model
        splitter = self.splitter
        if device_load is not None:
            cost_model = cost_model.with_load(device_load)
            splitter = SplitPlanner(
                self.hardware, cost_model,
                min_transfer_bytes=self.splitter.min_transfer_bytes)
        host_cost = cost_model.plan_cost(plan, on_device=False)
        device_cost = cost_model.plan_cost(plan, on_device=True)
        c_total_host = host_cost.c_total
        c_total_device = device_cost.c_total

        preconditions = splitter.check_preconditions(plan, self.device)
        if not all(preconditions.values()):
            failed = sorted(name for name, ok in preconditions.items()
                            if not ok)
            return HybridDecision(
                strategy=ExecutionStrategy.HOST_ONLY,
                c_total_host=c_total_host,
                c_total_device=c_total_device,
                preconditions=preconditions,
                estimated_costs={"host-only": c_total_host},
                reason=f"preconditions failed: {', '.join(failed)}",
            )

        choice = splitter.choose_split(plan)
        split_index = self._fit_to_device(plan, choice.split_index)

        estimates = {
            "host-only": c_total_host,
            "full-ndp": c_total_device,
        }
        hybrid_estimate = self._hybrid_cost(plan, device_cost, host_cost,
                                            split_index)
        estimates[f"H{split_index}"] = hybrid_estimate

        winner = min(estimates, key=lambda name: estimates[name])
        if winner == "host-only":
            strategy = ExecutionStrategy.HOST_ONLY
            index = None
            reason = "host plan cheapest"
        elif winner == "full-ndp":
            strategy = ExecutionStrategy.FULL_NDP
            index = plan.table_count - 1
            reason = "device plan cheapest"
        else:
            strategy = ExecutionStrategy.HYBRID
            index = split_index
            reason = (f"split closest to c_target "
                      f"(distance {choice.distance:.1f})")

        return HybridDecision(
            strategy=strategy,
            split_index=index,
            c_total_host=c_total_host,
            c_total_device=c_total_device,
            c_target=choice.c_target,
            split_cpu=choice.split_cpu,
            split_mem=choice.split_mem,
            cumulative_costs=choice.cumulative_costs,
            estimated_costs=estimates,
            preconditions=preconditions,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fit_to_device(self, plan, split_index):
        """Shrink the split until the NDP fragment fits device buffers."""
        while split_index > 0:
            fragment = plan.prefix(split_index)
            selections = len(fragment)
            secondary = sum(1 for entry in fragment
                            if entry.uses_secondary_index)
            joins = sum(1 for entry in fragment
                        if entry.join_algorithm is not None)
            if self.device.can_host_pipeline(selections, secondary, joins):
                return split_index
            split_index -= 1
        return split_index

    def _hybrid_cost(self, plan, device_cost, host_cost, split_index):
        """Estimated cost of Hk: fragments overlap, transfers accrue.

        The device carries the cumulative device-placement cost up to the
        split; the host carries its own placement cost for the remaining
        tables plus the intermediate-result transfer.  Cooperative
        execution overlaps the two, so the estimate is the maximum of the
        fragment costs plus the non-overlappable intermediate transfer.
        """
        device_part = device_cost.nodes[split_index].c_node
        host_part = host_cost.c_total - host_cost.nodes[split_index].c_node
        split_node = device_cost.nodes[split_index]
        transfer = split_node.c_trans
        return max(device_part, host_part) + transfer
