"""Command-line interface.

    python -m repro info                      # environment summary
    python -m repro run 8c --stack hybrid --split 3
    python -m repro decide 17b                # the planner's choice
    python -m repro sweep 8c                  # Fig-16-style split sweep
    python -m repro trace 8c --strategy split:best --out 8c.json
    python -m repro chaos 8c --seed 5         # fault-injection scenarios
    python -m repro bench-concurrent --clients 8   # concurrent workload
    python -m repro fuzz --queries 50 --seed 7     # differential fuzzing
    python -m repro experiment fig11          # a paper experiment
    python -m repro list-queries              # the JOB suite

All commands build the synthetic JOB environment (seeded, deterministic)
at the --scale given (default 0.0004).  The execution commands (run,
trace, chaos, bench-concurrent) share one option set: ``--stack``,
``--split``, ``--seed`` (the workload seed — fault-plan seed for chaos,
arrival seed for bench-concurrent; the *dataset* seed stays the global
``--seed`` before the subcommand) and ``--trace-dir``.
"""

import argparse
import os
import sys

from repro.bench import experiments as exp
from repro.bench.reporting import format_table, ms, render_matrix_summary
from repro.context import ExecutionContext
from repro.engine.stacks import Stack
from repro.errors import ReproError
from repro.sim import Tracer
from repro.workloads.job_queries import all_queries, query
from repro.workloads.loader import build_environment

_STACKS = {"blk": Stack.BLK, "native": Stack.NATIVE, "ndp": Stack.NDP,
           "hybrid": Stack.HYBRID}

_EXPERIMENTS = {
    "fig2": lambda env: exp.exp_intro_fig2(env),
    "fig11": lambda env: exp.exp1_stacks_fig11(env),
    "tab3": lambda env: exp.exp1_table3(env),
    "fig16": lambda env: exp.exp6_split_sweep_fig16(env),
    "fig17": lambda env: exp.exp6_timeline_fig17(env),
    "tab4": lambda env: exp.exp6_table4(env),
    "profiler": lambda env: exp.profiler_compute_gap(env),
}


def _build_env(args):
    print(f"building environment (scale={args.scale}, seed={args.seed})...",
          file=sys.stderr)
    return build_environment(scale=args.scale, seed=args.seed)


def cmd_info(args):
    env = _build_env(args)
    rows = [
        ["rows loaded", f"{env.total_rows:,}"],
        ["data bytes", f"{env.total_bytes:,}"],
        ["buffer scale", f"{env.buffer_scale:.2e}"],
        ["device", env.device.spec.name],
        ["compute gap", f"{env.hardware.compute_gap:.1f}x"],
        ["PCIe", f"{env.hardware.hw_ipv}.0 x{env.hardware.hw_ipl}"],
        ["device buffer budget",
         f"{env.device.buffer_budget / 2**20:.0f} MB"],
        ["max tables (w/ sec idx)", env.device.max_tables(True)],
        ["max tables (w/o sec idx)", env.device.max_tables(False)],
    ]
    print(format_table(["property", "value"], rows,
                       title="hybridNDP reproduction environment"))
    return 0


def cmd_run(args):
    env = _build_env(args)
    stack = _STACKS[args.stack or "native"]
    tracer = Tracer() if args.trace_dir else None
    report = env.run(query(args.query), stack, split_index=args.split,
                     ctx=ExecutionContext(tracer=tracer))
    print(report.summary())
    for row in report.result.rows[:10]:
        print(" ", row)
    if tracer is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
        out = os.path.join(args.trace_dir,
                           f"{args.query}-{report.strategy}.json")
        tracer.write(out)
        print(f"trace written to {out}")
    return 0


def cmd_decide(args):
    env = _build_env(args)
    decision = env.decide(query(args.query))
    print(decision.summary())
    print(f"preconditions: {decision.preconditions}")
    if decision.cumulative_costs:
        print(f"cumulative costs: "
              f"{[round(c, 1) for c in decision.cumulative_costs]}")
    print(f"estimates: { {k: round(v, 1) for k, v in decision.estimated_costs.items()} }")
    return 0


def _resolve_trace_strategy(env, plan, spec):
    """Map a ``--strategy`` string to ``(stack, split_index)``.

    ``split:best`` runs every strategy untraced first and picks the
    fastest feasible hybrid split.
    """
    if spec == "host-blk":
        return Stack.BLK, None
    if spec in ("host-native", "host-nvme"):
        return Stack.NATIVE, None
    if spec in ("full-ndp", "ndp"):
        return Stack.NDP, None
    if spec.startswith("split:"):
        token = spec.split(":", 1)[1]
        if token == "best":
            reports = env.runner.run_all_splits(plan)
            feasible = {name: report.total_time
                        for name, report in reports.items()
                        if name.startswith("H")
                        and not isinstance(report, Exception)}
            if not feasible:
                raise ReproError("no feasible hybrid split for this query")
            best = min(feasible, key=feasible.get)
            return Stack.HYBRID, int(best[1:])
        try:
            return Stack.HYBRID, int(token)
        except ValueError:
            pass
    raise ReproError(
        f"unknown strategy {spec!r}; expected host-blk, host-native, "
        "full-ndp, split:<k> or split:best")


def cmd_trace(args):
    env = _build_env(args)
    plan = env.runner.plan(query(args.query))
    if args.stack:
        # The shared --stack/--split flags select the strategy directly.
        stack, split_index = _STACKS[args.stack], args.split
    else:
        stack, split_index = _resolve_trace_strategy(env, plan,
                                                     args.strategy)
    tracer = Tracer()
    report = env.run(plan, stack, split_index=split_index,
                     ctx=ExecutionContext(tracer=tracer))
    out = args.out or f"{args.query}-{report.strategy}.json"
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        out = os.path.join(args.trace_dir, os.path.basename(out))
    tracer.write(out)
    print(report.summary())
    metrics = tracer.metrics()
    print(f"trace written to {out} ({metrics['spans']} spans, "
          f"{metrics['instants']} instants); open it at ui.perfetto.dev")
    return 0


def cmd_sweep(args):
    env = _build_env(args)
    result = exp.exp6_split_sweep_fig16(env, args.query)
    rows = [[name, ms(value) if value is not None else "infeasible"]
            for name, value in result["times"].items()]
    print(format_table(["strategy", "time [ms]"], rows,
                       title=f"Q{args.query} split sweep"))
    return 0


def cmd_chaos(args):
    from repro.bench.chaos import (SCENARIOS, chaos_matrix,
                                   generated_queries)
    env = _build_env(args)
    scenarios = args.scenarios or sorted(SCENARIOS)
    names = [args.query] if args.query else []
    queries = None
    if args.generated:
        queries = generated_queries(args.generated,
                                    seed=args.workload_seed)
        names += sorted(queries)
    if not names:
        print("chaos needs a query name and/or --generated N")
        return 2
    rows = []
    failures = 0
    for scenario_row in chaos_matrix(
            env, names, scenarios=scenarios,
            seed=args.workload_seed,
            trace_dir=args.trace_dir, queries=queries).values():
        for summary in scenario_row.values():
            failures += 0 if summary["ok"] else 1
            rows.append([
                summary["query"],
                summary["scenario"], summary["strategy"],
                "yes" if summary["rows_match"] else "NO",
                summary["retries"],
                ms(summary["faulted_time"]),
                ms(summary["baseline_time"]),
                ", ".join(f"{kind}={count}" for kind, count
                          in summary["faults_injected"].items()) or "-",
            ])
    print(format_table(
        ["query", "scenario", "strategy", "rows ok", "retries",
         "faulted [ms]", "host [ms]", "faults injected"], rows,
        title=f"chaos matrix ({', '.join(names)}; "
              f"fault seed {args.workload_seed})"))
    if args.trace_dir:
        print(f"fault-annotated traces written to {args.trace_dir}/")
    return 1 if failures else 0


def cmd_bench_concurrent(args):
    from repro.bench.concurrency import (DEFAULT_QUERIES,
                                         run_concurrency_benchmark)
    env = _build_env(args)
    tracer = Tracer() if args.trace_dir else None
    summary = run_concurrency_benchmark(
        env, query_names=args.queries or DEFAULT_QUERIES, mode=args.mode,
        clients=args.clients, think_time=args.think_time,
        rate_qps=args.rate_qps, repeat=args.repeat,
        seed=args.workload_seed, ctx=ExecutionContext(tracer=tracer))
    latency = summary["latency"]
    rows = [
        ["queries", summary["queries"]],
        ["mode", summary["mode"]],
        ["makespan", ms(summary["makespan"])],
        ["queries/sec", f"{summary['queries_per_second']:.1f}"],
        ["p50 latency", ms(latency["p50"])],
        ["p95 latency", ms(latency["p95"])],
        ["p99 latency", ms(latency["p99"])],
        ["placements", ", ".join(f"{name}={count}" for name, count
                                 in summary["placements"].items())],
    ]
    for name, utilization in summary["resource_utilization"].items():
        rows.append([f"{name} utilization", f"{utilization:.1%}"])
    print(format_table(
        ["metric", "value"], rows,
        title=f"concurrent workload (seed {args.workload_seed})"))
    if tracer is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
        out = os.path.join(args.trace_dir, "concurrent-workload.json")
        tracer.write(out)
        print(f"workload trace written to {out}")
    if args.output:
        import json
        with open(args.output, "w") as handle:
            json.dump(summary, handle, indent=1)
        print(f"summary written to {args.output}")
    return 0


def cmd_bench_adaptive(args):
    from repro.bench.adaptive import DEFAULT_QUERIES, adaptive_matrix
    env = _build_env(args)
    summary = adaptive_matrix(
        env, query_names=args.queries or DEFAULT_QUERIES,
        rounds=args.rounds, skew=args.skew, alpha=args.alpha,
        error_threshold=args.error_threshold)
    rows = []
    for row in summary["rounds"]:
        replans = sum(cell["replans"]
                      for cell in row["per_query"].values())
        rows.append([row["round"], ms(row["static_regret"]),
                     ms(row["adaptive_regret"]), replans])
    print(format_table(
        ["round", "static regret", "adaptive regret", "replans"], rows,
        title=f"adaptive re-planning regret (skew {args.skew}x)"))
    totals = summary["totals"]
    print(f"totals: static {ms(totals['static_regret'])}, adaptive "
          f"{ms(totals['adaptive_regret'])}; "
          f"beats_static={totals['adaptive_beats_static']}, "
          f"converged={totals['regret_converged']}")
    if args.output:
        import json
        with open(args.output, "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
        print(f"summary written to {args.output}")
    return 0 if (totals["adaptive_beats_static"]
                 and totals["regret_converged"]) else 1


def cmd_bench_cluster(args):
    from repro.bench.cluster import DEFAULT_QUERIES, cluster_matrix
    env = _build_env(args)
    matrix = cluster_matrix(
        env, device_counts=tuple(args.devices),
        query_names=args.queries or DEFAULT_QUERIES,
        partitioner=args.partitioner, seed=args.workload_seed,
        clients=args.clients)
    rows = []
    for n_devices, summary in matrix["cells"].items():
        latency = summary["scatter_gather"]["latency"]
        speedup = summary["speedup"]
        rows.append([
            n_devices,
            ms(latency["p50"]),
            ms(latency["p95"]),
            ms(summary["scatter_gather"]["total_time"]),
            f"{speedup['scatter_gather']:.2f}x",
            ms(summary["workload"]["makespan"]),
            f"{speedup['workload']:.2f}x",
        ])
    print(format_table(
        ["devices", "p50", "p95", "sweep total", "speedup",
         "workload makespan", "speedup"], rows,
        title=f"cluster scaling ({args.partitioner} partitioning, "
              f"seed {args.workload_seed})"))
    if args.output:
        import json
        with open(args.output, "w") as handle:
            json.dump(matrix, handle, indent=1)
        print(f"summary written to {args.output}")
    return 0


def cmd_fuzz(args):
    from repro.bench.fuzz import (MODES, FuzzHarness, replay_failures,
                                  write_corpus)
    env = _build_env(args)
    modes = tuple(args.modes or MODES)
    if args.replay:
        reports = replay_failures(env, args.replay, modes=modes)
    else:
        harness = FuzzHarness(env, seed=args.workload_seed, modes=modes)
        reports = [harness.run(args.queries)]
    failures = 0
    for report in reports:
        failures += len(report.failures)
        rows = [
            ["generator seed", report.seed],
            ["queries", report.queries],
            ["modes", ", ".join(report.modes)],
            ["checks", report.checks],
            ["infeasible", report.infeasible],
            ["failures", len(report.failures)],
        ]
        print(format_table(["metric", "value"], rows,
                           title="differential fuzz sweep"))
        for failure in report.failures:
            print(f"FAIL {failure.name} [{failure.mode}/{failure.kind}] "
                  f"{failure.detail}")
            if failure.shrunk_sql:
                print(f"  shrunk: {failure.shrunk_sql!r}")
        if args.corpus_dir:
            paths = write_corpus(report, args.corpus_dir)
            for kind, path in paths.items():
                print(f"{kind} written to {path}")
    return 1 if failures else 0


def cmd_experiment(args):
    env = _build_env(args)
    result = _EXPERIMENTS[args.name](env)
    import json
    print(json.dumps(result, indent=2, default=str))
    return 0


def cmd_survey(args):
    env = _build_env(args)
    names = args.queries or ["1a", "2d", "6b", "8c", "17b", "32a"]
    matrix = exp.exp2_job_matrix_fig12(env, query_names=names)
    print(render_matrix_summary(exp.classify_matrix(matrix)))
    return 0


def cmd_list_queries(_args):
    queries = all_queries()
    print(f"{len(queries)} JOB queries:")
    print(", ".join(sorted(queries)))
    return 0


def _execution_options():
    """The parent parser shared by run / trace / chaos / bench-concurrent.

    One definition for the flags every execution command understands, so
    they cannot drift apart: ``--stack``/``--split`` select the strategy,
    ``--seed`` is the *workload* seed (fault-plan seed for chaos, arrival
    seed for bench-concurrent — distinct from the global dataset
    ``--seed``), ``--trace-dir`` writes Perfetto traces.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--stack", choices=sorted(_STACKS), default=None,
                        help="execution stack (default: native)")
    parent.add_argument("--split", type=int, default=None,
                        help="hybrid split index (the k of Hk)")
    parent.add_argument("--seed", dest="workload_seed", type=int, default=0,
                        help="workload seed: fault-plan seed for chaos, "
                             "arrival seed for bench-concurrent (the "
                             "dataset seed is the global --seed)")
    parent.add_argument("--trace-dir", default=None,
                        help="write Perfetto traces into this directory")
    return parent


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="hybridNDP reproduction CLI")
    parser.add_argument("--scale", type=float, default=0.0004,
                        help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=7)
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_options()

    sub.add_parser("info").set_defaults(func=cmd_info)

    run = sub.add_parser("run", parents=[execution])
    run.add_argument("query")
    run.set_defaults(func=cmd_run)

    decide = sub.add_parser("decide")
    decide.add_argument("query")
    decide.set_defaults(func=cmd_decide)

    sweep = sub.add_parser("sweep")
    sweep.add_argument("query")
    sweep.set_defaults(func=cmd_sweep)

    trace = sub.add_parser(
        "trace", parents=[execution],
        help="run one query and write a Perfetto trace")
    trace.add_argument("query")
    trace.add_argument("--strategy", default="split:best",
                       help="host-blk | host-native | full-ndp | "
                            "split:<k> | split:best (default); "
                            "--stack/--split override when given")
    trace.add_argument("--out", default=None,
                       help="output path (default <query>-<strategy>.json)")
    trace.set_defaults(func=cmd_trace)

    chaos = sub.add_parser(
        "chaos", parents=[execution],
        help="run queries under the fault-injection scenarios")
    chaos.add_argument("query", nargs="?", default=None,
                       help="JOB query name (optional with --generated)")
    chaos.add_argument("--scenario", dest="scenarios", action="append",
                       default=None,
                       help="run only this scenario (repeatable; includes "
                            "the scale-out robustness scenarios "
                            "straggler_device / double_device_failure / "
                            "deadline_shedding)")
    chaos.add_argument("--generated", type=int, default=0, metavar="N",
                       help="additionally chaos N random sqlgen queries "
                            "(seeded by --seed)")
    chaos.set_defaults(func=cmd_chaos)

    bench = sub.add_parser(
        "bench-concurrent", parents=[execution],
        help="run a concurrent multi-query workload on one shared device")
    bench.add_argument("queries", nargs="*",
                       help="JOB query mix (default: the benchmark mix)")
    bench.add_argument("--mode", choices=["closed", "open"],
                       default="closed",
                       help="closed-loop clients or open-loop arrivals")
    bench.add_argument("--clients", type=int, default=8,
                       help="closed-loop client count (default 8)")
    bench.add_argument("--think-time", type=float, default=0.0,
                       help="closed-loop think time in seconds")
    bench.add_argument("--rate-qps", type=float, default=50.0,
                       help="open-loop offered rate (default 50)")
    bench.add_argument("--repeat", type=int, default=1,
                       help="replay the query mix this many times")
    bench.add_argument("--output", default=None,
                       help="also write the summary JSON to this path")
    bench.set_defaults(func=cmd_bench_concurrent)

    bench_adaptive = sub.add_parser(
        "bench-adaptive",
        help="regret bench: adaptive re-planning vs static vs oracle "
             "over a misestimated (skewed-prior) workload")
    bench_adaptive.add_argument("queries", nargs="*",
                                help="JOB query mix (default: the "
                                     "calibrated regret mix)")
    bench_adaptive.add_argument("--rounds", type=int, default=16,
                                help="workload rounds (default 16)")
    bench_adaptive.add_argument("--skew", type=float, default=50.0,
                                help="stale-statistics prior factor "
                                     "(default 50)")
    bench_adaptive.add_argument("--alpha", type=float, default=0.5,
                                help="EWMA observation weight "
                                     "(default 0.5)")
    bench_adaptive.add_argument("--error-threshold", type=float,
                                default=2.0,
                                help="breaker error triggering a "
                                     "revision (default 2.0)")
    bench_adaptive.add_argument("--output", default=None,
                                help="also write the summary JSON to "
                                     "this path")
    bench_adaptive.set_defaults(func=cmd_bench_adaptive)

    bench_cluster = sub.add_parser(
        "bench-cluster", parents=[execution],
        help="sweep device counts with scatter-gather execution")
    bench_cluster.add_argument("queries", nargs="*",
                               help="JOB query mix (default: the "
                                    "benchmark mix)")
    bench_cluster.add_argument("--devices", type=int, nargs="+",
                               default=[1, 2, 4, 8],
                               help="device counts to sweep "
                                    "(default 1 2 4 8)")
    bench_cluster.add_argument("--partitioner",
                               choices=["range", "hash"], default="range",
                               help="driving-table partitioning layout")
    bench_cluster.add_argument("--clients", type=int, default=4,
                               help="closed-loop clients for the workload "
                                    "cell (default 4)")
    bench_cluster.add_argument("--output", default=None,
                               help="also write the matrix JSON to this "
                                    "path")
    bench_cluster.set_defaults(func=cmd_bench_cluster)

    fuzz = sub.add_parser(
        "fuzz", parents=[execution],
        help="differential fuzzing: generated SQL across host, split, "
             "scheduler, and cluster execution (--seed is the generator "
             "seed)")
    fuzz.add_argument("--queries", type=int, default=50,
                      help="number of generated queries (default 50)")
    fuzz.add_argument("--mode", dest="modes", action="append", default=None,
                      choices=["host", "split", "scheduler", "cluster2",
                               "cluster4"],
                      help="run only this mode (repeatable; default all)")
    fuzz.add_argument("--corpus-dir", default=None,
                      help="write corpus.jsonl (+ failures.jsonl) here")
    fuzz.add_argument("--replay", default=None,
                      help="re-run the (seed, index) entries of this "
                           "corpus/failures jsonl instead of generating")
    fuzz.set_defaults(func=cmd_fuzz)

    experiment = sub.add_parser("experiment")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.set_defaults(func=cmd_experiment)

    survey = sub.add_parser("survey")
    survey.add_argument("queries", nargs="*")
    survey.set_defaults(func=cmd_survey)

    sub.add_parser("list-queries").set_defaults(func=cmd_list_queries)
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
