"""Columnar exchange batches for the vectorized execution engine.

A :class:`ColumnBatch` is the operator exchange type of the execution
pipeline (docs/engine.md): an ordered schema of qualified column names
(``alias.column``), one numpy value array per column, and an optional
null mask.  Operators hand batches to each other instead of lists of
dicts; :meth:`ColumnBatch.rows` is the compatibility view that restores
the dict-row surface (gather-merge diffing, fuzz corpora, report row
samples) with plain Python values.

Dtype conventions
-----------------
INT columns decode to ``int64`` arrays, CHAR columns to numpy unicode
arrays; null slots hold ``0`` / ``""`` and are flagged in the mask
(``mask is None`` means the column has no nulls).  Batches built from
dict rows (:meth:`ColumnBatch.from_rows`) use ``object`` arrays for
strings — comparison semantics are identical, elementwise.

The schema order of a batch mirrors the key order the row engine's dict
rows had, so ``rows()`` round-trips byte-identically through JSON.
"""

import numpy as np

from repro.errors import PlanError, ReproError


class ColumnBatch:
    """A schema-tagged batch of column arrays (the operator exchange type).

    Construction goes through the classmethods (:meth:`from_columns`,
    :meth:`from_rows`, :meth:`empty`, :meth:`concat`); operators derive
    new batches with :meth:`select` / :meth:`take` / :meth:`project` /
    :meth:`merged` and slicing.
    """

    __slots__ = ("_names", "_cols", "_length")

    def __init__(self, names, cols, length):
        self._names = tuple(names)
        self._cols = cols          # name -> (values ndarray, mask|None)
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, names, cols, length=None):
        """Build from ``{name: (values, mask)}`` arrays."""
        names = tuple(names)
        if length is None:
            length = len(cols[names[0]][0]) if names else 0
        for name in names:
            values, mask = cols[name]
            if len(values) != length or (mask is not None
                                         and len(mask) != length):
                raise ReproError(
                    f"column {name!r}: array length does not match batch")
        return cls(names, dict(cols), length)

    @classmethod
    def empty(cls):
        """A zero-row, zero-column batch (empty cluster partitions)."""
        return cls((), {}, 0)

    @classmethod
    def from_rows(cls, rows, names=None):
        """Compatibility constructor from a list of dict rows.

        Column order is first-seen key order (matching the dict rows the
        row engine produced).  Intended for seeding a pipeline from
        legacy callers; the hot paths decode straight into columns.
        """
        rows = list(rows)
        if names is None:
            names = []
            seen = set()
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.add(key)
                        names.append(key)
        cols = {}
        for name in names:
            values = [row.get(name) for row in rows]
            null = [value is None for value in values]
            sample = next((v for v in values if v is not None), None)
            if sample is None or isinstance(sample, (int, np.integer)):
                arr = np.array([0 if v is None else v for v in values],
                               dtype=np.int64)
            else:
                arr = np.array(values, dtype=object)
                if any(null):
                    arr = arr.copy()
                    arr[np.array(null, dtype=bool)] = ""
            mask = np.array(null, dtype=bool) if any(null) else None
            cols[name] = (arr, mask)
        return cls(tuple(names), cols, len(rows))

    @classmethod
    def concat(cls, batches):
        """Vertical concatenation (cluster gather-merge, batch streams).

        Zero-row batches are skipped; all non-empty inputs must share
        one schema.  An all-empty input keeps the first batch's schema.
        """
        batches = list(batches)
        live = [batch for batch in batches if len(batch)]
        if not live:
            return batches[0] if batches else cls.empty()
        if len(live) == 1:
            return live[0]
        names = live[0]._names
        for batch in live[1:]:
            if batch._names != names:
                raise ReproError(
                    f"cannot concat batches with different schemas: "
                    f"{names} vs {batch._names}")
        length = sum(len(batch) for batch in live)
        cols = {}
        for name in names:
            values = np.concatenate([batch._cols[name][0] for batch in live])
            if any(batch._cols[name][1] is not None for batch in live):
                mask = np.concatenate(
                    [batch._cols[name][1] if batch._cols[name][1] is not None
                     else np.zeros(len(batch), dtype=bool)
                     for batch in live])
            else:
                mask = None
            cols[name] = (values, mask)
        return cls(names, cols, length)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self):
        """Ordered qualified column names."""
        return self._names

    def __len__(self):
        return self._length

    def __bool__(self):
        return self._length > 0

    def has_column(self, name):
        """Whether the batch carries the named column."""
        return name in self._cols

    def column(self, name):
        """``(values, mask)`` arrays of one column.

        Raises :class:`~repro.errors.PlanError` like
        :meth:`repro.query.ast.ColumnRef.eval` does on an unbound key.
        """
        try:
            return self._cols[name]
        except KeyError:
            raise PlanError(
                f"column {name!r} not bound in batch") from None

    def column_list(self, name):
        """One column as a Python list with ``None`` at null slots."""
        values, mask = self.column(name)
        result = values.tolist()
        if mask is not None:
            for i in np.flatnonzero(mask).tolist():
                result[i] = None
        return result

    def column_list_or_none(self, name):
        """Like :meth:`column_list`, all-``None`` for a missing column
        (the ``row.get(name)`` compatibility semantics)."""
        if name not in self._cols:
            return [None] * self._length
        return self.column_list(name)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def select(self, mask):
        """Rows where the boolean ``mask`` is True, in order."""
        mask = np.asarray(mask, dtype=bool)
        length = int(np.count_nonzero(mask))
        cols = {name: (values[mask],
                       None if m is None else m[mask])
                for name, (values, m) in self._cols.items()}
        return ColumnBatch(self._names, cols, length)

    def take(self, indices):
        """Rows at ``indices`` (repeats allowed), in index order."""
        idx = np.asarray(indices, dtype=np.intp)
        cols = {name: (values[idx], None if m is None else m[idx])
                for name, (values, m) in self._cols.items()}
        return ColumnBatch(self._names, cols, len(idx))

    def project(self, names):
        """Subset/reorder to the named columns."""
        cols = {name: self.column(name) for name in names}
        return ColumnBatch(tuple(names), cols, self._length)

    def merged(self, other):
        """Horizontal merge with ``dict.update`` semantics.

        Overlapping names keep their original position but take the
        other batch's values — exactly how the row engine's
        ``merged.update(inner)`` behaved.
        """
        if len(other) != self._length:
            raise ReproError("merged() needs batches of equal length")
        names = list(self._names)
        cols = dict(self._cols)
        for name in other._names:
            if name not in cols:
                names.append(name)
            cols[name] = other._cols[name]
        return ColumnBatch(tuple(names), cols, self._length)

    def __getitem__(self, item):
        if isinstance(item, slice):
            length = len(range(*item.indices(self._length)))
            cols = {name: (values[item], None if m is None else m[item])
                    for name, (values, m) in self._cols.items()}
            return ColumnBatch(self._names, cols, length)
        return self.row_at(int(item))

    # ------------------------------------------------------------------
    # Row-compatibility surface
    # ------------------------------------------------------------------
    def row_at(self, index):
        """One row as a dict (schema key order, Python values)."""
        row = {}
        for name in self._names:
            values, mask = self._cols[name]
            if mask is not None and mask[index]:
                row[name] = None
            else:
                value = values[index]
                row[name] = value.item() if isinstance(value, np.generic) \
                    else value
        return row

    def rows(self):
        """The dict-row compatibility view (plain Python values)."""
        if not self._names:
            return [{} for _ in range(self._length)]
        lists = [self.column_list(name) for name in self._names]
        names = self._names
        return [dict(zip(names, values)) for values in zip(*lists)]

    def __iter__(self):
        return iter(self.rows())

    def __repr__(self):
        return (f"ColumnBatch({self._length} rows x "
                f"{len(self._names)} cols)")


def shard_membership(shard, pk_values):
    """Boolean mask of which primary keys belong to ``shard``.

    Uses the shard's vectorized ``contains_array`` when it offers one
    (:class:`repro.cluster.TableShard` does), falling back to the scalar
    ``contains`` contract for duck-typed shards.
    """
    contains_array = getattr(shard, "contains_array", None)
    if contains_array is not None:
        return contains_array(pk_values)
    return np.fromiter((shard.contains(value)
                        for value in np.asarray(pk_values).tolist()),
                       dtype=bool, count=len(pk_values))
