"""A deterministic skiplist keyed by bytes.

RocksDB's MemTables are skiplists; ours is seeded so test runs are
reproducible.  Keys are ``bytes`` in lexicographic order; values are
arbitrary objects (the MemTable stores value bytes or a tombstone marker).
"""

import random

from repro.errors import LSMError

_MAX_LEVEL = 16
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key, value, level):
        self.key = key
        self.value = value
        self.forward = [None] * level


class SkipList:
    """Sorted map from bytes keys to values with O(log n) expected ops."""

    def __init__(self, seed=0):
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._size = 0

    def __len__(self):
        return self._size

    def _random_level(self):
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key):
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
            update[i] = node
        return update

    def insert(self, key, value):
        """Insert or overwrite ``key``."""
        if not isinstance(key, bytes):
            raise LSMError(f"skiplist keys must be bytes, got {type(key)}")
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1

    def get(self, key, default=None):
        """Look up ``key``; return ``default`` when absent."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key):
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self, lo=None, hi=None):
        """Yield (key, value) in key order, optionally within [lo, hi)."""
        if lo is None:
            node = self._head.forward[0]
        else:
            update = self._find_predecessors(lo)
            node = update[0].forward[0]
        while node is not None:
            if hi is not None and node.key >= hi:
                return
            yield node.key, node.value
            node = node.forward[0]

    def keys(self):
        """Yield keys in order."""
        for key, _value in self.items():
            yield key

    def first_key(self):
        """Smallest key, or None when empty."""
        node = self._head.forward[0]
        return None if node is None else node.key

    def last_key(self):
        """Largest key, or None when empty."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None:
                node = node.forward[i]
        return None if node is self._head else node.key
