"""Size-tiered compaction.

The alternative to leveled compaction the paper mentions (§2.2,
"depending on the strategy (e.g., tiered or leveled)").  Each tier
collects sorted runs of similar size; once a tier holds ``fanout`` runs
they are merged into a single run on the next tier.  Writes are cheaper
than leveled (every record is rewritten once per tier, no overlap
merges), reads are costlier (several runs per tier must be consulted).
"""

from repro.lsm.compaction import CompactionStats
from repro.lsm.iterator import merge_sources
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTableBuilder


class TieredCompactor:
    """Size-tiered strategy over a tiered :class:`LevelStructure`."""

    def __init__(self, levels, flash=None, fanout=4, block_size=4096):
        if not levels.tiered:
            raise ValueError("TieredCompactor needs a tiered structure")
        self._levels = levels
        self._flash = flash
        self.fanout = fanout
        self._block_size = block_size
        self._next_sst_id = 2_000_000
        self.stats = CompactionStats()

    def needs_compaction(self, n):
        """A tier compacts once it holds ``fanout`` runs."""
        return len(self._levels.level(n)) >= self.fanout

    def maybe_compact(self):
        """Merge full tiers until no tier holds ``fanout`` runs."""
        ran = 0
        for _ in range(1000):
            tier = self._pick_tier()
            if tier is None:
                return ran
            self.compact_tier(tier)
            ran += 1
        return ran

    def _pick_tier(self):
        for n in range(1, self._levels.max_levels):
            if self.needs_compaction(n):
                return n
        return None

    def compact_tier(self, n):
        """Merge every run of tier ``n`` into one run on tier ``n+1``."""
        runs = self._levels.level(n)
        if not runs:
            return None
        target = n + 1
        bottom = all(not self._levels.level(deeper)
                     for deeper in range(target + 1,
                                         self._levels.max_levels + 1))
        # Precedence: newest run first (runs append in arrival order).
        sources = [sst.iter_all() for sst in reversed(runs)]
        self.stats.bytes_read += sum(sst.nbytes for sst in runs)
        input_entries = sum(sst.entry_count for sst in runs)

        builder = SSTableBuilder(block_size=self._block_size)
        for key, value in merge_sources(sources):
            if value == TOMBSTONE and bottom and not self._levels.level(
                    target):
                self.stats.tombstones_purged += 1
                continue
            builder.add(key, value)

        for sst in runs:
            self._levels.remove(sst)
            if self._flash is not None and sst.extent is not None:
                self._flash.free(sst.extent)

        new_sst = None
        if len(builder):
            sst_id = self._next_sst_id
            self._next_sst_id += 1
            new_sst = builder.finish(flash=self._flash, sst_id=sst_id,
                                     level=target)
            self._levels.add_to_level(target, new_sst)
            self.stats.bytes_written += new_sst.nbytes
            self.stats.entries_dropped += (input_entries
                                           - new_sst.entry_count)
        else:
            self.stats.entries_dropped += input_entries
        self.stats.compactions += 1
        self.stats.per_level[n] = self.stats.per_level.get(n, 0) + 1
        return new_sst
