"""MemTable: the in-memory C0 component of an LSM tree.

Writes land here first; once the table exceeds its size threshold it is
frozen (made immutable) and a new MemTable takes over, as in RocksDB.
Deletes are tombstones so they shadow older on-disk versions.
"""

from repro.errors import LSMError
from repro.lsm.skiplist import SkipList

#: Sentinel stored for deleted keys; chosen to be an invalid record value.
TOMBSTONE = b"\x00__repro_tombstone__\x00"


class MemTable:
    """A size-bounded, skiplist-backed write buffer."""

    def __init__(self, size_limit=4 * 1024 * 1024, seed=0):
        if size_limit <= 0:
            raise LSMError("memtable size limit must be positive")
        self._list = SkipList(seed=seed)
        self._size_limit = size_limit
        self._bytes = 0
        self._immutable = False

    def __len__(self):
        return len(self._list)

    @property
    def byte_size(self):
        """Approximate bytes of keys+values held."""
        return self._bytes

    @property
    def size_limit(self):
        """Flush threshold in bytes."""
        return self._size_limit

    @property
    def immutable(self):
        """True once the table has been frozen."""
        return self._immutable

    def is_full(self):
        """Whether the table has reached its flush threshold."""
        return self._bytes >= self._size_limit

    def freeze(self):
        """Make the table immutable (pre-flush state in RocksDB)."""
        self._immutable = True

    def put(self, key, value):
        """Insert or overwrite a key."""
        if self._immutable:
            raise LSMError("cannot write to an immutable MemTable")
        if not isinstance(value, bytes):
            raise LSMError(f"values must be bytes, got {type(value)}")
        self._list.insert(key, value)
        self._bytes += len(key) + len(value)

    def delete(self, key):
        """Record a tombstone for a key."""
        if self._immutable:
            raise LSMError("cannot write to an immutable MemTable")
        self._list.insert(key, TOMBSTONE)
        self._bytes += len(key) + len(TOMBSTONE)

    def get(self, key):
        """Return (found, value). Tombstones report found with value None."""
        if not len(self._list):        # loaded-and-flushed tables sit empty
            return False, None
        value = self._list.get(key)
        if value is None:
            return False, None
        if value == TOMBSTONE:
            return True, None
        return True, value

    def items(self, lo=None, hi=None):
        """Yield (key, value) pairs in order; tombstones included as-is."""
        return self._list.items(lo=lo, hi=hi)

    def entries(self):
        """Materialize all entries (used when freezing into an SST)."""
        return list(self._list.items())
